"""Tests for redundancy elimination."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import atoms_to_dbm, parse_atoms
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.core.simplify import simplify_relation, tuple_subsumes
from repro.core.tuples import GeneralizedTuple

from tests.helpers import random_relation


def make(lrps, constraints="", data=()):
    names = [f"X{i + 1}" for i in range(len(lrps))]
    dbm = atoms_to_dbm(parse_atoms(constraints), names)
    return GeneralizedTuple.make(lrps, data=data, dbm=dbm)


class TestSubsumption:
    def test_lattice_subsumption(self):
        assert tuple_subsumes(make(["2n"]), make(["4n"]))
        assert not tuple_subsumes(make(["4n"]), make(["2n"]))

    def test_constraint_subsumption(self):
        big = make(["n"], "X1 >= 0")
        small = make(["n"], "X1 >= 5")
        assert tuple_subsumes(big, small)
        assert not tuple_subsumes(small, big)

    def test_empty_always_subsumed(self):
        empty = make(["n"], "X1 >= 1 & X1 <= 0")
        anything = make(["2n"])
        assert tuple_subsumes(anything, empty)

    def test_different_data(self):
        a = make(["n"], data=("a",))
        b = make(["n"], data=("b",))
        assert not tuple_subsumes(a, b)


class TestSimplify:
    def test_removes_empty_tuples(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["n"], "X1 >= 1 & X1 <= 0")
        r.add_tuple(["2n"])
        out = simplify_relation(r)
        assert len(out) == 1

    def test_removes_subsumed(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["2n"])
        r.add_tuple(["4n"])
        r.add_tuple(["8n"])
        out = simplify_relation(r)
        assert len(out) == 1
        assert out.contains([2])

    def test_keeps_incomparable(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["2n"])
        r.add_tuple(["3n"])
        out = simplify_relation(r)
        assert len(out) == 2

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_simplification_preserves_semantics(self, seed):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["X1", "X2"]), 4)
        out = simplify_relation(r)
        assert len(out) <= len(r)
        assert out.snapshot(-9, 9) == r.snapshot(-9, 9)
