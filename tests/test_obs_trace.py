"""Tests for the span-tracing layer (`repro.obs.trace`).

Covers the no-op fast path (tracing disabled must cost one identity
check per algebra operation), span-tree structure, the structural cost
attributes the algebra attaches, determinism of the tree shape across
worker counts, and the render/JSON exports.
"""

import json
import time

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema
from repro.obs import (
    NULL_SPAN,
    TraceRecorder,
    active_recorder,
    render_flamegraph,
    span,
    tracing,
    tracing_enabled,
)
from repro.query.database import Database


def trains_relation() -> GeneralizedRelation:
    """The paper's Figure 1 / Example 2.4 train schedule."""
    rel = GeneralizedRelation.empty(
        Schema.make(temporal=["dep", "arr"], data=["service"])
    )
    rel.add_tuple(["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"])
    rel.add_tuple(["46 + 60n", "110 + 60n"], "dep = arr - 64", ["express"])
    return rel


def trains_db() -> Database:
    db = Database()
    db.register("Train", trains_relation())
    return db


class TestDisabledPath:
    def test_span_is_null_singleton_when_off(self):
        assert active_recorder() is None
        assert not tracing_enabled()
        assert span("algebra.union") is NULL_SPAN
        assert span("anything", attr=1) is NULL_SPAN

    def test_null_span_is_inert(self):
        with span("x") as sp:
            sp.set(a=1)
        assert sp is NULL_SPAN
        assert not sp.enabled

    def test_algebra_untouched_when_off(self):
        rel = trains_relation()
        out = algebra.intersect(rel, rel)
        assert len(out) == len(rel)
        assert active_recorder() is None

    def test_noop_recorder_overhead(self):
        # The disabled path is one global load + identity check; even a
        # very slow interpreter does 200k of those in well under 2 s.
        start = time.perf_counter()
        for _ in range(200_000):
            span("algebra.union")
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0
        # And every call returns the shared singleton — no allocation.
        assert span("algebra.union") is span("algebra.join")


class TestSpanTree:
    def test_nesting_and_attributes(self):
        with tracing(TraceRecorder()) as rec:
            with span("outer", depth=0) as outer:
                with span("inner") as inner:
                    inner.set(marked=True)
                outer.set(done=True)
        root = rec.root
        assert root is outer
        assert root.name == "outer"
        assert root.attrs == {"depth": 0, "done": True}
        assert [child.name for child in root.children] == ["inner"]
        assert root.children[0].attrs == {"marked": True}
        assert root.wall_ms >= 0.0
        assert root.self_ms <= root.wall_ms

    def test_recorder_uninstalled_after_block(self):
        with tracing(TraceRecorder()):
            assert tracing_enabled()
        assert not tracing_enabled()

    def test_recorders_stack(self):
        with tracing(TraceRecorder()) as outer_rec:
            with tracing(TraceRecorder()) as inner_rec:
                with span("x"):
                    pass
            assert active_recorder() is outer_rec
        assert inner_rec.root.name == "x"
        assert outer_rec.root is None

    def test_error_recorded_and_reraised(self):
        rec = TraceRecorder()
        try:
            with tracing(rec), span("boom"):
                raise RuntimeError("no")
        except RuntimeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception swallowed")
        assert rec.root.attrs["error"] == "RuntimeError"

    def test_walk_and_find(self):
        with tracing(TraceRecorder()) as rec:
            with span("a"):
                with span("b"):
                    pass
                with span("b"):
                    pass
        names = [sp.name for sp in rec.root.walk()]
        assert names == ["a", "b", "b"]
        assert len(rec.root.find("b")) == 2


class TestAlgebraSpans:
    def test_intersect_attrs(self):
        rel = trains_relation()
        with tracing(TraceRecorder()) as rec:
            out = algebra.intersect(rel, rel)
        root = rec.root
        assert root.name == "algebra.intersect"
        assert root.attrs["input_tuples"] == 2 * len(rel)
        assert root.attrs["output_tuples"] == len(out)
        assert root.attrs["pairs_examined"] == len(rel) * len(rel)
        assert root.attrs["schema_width"] == len(rel.schema)

    def test_project_attrs(self):
        rel = trains_relation()
        with tracing(TraceRecorder()) as rec:
            out = algebra.project(rel, ["dep"])
        root = rec.root
        assert root.name == "algebra.project"
        assert root.attrs["input_tuples"] == len(rel)
        assert root.attrs["output_tuples"] == len(out)
        assert "pairs_examined" not in root.attrs

    def test_perf_deltas_scoped_to_span(self):
        rel = trains_relation()
        with tracing(TraceRecorder()) as rec:
            algebra.intersect(rel, rel)
        assert all(v >= 0 for v in rec.root.perf.values())


class TestShapeDeterminism:
    QUERY = (
        'EXISTS d. EXISTS a. Train(d, a, "slow") '
        '& (EXISTS e. Train(d, e, "slow"))'
    )

    def shape(self, workers):
        from repro.query.evaluator import Evaluator

        db = trains_db()
        evaluator = Evaluator(
            {name: db.relation(name) for name in db.names}, workers=workers
        )
        with tracing(TraceRecorder()) as rec:
            result = evaluator.evaluate(db.parse(self.QUERY))

        def tree(sp):
            return (sp.name, tuple(tree(c) for c in sp.children))

        return tree(rec.root), len(result)

    def test_serial_vs_parallel_tree_identical(self):
        serial_shape, serial_len = self.shape(workers=None)
        parallel_shape, parallel_len = self.shape(workers=2)
        assert serial_shape == parallel_shape
        assert serial_len == parallel_len


class TestExports:
    def test_to_dict_and_json(self):
        rel = trains_relation()
        with tracing(TraceRecorder()) as rec:
            algebra.union(rel, rel)
        data = rec.root.to_dict()
        assert data["name"] == "algebra.union"
        assert "wall_ms" in data
        round_trip = json.loads(rec.root.to_json())
        assert round_trip["name"] == data["name"]
        recorder_doc = json.loads(rec.to_json())
        assert recorder_doc["traces"][0]["name"] == "algebra.union"

    def test_flamegraph_render(self):
        with tracing(TraceRecorder()) as rec:
            with span("query.evaluate"):
                algebra.project(trains_relation(), ["dep"])
        text = render_flamegraph(rec.root)
        assert "query.evaluate" in text
        assert "algebra.project" in text
        assert "ms" in text
