"""Incremental view maintenance through the versioned catalog.

The contract under test: after *every* commit — streamed append
batches, group-committed mutations, full-state commits, crash-reopen
— each materialized view denotes exactly the point set a from-scratch
evaluation of the installed program derives from the committed EDB.
Plus the transactional trimmings: watermarks, snapshot pinning, view
protection, adoption on reopen, and the wire-level ``append`` /
``install_program`` / ``views`` ops.
"""

import pytest

from repro.core import algebra
from repro.core.errors import SchemaError
from repro.deductive.scenarios import (
    EDGE_SCHEMA,
    edge_batches,
    edge_relation,
    reachability_program,
)
from repro.fuzz.ivm import run_ivm_case
from repro.query import Database
from repro.serve import ReproServer, SyncClient


def assert_views_match_recompute(db: Database) -> None:
    """Every installed view equals a from-scratch naive evaluation."""
    program = db.program
    oracle_db = Database()
    for name in db.names:
        if name not in db.view_names:
            oracle_db.register(name, db.relation(name))
    oracle = program.evaluate(oracle_db, strategy="naive")
    for name in db.view_names:
        assert algebra.equivalent(
            db.relation(name), oracle.relation(name)
        ), f"maintained view {name} diverged from recompute"


def fresh_db(window: int = 4) -> Database:
    db = Database()
    db.create("Edge", temporal=["t"], data=["src", "dst"])
    db.install_program(reachability_program(window))
    return db


class TestAppendStream:
    def test_views_match_recompute_after_every_batch(self):
        db = fresh_db()
        for batch in edge_batches(5, 4, 3, seed=11):
            db.append_stream("Edge", batch)
            assert_views_match_recompute(db)

    def test_append_lands_all_tuples(self):
        db = fresh_db()
        batch = edge_batches(4, 1, 3, seed=0)[0]
        # One transaction: a positive record count (Edge + the
        # refreshed view), and every tuple of the batch visible.
        assert db.append_stream("Edge", batch) > 0
        got = db.relation("Edge").snapshot(0, 48)
        want = edge_relation([batch]).snapshot(0, 48)
        assert got == want

    def test_append_to_unknown_relation(self):
        from repro.core.errors import EvaluationError

        db = fresh_db()
        batch = edge_batches(4, 1, 1, seed=0)[0]
        with pytest.raises(EvaluationError, match="unknown relation"):
            db.append_stream("Nope", batch)

    def test_watermark_advances_with_each_append(self):
        db = fresh_db()
        seen = [db.views()["Reach"]]
        for batch in edge_batches(4, 3, 2, seed=3):
            db.append_stream("Edge", batch)
            seen.append(db.views()["Reach"])
        assert seen == sorted(set(seen)), "watermarks must be monotone"

    def test_untouched_view_watermark_stays(self, tmp_path):
        # A commit that never touches the program's inputs must not
        # pretend to have refreshed the view.
        with Database.open(tmp_path / "db") as db:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.install_program(reachability_program(4))
            db.append_stream("Edge", edge_batches(4, 1, 2, seed=1)[0])
            before = db.views()["Reach"]
            db.create("Other", temporal=["t"])
            db.relation("Other").add_tuple(["5n"], "t >= 0", [])
            db.commit()
            assert db.views()["Reach"] == before
            assert db.snapshot().version > before


class TestDirtyPath:
    def test_retraction_recomputes_views(self, tmp_path):
        # Shrinking the EDB is not an insert-only delta: the catalog
        # must classify it DIRTY and recompute, not union-fold.
        with Database.open(tmp_path / "db") as db:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.install_program(reachability_program(4))
            batches = edge_batches(4, 3, 3, seed=7)
            for batch in batches:
                db.append_stream("Edge", batch)
            db.register("Edge", edge_relation(batches[:-1]))
            db.commit()
            assert_views_match_recompute(db)

    def test_grow_then_shrink_sequence(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.install_program(reachability_program(4))
            batches = edge_batches(5, 4, 2, seed=9)
            db.append_stream("Edge", batches[0])
            db.append_stream("Edge", batches[1])
            db.register("Edge", edge_relation([batches[0]]))
            db.commit()
            assert_views_match_recompute(db)
            db.append_stream("Edge", batches[2])
            assert_views_match_recompute(db)


class TestSnapshotPinning:
    def test_pinned_snapshot_is_isolated_from_appends(self, tmp_path):
        with Database.open(tmp_path / "db") as db:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.install_program(reachability_program(4))
            batches = edge_batches(4, 2, 3, seed=2)
            db.append_stream("Edge", batches[0])
            pinned = db.snapshot()
            before_edge = pinned.relation("Edge").snapshot(0, 48)
            before_reach = pinned.relation("Reach").snapshot(0, 48)
            db.append_stream("Edge", batches[1])
            # The pin still sees the old EDB *and* the old view —
            # never a view ahead of its base relations.
            assert pinned.relation("Edge").snapshot(0, 48) == before_edge
            assert pinned.relation("Reach").snapshot(0, 48) == before_reach
            fresh = db.snapshot()
            assert fresh.version > pinned.version
            assert fresh.relation("Edge").snapshot(0, 48) >= before_edge


class TestDurability:
    def test_views_survive_reopen_and_are_adopted(self, tmp_path):
        root = tmp_path / "db"
        program = reachability_program(4)
        batches = edge_batches(4, 3, 2, seed=4)
        with Database.open(root) as db:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.install_program(program)
            for batch in batches:
                db.append_stream("Edge", batch)
            reach = db.relation("Reach").snapshot(0, 48)
            watermarks = db.views()
        with Database.open(root, create=False) as db:
            # Persisted views are adopted: no recomputation report.
            report = db.install_program(reachability_program(4))
            assert report is None
            assert db.relation("Reach").snapshot(0, 48) == reach
            assert db.views() == watermarks
            assert_views_match_recompute(db)

    def test_verify_forces_recompute_on_reopen(self, tmp_path):
        root = tmp_path / "db"
        with Database.open(root) as db:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.install_program(reachability_program(4))
            db.append_stream("Edge", edge_batches(4, 1, 2, seed=6)[0])
        with Database.open(root, create=False) as db:
            report = db.install_program(
                reachability_program(4), verify=True
            )
            assert report is not None and report.mode == "recompute"
            assert_views_match_recompute(db)

    def test_append_then_reopen_views_consistent(self, tmp_path):
        root = tmp_path / "db"
        with Database.open(root) as db:
            db.create("Edge", temporal=["t"], data=["src", "dst"])
            db.install_program(reachability_program(3))
            db.append_stream("Edge", edge_batches(5, 1, 3, seed=8)[0])
        with Database.open(root, create=False) as db:
            db.install_program(reachability_program(3))
            db.append_stream("Edge", edge_batches(5, 1, 3, seed=18)[0])
            assert_views_match_recompute(db)


class TestViewProtection:
    def test_create_register_drop_guarded(self):
        db = fresh_db()
        with pytest.raises(SchemaError):
            db.create("Reach", temporal=["t"], data=["src", "dst"])
        with pytest.raises(SchemaError):
            db.register("Reach", edge_relation([]))
        with pytest.raises(SchemaError):
            db.drop("Reach")

    def test_append_stream_into_view_guarded(self):
        db = fresh_db()
        batch = edge_batches(4, 1, 1, seed=0)[0]
        with pytest.raises(SchemaError):
            db.append_stream("Reach", batch)

    def test_idb_clash_with_existing_relation(self):
        db = Database()
        db.create("Reach", temporal=["t"], data=["src", "dst"])
        db.create("Edge", temporal=["t"], data=["src", "dst"])
        db.relation("Reach").add_tuple(["1"], "", ["a", "b"])
        db.relation("Edge").add_tuple(["2"], "", ["a", "b"])
        # Adoption requires a matching schema; a matching schema is
        # adopted, a different one must raise.
        clashing = Database()
        clashing.create("Reach", temporal=["t", "u"])
        clashing.create("Edge", temporal=["t"], data=["src", "dst"])
        with pytest.raises(SchemaError):
            clashing.install_program(reachability_program(3))


class TestServeOps:
    @pytest.fixture
    def server(self):
        with ReproServer() as srv:
            yield srv

    @pytest.fixture
    def client(self, server):
        with SyncClient(port=server.port) as c:
            yield c

    def _setup(self, client):
        client.commit(
            [
                {
                    "op": "create",
                    "name": "Edge",
                    "temporal": ["t"],
                    "data": ["src", "dst"],
                }
            ]
        )
        program_text = (
            "declare Reach(t:T, src:D, dst:D)\n"
            "Reach(t, x, y) <- Edge(t, x, y)\n"
            "Reach(t, x, z) <- EXISTS s. EXISTS u. (Reach(s, x, u) "
            "& Edge(t, u, z) & s <= t & t <= s + 4)\n"
        )
        return client.install_program(program_text)

    def test_install_append_views_roundtrip(self, client):
        installed = self._setup(client)
        assert installed["views"] == ["Reach"]
        batch = edge_batches(4, 1, 3, seed=12)[0]
        result = client.append("Edge", batch)
        assert result["records"] > 0
        views = client.views()
        assert set(views) == {"Reach"}
        assert views["Reach"] == result["version"]
        assert client.ask(
            "EXISTS t. EXISTS x. EXISTS y. Reach(t, x, y)"
        )

    def test_wire_mutation_into_view_aborts(self, client):
        self._setup(client)
        with pytest.raises(SchemaError):
            client.commit(
                [
                    {
                        "op": "insert",
                        "name": "Reach",
                        "lrps": ["1 + 4n"],
                        "constraints": "t >= 0",
                        "data": ["a", "b"],
                    }
                ]
            )

    def test_pinned_client_sees_old_views(self, server):
        with SyncClient(port=server.port) as a:
            self._setup(a)
            a.append("Edge", edge_batches(4, 1, 2, seed=13)[0])
            a.snapshot()
            pinned_views = a.views()
            with SyncClient(port=server.port) as b:
                b.append("Edge", edge_batches(4, 1, 2, seed=14)[0])
                assert b.views()["Reach"] > pinned_views["Reach"]
            assert a.views() == pinned_views


class TestFuzzIvmLeg:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_cases_agree(self, seed):
        result = run_ivm_case(seed)
        assert result.status == "ok", result.summary()
        assert result.batches > 0
        assert not result.failing

    def test_cli_flag_runs_ivm_cases(self, capsys):
        from repro.fuzz.cli import fuzz_main

        assert fuzz_main(["--budget", "0", "--ivm", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 case(s)" in out
