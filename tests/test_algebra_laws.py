"""Property tests: the algebra satisfies the relational-algebra laws.

These are *symbolic* identities checked semantically (via window
snapshots, and sometimes via :func:`algebra.equivalent`, which itself
runs through subtraction + emptiness).  They exercise interactions the
per-operation differential tests do not.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema

from tests.helpers import random_relation

SCHEMA = Schema.make(temporal=["X1", "X2"])
WINDOW = (-8, 8)
seeds = st.integers(0, 10_000)


def rel(seed: int, n: int = 2) -> GeneralizedRelation:
    return random_relation(random.Random(seed), SCHEMA, n)


def snap(r: GeneralizedRelation):
    return r.snapshot(*WINDOW)


class TestLatticeLaws:
    @given(seeds, seeds)
    @settings(max_examples=30, deadline=None)
    def test_union_commutative(self, s1, s2):
        a, b = rel(s1), rel(s2)
        assert snap(algebra.union(a, b)) == snap(algebra.union(b, a))

    @given(seeds, seeds)
    @settings(max_examples=30, deadline=None)
    def test_intersection_commutative(self, s1, s2):
        a, b = rel(s1), rel(s2)
        assert snap(algebra.intersect(a, b)) == snap(algebra.intersect(b, a))

    @given(seeds, seeds, seeds)
    @settings(max_examples=20, deadline=None)
    def test_union_associative(self, s1, s2, s3):
        a, b, c = rel(s1, 1), rel(s2, 1), rel(s3, 1)
        left = algebra.union(algebra.union(a, b), c)
        right = algebra.union(a, algebra.union(b, c))
        assert snap(left) == snap(right)

    @given(seeds, seeds, seeds)
    @settings(max_examples=20, deadline=None)
    def test_intersection_distributes_over_union(self, s1, s2, s3):
        a, b, c = rel(s1, 1), rel(s2, 1), rel(s3, 1)
        left = algebra.intersect(a, algebra.union(b, c))
        right = algebra.union(
            algebra.intersect(a, b), algebra.intersect(a, c)
        )
        assert snap(left) == snap(right)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_idempotence(self, s):
        a = rel(s)
        assert snap(algebra.union(a, a)) == snap(a)
        assert snap(algebra.intersect(a, a)) == snap(a)


class TestDifferenceLaws:
    @given(seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_difference_as_intersection_with_complement(self, s1, s2):
        """r1 − r2 == r1 ∩ ¬r2: two independent code paths agree."""
        a, b = rel(s1, 2), rel(s2, 2)
        direct = algebra.subtract(a, b)
        via_complement = algebra.intersect(a, algebra.complement(b))
        assert snap(direct) == snap(via_complement)

    @given(seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_double_difference(self, s1, s2):
        """(r1 − r2) − r2 == r1 − r2."""
        a, b = rel(s1), rel(s2)
        once = algebra.subtract(a, b)
        twice = algebra.subtract(once, b)
        assert snap(once) == snap(twice)

    @given(seeds, seeds, seeds)
    @settings(max_examples=15, deadline=None)
    def test_difference_of_union(self, s1, s2, s3):
        """(a ∪ b) − c == (a − c) ∪ (b − c)."""
        a, b, c = rel(s1, 1), rel(s2, 1), rel(s3, 1)
        left = algebra.subtract(algebra.union(a, b), c)
        right = algebra.union(
            algebra.subtract(a, c), algebra.subtract(b, c)
        )
        assert snap(left) == snap(right)


class TestProjectionSelectionLaws:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_projection_after_union_commutes(self, s):
        a, b = rel(s, 1), rel(s + 1, 1)
        left = algebra.project(algebra.union(a, b), ["X1"])
        right = algebra.union(
            algebra.project(a, ["X1"]), algebra.project(b, ["X1"])
        )
        assert snap_unary(left) == snap_unary(right)

    @given(seeds, st.integers(-5, 5))
    @settings(max_examples=25, deadline=None)
    def test_selection_commutes_with_union(self, s, c):
        a, b = rel(s, 1), rel(s + 7, 1)
        cond = f"X1 <= X2 + {c}"
        left = algebra.select(algebra.union(a, b), cond)
        right = algebra.union(algebra.select(a, cond), algebra.select(b, cond))
        assert snap(left) == snap(right)

    @given(seeds, st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=25, deadline=None)
    def test_selection_composition(self, s, c1, c2):
        a = rel(s)
        one = algebra.select(algebra.select(a, f"X1 <= {c1}"), f"X2 >= {c2}")
        both = algebra.select(a, f"X1 <= {c1} & X2 >= {c2}")
        assert snap(one) == snap(both)

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_join_with_self_is_identity(self, s):
        a = rel(s)
        joined = algebra.join(a, a)
        assert snap(joined) == snap(a)


class TestComplementLaws:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_excluded_middle(self, s):
        a = rel(s, 2)
        u = GeneralizedRelation.universe(SCHEMA)
        rebuilt = algebra.union(a, algebra.complement(a))
        assert algebra.equivalent(rebuilt, u)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_non_contradiction(self, s):
        a = rel(s, 2)
        assert algebra.intersect(a, algebra.complement(a)).is_empty()

    @given(seeds, seeds)
    @settings(max_examples=10, deadline=None)
    def test_de_morgan_intersection(self, s1, s2):
        a, b = rel(s1, 1), rel(s2, 1)
        left = algebra.complement(algebra.intersect(a, b))
        right = algebra.union(
            algebra.complement(a), algebra.complement(b)
        )
        assert snap(left) == snap(right)


def snap_unary(r: GeneralizedRelation):
    return r.snapshot(*WINDOW)
