"""Tests for the command-line shell."""

import io

import pytest

from repro.cli import Session, main, repl


@pytest.fixture
def session():
    return Session()


def run(session: Session, *commands: str) -> list[str]:
    return [session.execute(cmd) for cmd in commands]


class TestBasics:
    def test_empty_and_comment_lines(self, session):
        assert session.execute("") == ""
        assert session.execute("   ") == ""
        assert session.execute("# comment") == ""

    def test_unknown_command(self, session):
        assert "unknown command" in session.execute("frobnicate x")

    def test_help(self, session):
        text = session.execute("help")
        assert "create" in text and "ask" in text

    def test_quit(self, session):
        assert session.execute("quit") == "bye"
        assert session.done


class TestCatalog:
    def test_create_and_list(self, session):
        out = session.execute("create Train(dep:T, arr:T, svc:D)")
        assert "created Train" in out
        assert "Train" in session.execute("list")

    def test_list_empty(self, session):
        assert session.execute("list") == "(no relations)"

    def test_create_malformed(self, session):
        assert session.execute("create Train[dep]").startswith("error")

    def test_insert_and_show(self, session):
        run(
            session,
            "create Train(dep:T, arr:T, svc:D)",
            "insert Train [2 + 60n, 20 + 60n] : dep = arr - 78 | slow",
        )
        shown = session.execute("show Train")
        assert "2 + 60n" in shown and "slow" in shown

    def test_insert_duplicate(self, session):
        run(session, "create P(t:T)", "insert P [2n]")
        assert "already present" in session.execute("insert P [2n]")

    def test_insert_unknown_relation(self, session):
        assert session.execute("insert Nope [2n]").startswith("error")


class TestQueries:
    def setup_db(self, session):
        run(
            session,
            "create Train(dep:T, arr:T, svc:D)",
            "insert Train [2 + 60n, 20 + 60n] : dep = arr - 78 | slow",
            "insert Train [46 + 60n, 50 + 60n] : dep = arr - 64 | express",
        )

    def test_ask(self, session):
        self.setup_db(session)
        assert session.execute(
            'ask EXISTS d. EXISTS a. Train(d, a, "slow") & d >= 60'
        ) == "true"
        assert session.execute(
            'ask EXISTS d. EXISTS a. Train(d, a, "slow") & d = 3'
        ) == "false"

    def test_query_open(self, session):
        self.setup_db(session)
        out = session.execute(
            'query EXISTS a. Train(d, a, "express") & d >= 0 & d <= 60'
        )
        assert "result" in out and "46" in out

    def test_query_error(self, session):
        assert session.execute("ask Nope(t)").startswith("error")

    def test_window(self, session):
        self.setup_db(session)
        out = session.execute("window Train 0 130")
        assert "2, 80, slow" in out

    def test_window_usage(self, session):
        assert session.execute("window Train").startswith("error")

    def test_next_prev(self, session):
        self.setup_db(session)
        assert session.execute("next Train.dep 3") == "46"
        assert session.execute("prev Train.dep 45") == "2"
        assert session.execute("next Train.dep").startswith("error")

    def test_next_none(self, session):
        run(session, "create P(t:T)", "insert P [5] : t <= 5")
        assert session.execute("next P.t 6") == "(none)"


class TestFiles:
    def test_save_and_load(self, session, tmp_path):
        run(
            session,
            "create P(t:T)",
            "insert P [2n] : t >= 0",
            "create Q(u:T)",
            "insert Q [7]",
        )
        path = tmp_path / "db.itql"
        out = session.execute(f"save {path}")
        assert "saved" in out
        fresh = Session()
        out = fresh.execute(f"load {path}")
        assert "P" in out and "Q" in out
        assert fresh.execute("ask EXISTS t. P(t) & t = 4") == "true"
        assert fresh.execute("ask EXISTS u. Q(u + 0) & u = 7") == "true"

    def test_save_selected(self, session, tmp_path):
        run(session, "create P(t:T)", "create Q(t:T)")
        path = tmp_path / "only_p.itql"
        session.execute(f"save {path} P")
        text = path.read_text()
        assert "relation P" in text and "relation Q" not in text

    def test_save_usage(self, session):
        assert session.execute("save").startswith("error")

    def test_load_missing_file(self, session):
        out = session.execute("load /nonexistent/nope.itql")
        assert out.startswith("error") or "No such file" in out


class TestEntryPoints:
    def test_main_with_commands(self, capsys):
        code = main(["-c", "create P(t:T)", "-c", "insert P [3n]",
                     "-c", "ask EXISTS t. P(t) & t = 6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "true" in out

    def test_main_with_script(self, tmp_path, capsys):
        script = tmp_path / "script.itql"
        script.write_text(
            "create P(t:T)\ninsert P [3n]\nask EXISTS t. P(t) & t = 6\nquit\n"
        )
        assert main([str(script)]) == 0
        assert "true" in capsys.readouterr().out

    def test_repl_stream(self):
        session = Session()
        stream = io.StringIO("create P(t:T)\nlist\nquit\n")
        out = io.StringIO()
        repl(session, stream=stream, out=out)
        text = out.getvalue()
        assert "created P" in text and "bye" in text


class TestExplainCommand:
    def test_explain_renders_plan(self):
        session = Session()
        run(session, "create P(t:T)", "insert P [2n]")
        out = session.execute("explain EXISTS t. P(t) & t >= 0")
        assert "project" in out and "scan" in out

    def test_explain_error(self):
        session = Session()
        assert session.execute("explain Nope(t)").startswith("error")


class TestRulesCommand:
    def test_rules_file(self, tmp_path):
        session = Session()
        run(
            session,
            "create Edge(a:T, b:T)",
            "insert Edge [3n, 3n] : a = b - 3 & a >= 0 & a <= 6",
        )
        program = tmp_path / "reach.dl"
        program.write_text(
            "declare Reach(a:T, b:T)\n"
            "Reach(a, b) <- Edge(a, b)\n"
            "Reach(a, c) <- Reach(a, b) & Edge(b, c)\n"
        )
        out = session.execute(f"rules {program}")
        assert "Reach" in out
        assert session.execute(
            "ask EXISTS a. EXISTS b. Reach(a, b) & a = 0 & b = 9"
        ) == "true"

    def test_rules_missing_file(self):
        session = Session()
        assert session.execute("rules /no/such/file.dl").startswith("error")


class TestTraceCommands:
    SETUP = (
        "create Train(dep:T, arr:T, svc:D)",
        "insert Train [2 + 60n, 80 + 60n] : dep = arr - 78 | slow",
    )
    ASK = 'ask EXISTS d. EXISTS a. Train(d, a, "slow") & d >= 60'

    def test_trace_command(self):
        session = Session()
        run(session, *self.SETUP)
        out = session.execute(
            'trace EXISTS d. EXISTS a. Train(d, a, "slow")'
        )
        assert "generalized tuple(s)" in out
        assert "query.evaluate" in out
        assert len(session.traces) == 1

    def test_explain_analyze_query(self):
        session = Session()
        run(session, *self.SETUP)
        out = session.execute(
            'query EXPLAIN ANALYZE EXISTS d. EXISTS a. Train(d, a, "slow")'
        )
        assert "query.evaluate" in out
        assert len(session.traces) == 1

    def test_trace_all_mode(self):
        session = Session(trace_all=True)
        run(session, *self.SETUP)
        out = session.execute(self.ASK)
        assert out.startswith("true")
        assert "query.evaluate" in out
        assert len(session.traces) == 1

    def test_trace_subcommand_writes_json(self, tmp_path):
        import json

        script = tmp_path / "script.itql"
        script.write_text("\n".join(self.SETUP + (self.ASK, "quit")) + "\n")
        out_path = tmp_path / "traces.json"
        code = main(["trace", str(script), "--trace-json", str(out_path)])
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert len(doc["traces"]) == 1
        assert doc["traces"][0]["trace"]["name"] == "query.evaluate"

    def test_trace_json_flag_implies_trace_mode(self, tmp_path):
        import json

        out_path = tmp_path / "traces.json"
        code = main(
            [
                "-c", self.SETUP[0],
                "-c", self.SETUP[1],
                "-c", self.ASK,
                "--trace-json", str(out_path),
            ]
        )
        assert code == 0
        doc = json.loads(out_path.read_text())
        assert len(doc["traces"]) == 1
