"""Tests for the WAL record framing: CRC guards and torn-tail safety."""

import pytest

from repro.core.errors import StorageError
from repro.storage.wal import (
    canonical_json,
    decode_record,
    encode_record,
    scan_wal,
)

PAYLOADS = [
    {"op": "commit", "txn": 1, "lsn": 3},
    {"op": "put", "name": "Train", "relation": {"tuples": [], "schema": []}},
    {"unicode": "héllo ✓", "nested": {"a": [1, 2, {"b": None}]}},
    {},
]


class TestFraming:
    @pytest.mark.parametrize("payload", PAYLOADS)
    def test_round_trip(self, payload):
        assert decode_record(encode_record(payload)) == payload

    def test_canonical_json_is_deterministic(self):
        a = canonical_json({"b": 1, "a": 2})
        b = canonical_json({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'

    def test_record_is_one_line(self):
        record = encode_record(PAYLOADS[1])
        assert record.endswith(b"\n")
        assert record.count(b"\n") == 1

    def test_missing_newline_is_torn(self):
        record = encode_record({"x": 1})[:-1]
        with pytest.raises(StorageError, match="torn"):
            decode_record(record)

    def test_crc_detects_bit_flip(self):
        record = bytearray(encode_record({"x": 12345}))
        record[-3] ^= 0x01  # flip one payload bit
        with pytest.raises(StorageError):
            decode_record(bytes(record))

    def test_length_mismatch_detected(self):
        record = encode_record({"x": 1})
        truncated = record[:-5] + b"\n"
        with pytest.raises(StorageError):
            decode_record(truncated)

    def test_garbage_header(self):
        with pytest.raises(StorageError):
            decode_record(b"not a record at all\n")

    def test_non_object_payload_rejected(self):
        import zlib

        body = b"[1,2,3]"
        crc = zlib.crc32(body) & 0xFFFFFFFF
        record = b"%08x %d " % (crc, len(body)) + body + b"\n"
        with pytest.raises(StorageError, match="not an object"):
            decode_record(record)


class TestScan:
    def log(self, *payloads):
        return b"".join(encode_record(p) for p in payloads)

    def test_empty(self):
        scan = scan_wal(b"")
        assert scan.records == [] and not scan.torn

    def test_full_log(self):
        data = self.log(*PAYLOADS)
        scan = scan_wal(data)
        assert scan.records == PAYLOADS
        assert scan.valid_bytes == len(data)
        assert not scan.torn

    @pytest.mark.parametrize("cut", range(1, 30))
    def test_any_torn_tail_is_detected_and_localized(self, cut):
        """Cutting the log anywhere inside the last record loses exactly
        that record and nothing before it."""
        prefix = self.log(PAYLOADS[0], PAYLOADS[1])
        tail = encode_record(PAYLOADS[2])
        assert cut < len(tail)
        scan = scan_wal(prefix + tail[:cut])
        assert scan.records == [PAYLOADS[0], PAYLOADS[1]]
        assert scan.valid_bytes == len(prefix)
        assert scan.torn

    def test_corrupt_middle_record_stops_scan(self):
        data = bytearray(self.log(*PAYLOADS))
        first_len = len(encode_record(PAYLOADS[0]))
        data[first_len + 12] ^= 0xFF  # corrupt the second record
        scan = scan_wal(bytes(data))
        assert scan.records == [PAYLOADS[0]]
        assert scan.valid_bytes == first_len
        assert scan.torn

    def test_strings_with_newlines_stay_one_line(self):
        # json escapes control characters, so a newline inside a data
        # value cannot break record framing.
        record = encode_record({"text": "line1\nline2"})
        assert record.count(b"\n") == 1
        assert decode_record(record)["text"] == "line1\nline2"
