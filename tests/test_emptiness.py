"""Tests for the emptiness decision procedure (Theorem 3.5)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import atoms_to_dbm, parse_atoms
from repro.core.emptiness import (
    count_in_window,
    relation_is_empty,
    relation_witness,
    tuple_is_empty,
    tuple_witness,
)
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.core.tuples import GeneralizedTuple

from tests.helpers import random_relation, random_tuple


def make(lrps, constraints=""):
    names = [f"X{i + 1}" for i in range(len(lrps))]
    dbm = atoms_to_dbm(parse_atoms(constraints), names)
    return GeneralizedTuple.make(lrps, dbm=dbm)


class TestTupleEmptiness:
    def test_unconstrained_nonempty(self):
        assert not tuple_is_empty(make(["2n", "3n"]))

    def test_window_contradiction(self):
        assert tuple_is_empty(make(["n"], "X1 >= 5 & X1 <= 4"))

    def test_lattice_vs_constraints(self):
        # X1 on 4n, X2 on 4n+1, X1 = X2: offsets incompatible.
        assert tuple_is_empty(make(["4n", "4n + 1"], "X1 = X2"))
        assert not tuple_is_empty(make(["4n", "4n + 1"], "X1 = X2 - 1"))

    def test_grid_gap(self):
        # X1 = X2 + 2 with both on 8n: offset difference 0 ≠ 2 (mod 8).
        assert tuple_is_empty(make(["8n", "8n"], "X1 = X2 + 2"))
        assert not tuple_is_empty(make(["8n", "8n"], "X1 = X2 + 8"))

    def test_bounded_lattice_window(self):
        # 10n restricted to [1, 9]: no multiples of 10 in that window.
        assert tuple_is_empty(make(["10n"], "X1 >= 1 & X1 <= 9"))
        assert not tuple_is_empty(make(["10n"], "X1 >= 1 & X1 <= 10"))

    @given(st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_matches_enumeration(self, seed):
        rng = random.Random(seed)
        t = random_tuple(rng, 2)
        # Constants are <= 6 and periods <= 6, so any nonempty tuple has
        # a point within a modest window.
        brute_nonempty = any(True for _ in t.enumerate(-40, 40))
        assert tuple_is_empty(t) == (not brute_nonempty)


class TestWitness:
    def test_witness_is_member(self):
        t = make(["4n + 3", "8n + 1"], "X1 >= X2 & X1 <= X2 + 5 & X2 >= 2")
        w = tuple_witness(t)
        assert w is not None and t.contains(w)

    def test_no_witness_for_empty(self):
        assert tuple_witness(make(["8n", "8n"], "X1 = X2 + 2")) is None

    def test_relation_witness_includes_data(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        r = GeneralizedRelation.empty(schema)
        r.add_tuple(["2n"], "t >= 10", ["robot"])
        w = relation_witness(r)
        assert w is not None
        assert r.contains_point(w)
        assert w[1] == "robot"

    def test_relation_witness_none(self):
        assert relation_witness(relation(temporal=["t"])) is None

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_witness_always_member(self, seed):
        rng = random.Random(seed)
        t = random_tuple(rng, 3)
        w = tuple_witness(t)
        if w is None:
            assert tuple_is_empty(t)
        else:
            assert t.contains(w)


class TestRelationEmptiness:
    def test_all_tuples_empty(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["n"], "X1 >= 1 & X1 <= 0")
        r.add_tuple(["4n"], "X1 >= 1 & X1 <= 3")
        assert relation_is_empty(r)

    def test_one_nonempty_tuple(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["n"], "X1 >= 1 & X1 <= 0")
        r.add_tuple(["2n"])
        assert not relation_is_empty(r)

    def test_count_in_window(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["2n"])
        assert count_in_window(r, 0, 10) == 6
