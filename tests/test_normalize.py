"""Tests for the normalization algorithm (Theorem 3.2, Example 3.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import atoms_to_dbm, parse_atoms
from repro.core.errors import NormalizationLimitError
from repro.core.lrp import LRP
from repro.core.negation import desingularize
from repro.core.normalize import (
    NormalizedTuple,
    iter_normalize_tuple,
    normalize_relation_tuples,
    normalize_tuple,
    relation_period,
    tuple_explosion_size,
    tuple_period,
)
from repro.core.tuples import GeneralizedTuple

from tests.helpers import random_tuple


def make(lrps, constraints=""):
    names = [f"X{i + 1}" for i in range(len(lrps))]
    dbm = atoms_to_dbm(parse_atoms(constraints), names)
    return GeneralizedTuple.make(lrps, dbm=dbm)


def figure2_tuple() -> GeneralizedTuple:
    """The tuple of Figure 2 / Example 3.2."""
    return make(
        ["4n + 3", "8n + 1"],
        "X1 >= X2 & X1 <= X2 + 5 & X2 >= 2",
    )


class TestPeriods:
    def test_tuple_period(self):
        assert tuple_period(make(["4n + 3", "8n + 1"])) == 8
        assert tuple_period(make([3, 7])) == 1
        assert tuple_period(make(["6n", "4n"])) == 12

    def test_relation_period(self):
        tuples = [make(["4n"]), make(["6n"])]
        assert relation_period(tuples) == 12

    def test_explosion_size(self):
        t = make(["2n", "3n"])
        assert tuple_explosion_size(t, 6) == 3 * 2


class TestExample32:
    """The paper's Example 3.2, step by step."""

    def test_normalized_tuple_count(self):
        # 4n+3 splits into {8n+3, 8n+7}; 8n+1 stays.  One of the two
        # resulting tuples has contradictory constraints and is dropped.
        result = normalize_tuple(figure2_tuple())
        assert len(result) == 1

    def test_surviving_tuple_matches_paper(self):
        (nt,) = normalize_tuple(figure2_tuple())
        assert nt.period == 8
        assert nt.offsets == (3, 1)
        gt = nt.to_generalized()
        # Paper's normal form: [8n+3, 8n+1] ∧ X1 = X2+2 ∧ X2 >= 9.
        assert gt.lrps == (LRP.make(3, 8), LRP.make(1, 8))
        assert gt.contains([11, 9]) and gt.contains([19, 17])
        assert not gt.contains([3, 1])  # X2 >= 9 after snapping
        assert not gt.contains([11, 17])

    def test_dropped_tuple_is_inconsistent(self):
        results = normalize_tuple(figure2_tuple(), keep_empty=True)
        assert len(results) == 2
        empties = [nt for nt in results if nt.is_empty()]
        assert len(empties) == 1
        assert empties[0].offsets == (7, 1)

    def test_semantics_preserved(self):
        t = figure2_tuple()
        window = (-5, 40)
        original = set(t.enumerate(*window))
        covered = set()
        for nt in normalize_tuple(t):
            covered |= set(nt.to_generalized().enumerate(*window))
        assert covered == original


class TestNormalizeTuple:
    def test_singletons_only(self):
        t = make([3, 7], "X1 <= X2")
        (nt,) = normalize_tuple(t)
        assert nt.period == 1
        assert nt.singleton == (True, True)
        assert not nt.is_empty()

    def test_singleton_contradiction_detected(self):
        t = make([9, 7], "X1 <= X2")
        assert normalize_tuple(t) == []

    def test_explicit_period_multiple(self):
        t = make(["2n"])
        result = normalize_tuple(t, period=6)
        assert len(result) == 3
        assert {nt.offsets[0] for nt in result} == {0, 2, 4}

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            normalize_tuple(make(["4n"]), period=6)

    def test_limit_enforced(self):
        t = make(["2n", "3n", "5n"])  # lcm 30 -> 15*10*6 = 900 tuples
        with pytest.raises(NormalizationLimitError):
            normalize_tuple(t, max_tuples=100)

    def test_lazy_iteration_stops_early(self):
        t = make(["2n", "3n"])
        iterator = iter_normalize_tuple(t)
        first = next(iterator)
        assert isinstance(first, NormalizedTuple)

    @given(st.integers(0, 10_000), st.integers(1, 3))
    @settings(max_examples=80, deadline=None)
    def test_normalization_preserves_semantics(self, seed, arity):
        rng = random.Random(seed)
        t = random_tuple(rng, arity)
        window = (-12, 12)
        original = set(t.enumerate(*window))
        covered = set()
        for nt in normalize_tuple(t):
            covered |= set(nt.to_generalized().enumerate(*window))
        assert covered == original

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_normal_form_tuples_are_disjoint(self, seed):
        """Normalization partitions: no point is covered twice."""
        rng = random.Random(seed)
        t = random_tuple(rng, 2)
        pieces = [nt.to_generalized() for nt in normalize_tuple(t)]
        window = (-10, 10)
        for a in range(window[0], window[1] + 1):
            for b in range(window[0], window[1] + 1):
                hits = sum(p.contains([a, b]) for p in pieces)
                assert hits <= 1


class TestRelationNormalization:
    def test_common_period(self):
        tuples = [make(["2n"]), make(["3n"])]
        period, normalized = normalize_relation_tuples(tuples)
        assert period == 6
        assert len(normalized) == 3 + 2

    def test_relation_limit(self):
        tuples = [make(["7n"]), make(["11n"]), make(["13n"])]
        with pytest.raises(NormalizationLimitError):
            normalize_relation_tuples(tuples, max_tuples=50)


class TestDesingularize:
    def test_periodic_untouched(self):
        (nt,) = normalize_tuple(make(["2n"], "X1 >= 4"))
        assert desingularize(nt) is nt

    def test_singleton_becomes_pinned_periodic(self):
        (nt,) = normalize_tuple(make(["2n", 9], "X1 <= X2"), period=2)
        flat = desingularize(nt)
        assert flat.singleton == (False, False)
        assert flat.offsets == (0, 1)
        window = (-6, 14)
        before = set(nt.to_generalized().enumerate(*window))
        after = set(flat.to_generalized().enumerate(*window))
        assert before == after

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_desingularize_preserves_semantics(self, seed):
        rng = random.Random(seed)
        t = random_tuple(rng, 2)
        window = (-10, 10)
        for nt in normalize_tuple(t):
            flat = desingularize(nt)
            assert set(flat.to_generalized().enumerate(*window)) == set(
                nt.to_generalized().enumerate(*window)
            )


class TestNormalizedIntersect:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_intersect_matches_sets(self, seed):
        rng = random.Random(seed)
        t1 = random_tuple(rng, 2)
        t2 = random_tuple(rng, 2)
        period = relation_period([t1, t2])
        n1 = normalize_tuple(t1, period=period)
        n2 = normalize_tuple(t2, period=period)
        window = (-10, 10)
        expected = set(t1.enumerate(*window)) & set(t2.enumerate(*window))
        covered = set()
        for a in n1:
            for b in n2:
                meet = a.intersect(b)
                if meet is not None and not meet.is_empty():
                    covered |= set(meet.to_generalized().enumerate(*window))
        assert covered == expected

    def test_period_mismatch_rejected(self):
        (a,) = normalize_tuple(make(["2n"]))
        (b,) = normalize_tuple(make(["3n"]))
        with pytest.raises(ValueError):
            a.intersect(b)
