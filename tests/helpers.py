"""Shared test utilities: brute-force reference semantics and generators.

The backbone of the suite is *differential testing*: every symbolic
algebra operation is compared against plain set operations on the
relations' denoted point sets restricted to a finite window.  Windows
are chosen larger than the lcm of the periods in play so that periodic
behaviour is exercised, not just one fundamental domain.
"""

from __future__ import annotations

import random

from repro.core.constraints import Op, VarConstAtom, VarVarAtom
from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple

SMALL_PERIODS = [0, 1, 2, 3, 4, 6]
SMALL_OFFSETS = range(-6, 7)


def random_lrp(rng: random.Random, periods=SMALL_PERIODS) -> LRP:
    """A random small lrp."""
    period = rng.choice(periods)
    offset = rng.choice(list(SMALL_OFFSETS))
    return LRP.make(offset, period)


def random_dbm(rng: random.Random, arity: int, n_constraints: int | None = None) -> DBM:
    """A random restricted-constraint system over ``arity`` attributes."""
    dbm = DBM(arity)
    if n_constraints is None:
        n_constraints = rng.randint(0, arity + 1)
    for _ in range(n_constraints):
        kind = rng.random()
        const = rng.randint(-6, 6)
        i = rng.randrange(arity)
        if kind < 0.4 and arity >= 2:
            j = rng.randrange(arity)
            if j != i:
                dbm.add_difference(i, j, const)
                continue
        if kind < 0.7:
            dbm.add_upper(i, const)
        else:
            dbm.add_lower(i, const)
    return dbm


def random_tuple(
    rng: random.Random,
    arity: int,
    data_choices: list[tuple] | None = None,
) -> GeneralizedTuple:
    """A random generalized tuple of the given temporal arity."""
    lrps = [random_lrp(rng) for _ in range(arity)]
    data = rng.choice(data_choices) if data_choices else ()
    return GeneralizedTuple(
        lrps=tuple(lrps), dbm=random_dbm(rng, arity), data=data
    )


def random_relation(
    rng: random.Random,
    schema: Schema,
    n_tuples: int,
    data_choices: list[tuple] | None = None,
) -> GeneralizedRelation:
    """A random generalized relation over ``schema``."""
    if schema.data_arity and not data_choices:
        raise ValueError("data_choices required for schemas with data")
    out = GeneralizedRelation.empty(schema)
    for _ in range(n_tuples):
        out.add(
            random_tuple(
                rng, schema.temporal_arity, data_choices=data_choices
            )
        )
    return out


def window_universe(schema: Schema, low: int, high: int, data_choices=()):
    """All schema-order points with temporal coordinates in the window."""
    import itertools

    temporal_axes = [range(low, high + 1)] * schema.temporal_arity
    data_axes = list(data_choices) if schema.data_arity else [()]
    points = set()
    for data in data_axes:
        for temporal in itertools.product(*temporal_axes):
            dummy = GeneralizedRelation.empty(schema)
            points.add(dummy.join_point(temporal, data))
    return points


def assert_same_window(
    symbolic: GeneralizedRelation,
    expected_points: set,
    low: int,
    high: int,
    context: str = "",
) -> None:
    """Assert the symbolic relation matches the expected window point set."""
    got = symbolic.snapshot(low, high)
    missing = expected_points - got
    extra = got - expected_points
    assert not missing and not extra, (
        f"{context}: window [{low},{high}] mismatch; "
        f"missing={sorted(missing)[:5]} extra={sorted(extra)[:5]}"
    )
