"""Tests for the exact temporal utilities."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SchemaError
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.core.temporal import (
    ColumnProfile,
    column_profile,
    count_points,
    is_finite,
    max_value,
    min_value,
    next_event,
    prev_event,
)

from tests.helpers import random_relation


def periodic() -> GeneralizedRelation:
    r = relation(temporal=["t"])
    r.add_tuple(["3 + 7n"], "t >= 0")
    r.add_tuple(["5 + 7n"], "t >= 10 & t <= 40")
    return r


class TestNextPrevEvent:
    def test_next_basic(self):
        r = periodic()
        assert next_event(r, "t", 0) == 3
        assert next_event(r, "t", 4) == 10
        assert next_event(r, "t", 11) == 12
        assert next_event(r, "t", 1_000_000) == 1_000_002  # 3 + 7n

    def test_next_respects_upper_bounds(self):
        r = relation(temporal=["t"])
        r.add_tuple(["2n"], "t <= 10")
        assert next_event(r, "t", 9) == 10
        assert next_event(r, "t", 11) is None

    def test_prev_basic(self):
        r = periodic()
        assert prev_event(r, "t", 2) is None  # t >= 0 and first point is 3
        assert prev_event(r, "t", 3) == 3
        assert prev_event(r, "t", 11) == 10
        assert prev_event(r, "t", 1_000_000) == 999_995  # 3 + 7n

    def test_prev_respects_lower_bounds(self):
        r = relation(temporal=["t"])
        r.add_tuple(["2n"], "t >= 10")
        assert prev_event(r, "t", 9) is None
        assert prev_event(r, "t", 100) == 100

    def test_singleton_points(self):
        r = relation(temporal=["t"])
        r.add_tuple([17])
        assert next_event(r, "t", 0) == 17
        assert next_event(r, "t", 18) is None
        assert prev_event(r, "t", 100) == 17

    def test_unknown_or_data_column(self):
        r = GeneralizedRelation.empty(
            Schema.make(temporal=["t"], data=["d"])
        )
        with pytest.raises(SchemaError):
            next_event(r, "zzz", 0)
        with pytest.raises(SchemaError):
            next_event(r, "d", 0)

    def test_multicolumn_via_projection(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["10n", "3 + 10n"], "a = b - 3 & a >= 0")
        assert next_event(r, "b", 0) == 3
        assert next_event(r, "a", 1) == 10

    @given(st.integers(0, 10_000), st.integers(-30, 30))
    @settings(max_examples=60, deadline=None)
    def test_next_matches_enumeration(self, seed, after):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["t"]), 3)
        got = next_event(r, "t", after)
        window = sorted(
            x for (x,) in r.snapshot(after, after + 50)
        )
        if window:
            assert got == window[0]
        elif got is not None:
            # events may exist beyond the check window; verify membership
            assert got >= after and r.contains([got])

    @given(st.integers(0, 10_000), st.integers(-30, 30))
    @settings(max_examples=60, deadline=None)
    def test_prev_matches_enumeration(self, seed, before):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["t"]), 3)
        got = prev_event(r, "t", before)
        window = sorted(
            x for (x,) in r.snapshot(before - 50, before)
        )
        if window:
            assert got == window[-1]
        elif got is not None:
            assert got <= before and r.contains([got])


class TestProfilesAndBounds:
    def test_bounded_profile(self):
        r = relation(temporal=["t"])
        r.add_tuple(["3n"], "t >= 0 & t <= 30")
        profile = column_profile(r, "t")
        assert profile == ColumnProfile(
            lower=0, upper=30, finite=True, count=11, period=3
        )

    def test_unbounded_profile(self):
        r = periodic()
        profile = column_profile(r, "t")
        # lattice-tight: the first point of 3 + 7n at or above 0 is 3
        assert profile.lower == 3
        assert profile.upper is None and not profile.finite
        assert profile.period == 7

    def test_empty_relation_profile(self):
        profile = column_profile(relation(temporal=["t"]), "t")
        assert profile.finite and profile.count == 0

    def test_min_max(self):
        r = relation(temporal=["t"])
        r.add_tuple(["5n"], "t >= -10 & t <= 13")
        assert min_value(r, "t") == -10
        assert max_value(r, "t") == 10  # largest multiple of 5 <= 13

    def test_bounds_are_lattice_tight(self):
        """Bounds come from the normalized form, so they are attained."""
        r = relation(temporal=["t"])
        r.add_tuple(["7n"], "t >= 1 & t <= 20")
        assert min_value(r, "t") == 7
        assert max_value(r, "t") == 14


class TestFinitenessAndCounting:
    def test_finite_relation(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["2n", "2n"], "a >= 0 & a <= 6 & b >= 0 & b <= 4 & a <= b")
        assert is_finite(r)
        expected = {
            (a, b)
            for a in range(0, 7, 2)
            for b in range(0, 5, 2)
            if a <= b
        }
        assert count_points(r) == len(expected)

    def test_infinite_relation(self):
        r = periodic()
        assert not is_finite(r)
        assert count_points(r) is None

    def test_empty(self):
        r = relation(temporal=["t"])
        assert is_finite(r) and count_points(r) == 0

    def test_zero_arity(self):
        r = relation(temporal=[])
        r.add_tuple([])
        assert is_finite(r) and count_points(r) == 1

    def test_data_only(self):
        r = GeneralizedRelation.empty(Schema.make(data=["d"]))
        r.add_tuple([], data=["x"])
        r.add_tuple([], data=["y"])
        assert is_finite(r) and count_points(r) == 2

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_count_matches_enumeration_when_finite(self, seed):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["a", "b"]), 2)
        if not is_finite(r):
            assert count_points(r) is None
            return
        # All bounds are <= 6 in magnitude and periods <= 6, so a wide
        # window is exhaustive for a finite relation built this way.
        assert count_points(r) == len(r.snapshot(-80, 80))
