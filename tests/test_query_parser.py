"""Tests for the query language parser and sort inference."""

import pytest

from repro.core.errors import ParseError
from repro.core.relations import Schema
from repro.query import (
    And,
    Cmp,
    CmpOp,
    DataConst,
    DataEq,
    DataVar,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Sort,
    TempConst,
    TempVar,
    free_variables,
    parse_query,
)

SCHEMAS = {
    "Perform": Schema.make(temporal=["t1", "t2"], data=["robot", "task"]),
    "Tick": Schema.make(temporal=["t"]),
    "Label": Schema.make(data=["name"]),
}


def parse(text):
    return parse_query(text, SCHEMAS)


class TestAtoms:
    def test_predicate_with_mixed_args(self):
        q = parse('Perform(t1, t2 + 3, x, "task2")')
        assert q == Pred(
            "Perform",
            (
                TempVar("t1"),
                TempVar("t2", 3),
                DataVar("x"),
                DataConst("task2"),
            ),
        )

    def test_temporal_constant_argument(self):
        q = parse("Tick(5)")
        assert q == Pred("Tick", (TempConst(5),))

    def test_offset_folding_on_constants(self):
        q = parse("Tick(5 + 2)")
        assert q == Pred("Tick", (TempConst(7),))

    def test_comparison(self):
        q = parse("t1 + 5 <= t2")
        assert q == Cmp(TempVar("t1", 5), CmpOp.LE, TempVar("t2"))

    def test_comparison_with_constant(self):
        q = parse("t1 < 10")
        assert q == Cmp(TempVar("t1"), CmpOp.LT, TempConst(10))

    def test_data_equality_with_string(self):
        q = parse('x = "task1"')
        assert q == DataEq(DataVar("x"), DataConst("task1"))

    def test_data_equality_between_vars(self):
        # z is forced to data sort by its predicate position.
        q = parse('EXISTS z. Perform(t1, t2, z, "t") & z = w')
        body = q.body
        assert isinstance(body, And)
        assert body.parts[1] == DataEq(DataVar("z"), DataVar("w"))

    def test_negative_temporal_constant(self):
        q = parse("t1 >= -5")
        assert q == Cmp(TempVar("t1"), CmpOp.GE, TempConst(-5))


class TestConnectivesAndQuantifiers:
    def test_precedence(self):
        q = parse("Tick(t) & Tick(u) | Tick(v)")
        assert isinstance(q, Or)
        assert isinstance(q.parts[0], And)

    def test_implication_binds_loosest(self):
        q = parse("Tick(t) & Tick(u) -> Tick(v)")
        assert isinstance(q, Implies)
        assert isinstance(q.antecedent, And)

    def test_negation(self):
        q = parse("~Tick(t)")
        assert isinstance(q, Not)

    def test_quantifier_sorts_inferred(self):
        q = parse("EXISTS t. Tick(t)")
        assert isinstance(q, Exists) and q.sort is Sort.TEMPORAL
        q = parse('EXISTS x. Perform(a, b, x, "task1")')
        assert q.sort is Sort.DATA

    def test_forall(self):
        q = parse("FORALL t. Tick(t) -> t >= 0")
        assert isinstance(q, Forall)

    def test_nested_quantifiers(self):
        q = parse("EXISTS t. FORALL u. Tick(t) & (Tick(u) -> u <= t)")
        assert isinstance(q, Exists)
        assert isinstance(q.body, Forall)

    def test_example_4_1_parses(self):
        text = """
        EXISTS x. EXISTS y. EXISTS t1. EXISTS t2.
        FORALL t3. FORALL t4. FORALL z.
          (Perform(t1, t2, x, "task2")
             & t1 <= t3 & t3 <= t4 & t4 <= t2 & t1 + 5 <= t2)
          -> ~Perform(t3, t4, y, z)
        """
        q = parse(text)
        assert not free_variables(q)


class TestErrors:
    def test_unknown_predicate(self):
        with pytest.raises(ParseError):
            parse("Nope(t)")

    def test_wrong_arity(self):
        with pytest.raises(ParseError):
            parse("Tick(t, u)")

    def test_sort_clash(self):
        with pytest.raises(ParseError):
            parse('Perform(x, t2, x, "task1")')

    def test_string_in_temporal_position(self):
        with pytest.raises(ParseError):
            parse('Tick("now")')

    def test_data_inequality_rejected(self):
        with pytest.raises(ParseError):
            parse('x <= "task1"')

    def test_successor_on_data_var(self):
        with pytest.raises(ParseError):
            parse('EXISTS x. Perform(t1, t2, x, "q") & Label(x + 1)')

    def test_trailing_garbage(self):
        with pytest.raises(ParseError) as exc:
            parse("Tick(t) Tick(u)")
        assert (exc.value.line, exc.value.column) == (1, 8)
        assert "(at line 1, column 8)" in str(exc.value)

    def test_unclosed_paren(self):
        with pytest.raises(ParseError) as exc:
            parse("(Tick(t)")
        assert (exc.value.line, exc.value.column) == (1, 9)
        assert "(at line 1, column 9)" in str(exc.value)

    def test_multiline_error_reports_line_and_column(self):
        # Position is line/column into the source, not a byte offset:
        # the error is at column 8 of line 2, byte offset 17.
        with pytest.raises(ParseError) as exc:
            parse("EXISTS t.\nTick(t,")
        assert (exc.value.line, exc.value.column) == (2, 8)
        assert "(at line 2, column 8)" in str(exc.value)
        assert "position" not in str(exc.value)

    def test_bad_character_reports_location(self):
        with pytest.raises(ParseError) as exc:
            parse("Tick(t) %")
        assert exc.value.line == 1
        assert exc.value.column is not None


class TestFreeVariables:
    def test_free_and_bound(self):
        q = parse("EXISTS t. Tick(t) & Tick(u)")
        assert free_variables(q) == {"u": Sort.TEMPORAL}

    def test_closed(self):
        q = parse("EXISTS t. Tick(t)")
        assert free_variables(q) == {}

    def test_mixed_sorts(self):
        q = parse('Perform(t1, t2, x, "task1")')
        assert free_variables(q) == {
            "t1": Sort.TEMPORAL,
            "t2": Sort.TEMPORAL,
            "x": Sort.DATA,
        }


class TestNotEqualSugar:
    def test_temporal_not_equal(self):
        q = parse("t1 != 3")
        assert isinstance(q, Not)
        assert q.body == Cmp(TempVar("t1"), CmpOp.EQ, TempConst(3))

    def test_data_not_equal(self):
        q = parse('EXISTS x. Perform(t1, t2, x, "k") & x != "robot1"')
        body = q.body
        assert isinstance(body.parts[1], Not)
        assert body.parts[1].body == DataEq(DataVar("x"), DataConst("robot1"))

    def test_var_var_not_equal_evaluates(self):
        from repro.query import Database

        db = Database()
        db.create("R", temporal=["a", "b"])
        db.relation("R").add_tuple(["n", "n"], "a <= b & a >= b - 2")
        res = db.query("R(t, u) & t != u")
        assert res.contains([0, 1]) and res.contains([0, 2])
        assert not res.contains([1, 1])
