"""Tests for the Presburger AST, parser and normal forms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParseError
from repro.presburger import (
    And,
    Comparison,
    Congruence,
    Not,
    Or,
    Rel,
    comparison,
    congruence,
    conj,
    disj,
    neg,
    parse_formula,
    solutions,
    to_dnf,
    to_nnf,
)


class TestAtoms:
    def test_comparison_eval(self):
        atom = comparison({"x": 3, "y": -2}, Rel.LE, 5)
        assert atom.evaluate({"x": 1, "y": 0})
        assert not atom.evaluate({"x": 2, "y": 0})

    def test_comparison_drops_zero_coeffs(self):
        atom = comparison({"x": 0, "y": 1}, Rel.EQ, 0)
        assert atom.variables() == {"y"}

    def test_congruence_eval(self):
        atom = congruence({"x": 2}, 3, 7)
        assert atom.evaluate({"x": 5})  # 10 ≡ 3 (mod 7)
        assert not atom.evaluate({"x": 4})

    def test_congruence_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            congruence({"x": 1}, 0, 0)

    def test_rel_holds(self):
        assert Rel.LT.holds(1, 2) and not Rel.LT.holds(2, 2)
        assert Rel.GE.holds(2, 2)


class TestConnectives:
    def test_and_or_not(self):
        x_pos = comparison({"x": 1}, Rel.GT, 0)
        x_even = congruence({"x": 1}, 0, 2)
        formula = conj(x_pos, neg(x_even))
        assert formula.evaluate({"x": 3})
        assert not formula.evaluate({"x": 4})
        assert not formula.evaluate({"x": -3})

    def test_neg_collapses_double_negation(self):
        atom = comparison({"x": 1}, Rel.EQ, 0)
        assert neg(neg(atom)) == atom

    def test_variables_collected(self):
        formula = disj(
            comparison({"x": 1}, Rel.EQ, 0), congruence({"y": 1}, 0, 2)
        )
        assert formula.variables() == {"x", "y"}

    def test_str_smoke(self):
        formula = conj(
            comparison({"x": 1}, Rel.LE, 3), neg(congruence({"x": 1}, 0, 2))
        )
        text = str(formula)
        assert "<=" in text and "mod 2" in text


class TestNnf:
    @given(st.integers(-4, 4), st.integers(-6, 6))
    def test_nnf_preserves_semantics_comparison(self, k, c):
        for rel in Rel:
            atom = comparison({"x": k}, rel, c)
            negated = Not(atom)
            nnf = to_nnf(negated)
            for x in range(-10, 11):
                assert nnf.evaluate({"x": x}) == (not atom.evaluate({"x": x}))

    @given(st.integers(1, 6), st.integers(-6, 6), st.integers(1, 5))
    def test_nnf_preserves_semantics_congruence(self, k, c, m):
        atom = congruence({"x": k}, c, m)
        nnf = to_nnf(Not(atom))
        for x in range(-10, 11):
            assert nnf.evaluate({"x": x}) == (not atom.evaluate({"x": x}))

    def test_nnf_de_morgan(self):
        a = comparison({"x": 1}, Rel.LE, 0)
        b = comparison({"x": 1}, Rel.GE, 5)
        nnf = to_nnf(Not(And((a, b))))
        assert isinstance(nnf, Or)

    def test_dnf_structure(self):
        a = comparison({"x": 1}, Rel.LE, 0)
        b = congruence({"x": 1}, 0, 2)
        c = comparison({"x": 1}, Rel.GE, 5)
        branches = to_dnf(And((Or((a, c)), b)))
        assert len(branches) == 2
        assert all(len(branch) == 2 for branch in branches)


class TestParser:
    @pytest.mark.parametrize(
        "text,env,expected",
        [
            ("3v = 5", {"v": 1}, False),
            ("3v = 6", {"v": 2}, True),
            ("2x = 3 mod 7", {"x": 5}, True),
            ("x < y", {"x": 1, "y": 2}, True),
            ("3x < 2y + 5", {"x": 1, "y": 0}, True),
            ("3x < 2y + 5", {"x": 2, "y": 0}, False),
            ("x = y mod 2", {"x": 4, "y": 6}, True),
            ("~(x = 0)", {"x": 1}, True),
            ("x >= 0 & x <= 5", {"x": 3}, True),
            ("x < 0 | x > 5", {"x": 3}, False),
            ("-x < 2", {"x": -1}, True),
            ("x - y = 3", {"x": 5, "y": 2}, True),
            ("2 * x = 4", {"x": 2}, True),
        ],
    )
    def test_parse_and_evaluate(self, text, env, expected):
        assert parse_formula(text).evaluate(env) == expected

    @pytest.mark.parametrize(
        "text", ["", "x +", "x == 3", "(x = 1", "x = 1)", "x = 1 mod", "x < 1 mod 3"]
    )
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_formula(text)

    def test_precedence_and_over_or(self):
        formula = parse_formula("x = 0 | x = 1 & x = 2")
        # Parsed as x=0 | (x=1 & x=2): satisfied by x=0 only.
        assert formula.evaluate({"x": 0})
        assert not formula.evaluate({"x": 1})

    def test_constants_fold(self):
        formula = parse_formula("x + 2 = y - 3")
        assert formula.evaluate({"x": 0, "y": 5})


class TestSolutions:
    def test_window_solutions(self):
        formula = parse_formula("x = 0 mod 3 & x > 0")
        assert solutions(formula, ["x"], -5, 10) == {(3,), (6,), (9,)}

    def test_extra_axis(self):
        formula = parse_formula("x = 0")
        sols = solutions(formula, ["x", "y"], -1, 1)
        assert sols == {(0, -1), (0, 0), (0, 1)}
