"""Tests for query plan explanation."""

import pytest

from repro.query import Database
from repro.query.explain import PlanNode, explain


def db_fixture() -> Database:
    db = Database()
    db.create("Even", temporal=["t"])
    db.relation("Even").add_tuple(["2n"])
    db.create("Perform", temporal=["t1", "t2"], data=["robot", "task"])
    db.relation("Perform").add_tuple(
        ["2 + 2n", "4 + 2n"], "t1 = t2 - 2", ["robot1", "task1"]
    )
    return db


class TestExplain:
    def test_scan_plan(self):
        plan = explain(db_fixture(), "Even(t)")
        assert plan.operator == "scan"
        assert "Even" in plan.detail
        assert plan.out_tuples == 1
        assert not plan.children

    def test_join_plan(self):
        plan = explain(db_fixture(), "Even(t) & t >= 0")
        assert plan.operator == "join"
        assert len(plan.children) == 2
        ops = {child.operator for child in plan.children}
        assert ops == {"scan", "compare"}

    def test_projection_plan(self):
        plan = explain(db_fixture(), "EXISTS t. Even(t)")
        assert plan.operator == "project"
        assert "∃t" in plan.detail
        assert plan.children[0].operator == "scan"

    def test_forall_rewrites(self):
        plan = explain(db_fixture(), "FORALL t. Even(t) | ~Even(t)")
        # ∀ becomes ~∃~; the forall node wraps the rewritten subtree.
        assert plan.operator == "forall"
        assert plan.children[0].operator == "complement"
        assert plan.children[0].children[0].operator == "project"

    def test_negation_pushing_recorded(self):
        plan = explain(db_fixture(), "~(Even(t) & Even(t + 1))")
        # De Morgan: the complement node rewrites to a union of
        # per-atom complements — no complement over the conjunction.
        assert plan.operator == "complement"
        (union,) = plan.children
        assert union.operator == "union"
        assert all(c.operator == "complement" for c in union.children)
        # the pushed-in complements sit directly over scans
        for comp in union.children:
            assert comp.children[0].operator == "scan"

    def test_sizes_reported(self):
        plan = explain(
            db_fixture(),
            'EXISTS t1. EXISTS t2. Perform(t1, t2, r, "task1")',
        )
        assert plan.out_tuples >= 1
        assert "robot" in plan.out_schema or "r:D" in plan.out_schema

    def test_render(self):
        plan = explain(db_fixture(), "Even(t) & t >= 0")
        text = str(plan)
        assert "join" in text and "scan" in text
        # children indented under the root
        lines = text.splitlines()
        assert lines[1].startswith("  ")

    def test_string_and_ast_inputs(self):
        db = db_fixture()
        text_plan = explain(db, "Even(t)")
        ast_plan = explain(db, db.parse("Even(t)"))
        assert text_plan.operator == ast_plan.operator

    def test_plan_matches_query_result(self):
        db = db_fixture()
        plan = explain(db, "Even(t) & t >= 0 & t <= 10")
        result = db.query("Even(t) & t >= 0 & t <= 10")
        assert plan.out_tuples == len(result)
