"""Tests for seeded case generation."""

from dataclasses import replace

from repro.fuzz.case import case_from_dict
from repro.fuzz.expr import (
    Complement,
    Join,
    Leaf,
    Product,
    Project,
    Select,
)
from repro.fuzz.gen import (
    DEFAULT_PROFILE,
    case_seed,
    generate_case,
)

SEEDS = range(120)


class TestDeterminism:
    def test_same_seed_same_case(self):
        for seed in (0, 7, 1234):
            a = generate_case(seed)
            b = generate_case(seed)
            assert a.to_dict() == b.to_dict()

    def test_round_trip_preserves_generated_cases(self):
        for seed in range(30):
            case = generate_case(seed)
            back = case_from_dict(case.to_dict())
            assert back.expr == case.expr
            assert set(back.relations) == set(case.relations)
            for name in case.relations:
                assert back.relations[name].snapshot(-15, 15) == case.relations[
                    name
                ].snapshot(-15, 15)

    def test_case_seed_derivation(self):
        assert case_seed(0, 5) == 5
        assert case_seed(2, 5) == 2 * 1_000_003 + 5
        # Distinct (base, index) pairs in normal ranges never collide.
        seen = {case_seed(b, i) for b in range(4) for i in range(1000)}
        assert len(seen) == 4000


class TestValidity:
    def test_generated_cases_validate(self):
        for seed in SEEDS:
            case = generate_case(seed)
            case.validate()
            schema = case.result_schema()
            assert schema.temporal_arity <= DEFAULT_PROFILE.max_temporal_arity
            assert case.expr.leaf_names() == set(case.relations)

    def test_windows_follow_profile(self):
        profile = replace(DEFAULT_PROFILE, low=-2, high=7)
        case = generate_case(11, profile)
        assert (case.low, case.high) == (-2, 7)

    def test_data_cases_carry_domains(self):
        for seed in SEEDS:
            case = generate_case(seed)
            data_names = {
                n for r in case.relations.values() for n in r.schema.data_names
            }
            for name in data_names:
                assert name in case.data_domains


class TestCoverage:
    """The generator exercises every operation and relation shape."""

    def test_all_op_kinds_appear(self):
        seen = set()
        for seed in range(400):
            for node in generate_case(seed).expr.walk():
                seen.add(type(node).__name__)
        assert {
            "Leaf",
            "Union",
            "Intersect",
            "Subtract",
            "Join",
            "Product",
            "Select",
            "Project",
            "Complement",
        } <= seen

    def test_projection_sometimes_drops_and_sometimes_reorders(self):
        drops = reorders = 0
        for seed in range(400):
            case = generate_case(seed)
            env = case.schemas()
            for node in case.expr.walk():
                if not isinstance(node, Project):
                    continue
                child_schema = node.child.schema(env)
                if set(node.names) < set(child_schema.names):
                    drops += 1
                elif node.names != child_schema.names:
                    reorders += 1
        assert drops > 0 and reorders > 0

    def test_secondary_schemas_and_data_both_appear(self):
        with_secondary = with_data = 0
        for seed in range(200):
            case = generate_case(seed)
            if "S" in case.relations:
                with_secondary += 1
            if case.data_domains:
                with_data += 1
        assert with_secondary > 0
        assert with_data > 0

    def test_joins_overlap_and_products_are_disjoint(self):
        for seed in range(400):
            case = generate_case(seed)
            env = case.schemas()
            for node in case.expr.walk():
                if isinstance(node, Product):
                    s1 = node.left.schema(env)
                    s2 = node.right.schema(env)
                    assert not (set(s1.names) & set(s2.names))
                elif isinstance(node, Join):
                    node.schema(env)  # must be well-formed

    def test_selects_parse_against_their_child(self):
        for seed in range(400):
            case = generate_case(seed)
            env = case.schemas()
            for node in case.expr.walk():
                if isinstance(node, (Select, Complement)):
                    node.schema(env)  # must not raise
