"""Tests for selection, cross product and natural join."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.errors import SchemaError
from repro.core.relations import GeneralizedRelation, Schema, relation

from tests.helpers import random_relation

WINDOW = (-8, 8)


class TestSelection:
    def test_temporal_selection(self):
        r = relation(temporal=["X1", "X2"])
        r.add_tuple(["2n", "3n"])
        out = algebra.select(r, "X1 <= X2 - 1")
        assert out.contains([2, 3]) and not out.contains([6, 6])

    def test_selection_narrows(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["2n"], "X1 >= 0")
        out = algebra.select(r, "X1 <= 10")
        pts = {x for (x,) in out.snapshot(-20, 30)}
        assert pts == {0, 2, 4, 6, 8, 10}

    def test_unsatisfiable_selection_drops_tuples(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["2n"], "X1 >= 5")
        out = algebra.select(r, "X1 <= 4")
        assert len(out) == 0

    def test_rejects_data_attribute(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        r = GeneralizedRelation.empty(schema)
        with pytest.raises(SchemaError):
            algebra.select(r, "who >= 3")

    def test_select_data(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        r = GeneralizedRelation.empty(schema)
        r.add_tuple(["2n"], data=["a"])
        r.add_tuple(["3n"], data=["b"])
        out = algebra.select_data(r, "who", "a")
        assert out.contains([2], ["a"]) and not out.contains([3], ["b"])

    def test_select_data_equal(self):
        schema = Schema.make(temporal=["t"], data=["p", "q"])
        r = GeneralizedRelation.empty(schema)
        r.add_tuple(["n"], data=["x", "x"])
        r.add_tuple(["n"], data=["x", "y"])
        out = algebra.select_data_equal(r, "p", "q")
        assert len(out) == 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_selection_differential(self, seed):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["X1", "X2"]), 3)
        out = algebra.select(r, "X1 <= X2 + 1")
        expected = {
            (a, b) for (a, b) in r.snapshot(*WINDOW) if a <= b + 1
        }
        assert out.snapshot(*WINDOW) == expected


class TestProduct:
    def test_basic(self):
        r1 = relation(temporal=["a"])
        r1.add_tuple(["2n"], "a >= 0")
        r2 = relation(temporal=["b"])
        r2.add_tuple(["3n"], "b <= 0")
        out = algebra.product(r1, r2)
        assert out.schema.names == ("a", "b")
        assert out.contains([2, -3])
        assert not out.contains([2, 3]) and not out.contains([-2, -3])

    def test_data_concatenation(self):
        s1 = Schema.make(temporal=["t1"], data=["d1"])
        s2 = Schema.make(temporal=["t2"], data=["d2"])
        r1 = GeneralizedRelation.empty(s1)
        r1.add_tuple(["n"], data=["a"])
        r2 = GeneralizedRelation.empty(s2)
        r2.add_tuple(["n"], data=["b"])
        out = algebra.product(r1, r2)
        assert out.contains([0, 0], ["a", "b"])

    def test_shared_names_rejected(self):
        with pytest.raises(SchemaError):
            algebra.product(relation(temporal=["a"]), relation(temporal=["a"]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_product_differential(self, seed):
        rng = random.Random(seed)
        r1 = random_relation(rng, Schema.make(temporal=["a"]), 2)
        r2 = random_relation(rng, Schema.make(temporal=["b"]), 2)
        out = algebra.product(r1, r2)
        expected = {
            (a, b)
            for (a,) in r1.snapshot(*WINDOW)
            for (b,) in r2.snapshot(*WINDOW)
        }
        assert out.snapshot(*WINDOW) == expected


class TestJoin:
    def test_shared_temporal_attribute(self):
        """Concatenating intervals: Perform1(t1, t2) ⋈ Perform2(t2, t3)."""
        r1 = relation(temporal=["t1", "t2"])
        r1.add_tuple(["2n", "2n"], "t1 = t2 - 2")
        r2 = relation(temporal=["t2", "t3"])
        r2.add_tuple(["4n", "4n"], "t2 = t3 - 4")
        out = algebra.join(r1, r2)
        assert out.schema.names == ("t1", "t2", "t3")
        assert out.contains([2, 4, 8])
        assert not out.contains([0, 2, 6])  # 2 not on 4n

    def test_join_then_project_concatenates_intervals(self):
        """The paper's footnote: concatenation = join on the middle
        point, then project it out."""
        r1 = relation(temporal=["t1", "t2"])
        r1.add_tuple(["2n", "2n"], "t1 = t2 - 2")
        r2 = relation(temporal=["t2", "t3"])
        r2.add_tuple(["2n", "2n"], "t2 = t3 - 2")
        out = algebra.project(algebra.join(r1, r2), ["t1", "t3"])
        assert out.contains([0, 4]) and out.contains([2, 6])
        assert not out.contains([0, 2])

    def test_shared_data_attribute(self):
        s1 = Schema.make(temporal=["t1"], data=["who"])
        s2 = Schema.make(temporal=["t2"], data=["who"])
        r1 = GeneralizedRelation.empty(s1)
        r1.add_tuple(["2n"], data=["a"])
        r1.add_tuple(["2n"], data=["b"])
        r2 = GeneralizedRelation.empty(s2)
        r2.add_tuple(["3n"], data=["a"])
        out = algebra.join(r1, r2)
        assert out.schema.names == ("t1", "who", "t2")
        assert out.contains([2, 3], ["a"])
        assert not out.contains([2, 3], ["b"])

    def test_no_shared_attributes_is_product(self):
        r1 = relation(temporal=["a"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["b"])
        r2.add_tuple(["3n"])
        out = algebra.join(r1, r2)
        assert out.snapshot(*WINDOW) == algebra.product(r1, r2).snapshot(*WINDOW)

    def test_kind_conflict(self):
        r1 = GeneralizedRelation.empty(Schema.make(temporal=["x"]))
        r2 = GeneralizedRelation.empty(Schema.make(temporal=["t"], data=["x"]))
        with pytest.raises(SchemaError):
            algebra.join(r1, r2)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_join_differential(self, seed):
        rng = random.Random(seed)
        r1 = random_relation(rng, Schema.make(temporal=["a", "b"]), 2)
        r2 = random_relation(rng, Schema.make(temporal=["b", "c"]), 2)
        out = algebra.join(r1, r2)
        s1 = r1.snapshot(*WINDOW)
        s2 = r2.snapshot(*WINDOW)
        expected = {
            (a, b, c)
            for (a, b) in s1
            for (b2, c) in s2
            if b == b2
        }
        assert out.snapshot(*WINDOW) == expected


class TestRenameShift:
    def test_rename(self):
        r = relation(temporal=["a"])
        r.add_tuple(["2n"])
        out = algebra.rename(r, {"a": "z"})
        assert out.schema.names == ("z",)
        assert out.contains([2])

    def test_rename_unknown(self):
        with pytest.raises(SchemaError):
            algebra.rename(relation(temporal=["a"]), {"q": "z"})

    def test_shift_column(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["2n", "2n"], "a = b - 2 & a >= 0")
        out = algebra.shift_column(r, "a", 1)
        # every point (a, b) of r becomes (a + 1, b)
        assert out.contains([1, 2]) and out.contains([3, 4])
        assert not out.contains([0, 2])

    def test_shift_zero_is_identity(self):
        r = relation(temporal=["a"])
        r.add_tuple(["2n"])
        assert algebra.shift_column(r, "a", 0) is r

    @given(st.integers(0, 10_000), st.integers(-4, 4))
    @settings(max_examples=40, deadline=None)
    def test_shift_differential(self, seed, delta):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["a", "b"]), 2)
        out = algebra.shift_column(r, "a", delta)
        inner = (-5, 5)
        expected = {
            (a + delta, b)
            for (a, b) in r.snapshot(-12, 12)
            if inner[0] <= a + delta <= inner[1] and inner[0] <= b <= inner[1]
        }
        assert out.snapshot(*inner) == expected
