"""Differential tests for union, intersection and subtraction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.errors import SchemaError
from repro.core.relations import GeneralizedRelation, Schema, relation

from tests.helpers import assert_same_window, random_relation

SCHEMA2 = Schema.make(temporal=["X1", "X2"])
WINDOW = (-9, 9)


def rel2(rng: random.Random, n: int) -> GeneralizedRelation:
    return random_relation(rng, SCHEMA2, n)


class TestUnion:
    def test_merges(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["2n + 1"])
        u = algebra.union(r1, r2)
        assert u.contains([4]) and u.contains([5])

    def test_dedups(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["2n"])
        assert len(algebra.union(r1, r2)) == 1

    def test_schema_mismatch(self):
        with pytest.raises(SchemaError):
            algebra.union(relation(temporal=["a"]), relation(temporal=["b"]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_union_is_set_union(self, seed):
        rng = random.Random(seed)
        r1, r2 = rel2(rng, 3), rel2(rng, 3)
        expected = r1.snapshot(*WINDOW) | r2.snapshot(*WINDOW)
        assert_same_window(algebra.union(r1, r2), expected, *WINDOW, "union")


class TestIntersection:
    def test_basic(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["3n"])
        meet = algebra.intersect(r1, r2)
        assert meet.contains([6]) and not meet.contains([2])

    def test_with_data(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        r1 = GeneralizedRelation.empty(schema)
        r1.add_tuple(["2n"], data=["a"])
        r2 = GeneralizedRelation.empty(schema)
        r2.add_tuple(["2n"], data=["b"])
        assert algebra.intersect(r1, r2).is_empty()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_intersection_is_set_intersection(self, seed):
        rng = random.Random(seed)
        r1, r2 = rel2(rng, 3), rel2(rng, 3)
        expected = r1.snapshot(*WINDOW) & r2.snapshot(*WINDOW)
        assert_same_window(
            algebra.intersect(r1, r2), expected, *WINDOW, "intersect"
        )


class TestSubtraction:
    def test_figure1_identity_shape(self):
        """t1 - t2 decomposes into (t1 - t2*) ∪ (t̄2 ∩ t1)."""
        r1 = relation(temporal=["X1", "X2"])
        r1.add_tuple(["2n", "2n"], "X1 <= X2")
        r2 = relation(temporal=["X1", "X2"])
        r2.add_tuple(["2n", "4n"], "X1 >= 0")
        diff = algebra.subtract(r1, r2)
        expected = r1.snapshot(*WINDOW) - r2.snapshot(*WINDOW)
        assert_same_window(diff, expected, *WINDOW, "figure1")

    def test_subtract_self_is_empty(self):
        r = relation(temporal=["X1", "X2"])
        r.add_tuple(["2n", "3n"], "X1 <= X2 + 4")
        assert algebra.subtract(r, r).is_empty()

    def test_subtract_disjoint_is_identity(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["2n + 1"])
        diff = algebra.subtract(r1, r2)
        assert diff.snapshot(*WINDOW) == r1.snapshot(*WINDOW)

    def test_subtract_point_from_progression(self):
        """The singleton-carve-out case needs constraint pieces."""
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple([4])
        diff = algebra.subtract(r1, r2)
        assert diff.contains([2]) and diff.contains([6]) and diff.contains([-4])
        assert not diff.contains([4])

    def test_subtract_constrained_point(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["n"], "X1 >= 3 & X1 <= 5")
        diff = algebra.subtract(r1, r2)
        for x in range(-10, 11):
            assert diff.contains([x]) == (x < 3 or x > 5), x

    def test_with_data(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        r1 = GeneralizedRelation.empty(schema)
        r1.add_tuple(["n"], data=["a"])
        r1.add_tuple(["n"], data=["b"])
        r2 = GeneralizedRelation.empty(schema)
        r2.add_tuple(["n"], data=["a"])
        diff = algebra.subtract(r1, r2)
        assert diff.contains([0], ["b"]) and not diff.contains([0], ["a"])

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_subtraction_is_set_difference(self, seed):
        rng = random.Random(seed)
        r1, r2 = rel2(rng, 2), rel2(rng, 2)
        expected = r1.snapshot(*WINDOW) - r2.snapshot(*WINDOW)
        assert_same_window(
            algebra.subtract(r1, r2), expected, *WINDOW, "subtract"
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_union_of_difference_and_intersection(self, seed):
        """(r1 - r2) ∪ (r1 ∩ r2) == r1 — an algebraic identity."""
        rng = random.Random(seed)
        r1, r2 = rel2(rng, 2), rel2(rng, 2)
        rebuilt = algebra.union(
            algebra.subtract(r1, r2), algebra.intersect(r1, r2)
        )
        assert rebuilt.snapshot(*WINDOW) == r1.snapshot(*WINDOW)


class TestEquivalent:
    def test_different_syntax_same_set(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["4n"])
        r2.add_tuple(["4n + 2"])
        assert algebra.equivalent(r1, r2)

    def test_not_equivalent(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["4n"])
        assert not algebra.equivalent(r1, r2)
