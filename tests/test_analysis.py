"""Tests for the complexity-analysis helpers."""

import pytest

from repro.analysis import (
    CostReport,
    TallyCounter,
    fit_power_law,
    format_complexity_row,
    measure_binary,
    measure_unary,
    sweep,
    time_callable,
)
from repro.core import algebra
from repro.core.relations import relation


class TestPowerLawFit:
    def test_linear(self):
        xs = [10, 20, 40, 80]
        ys = [1.0, 2.0, 4.0, 8.0]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-6)

    def test_quadratic(self):
        xs = [10, 20, 40, 80]
        ys = [x * x * 0.001 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0, abs=1e-6)

    def test_noisy_fit_reasonable(self):
        xs = [10, 20, 40, 80, 160]
        ys = [0.9, 2.2, 3.8, 8.4, 15.6]
        fit = fit_power_law(xs, ys)
        assert 0.8 < fit.exponent < 1.2
        assert fit.r_squared > 0.95

    def test_zero_values_clamped(self):
        fit = fit_power_law([1, 2, 4], [0.0, 1.0, 2.0])
        assert fit.exponent > 0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([5, 5], [1, 2])

    def test_str(self):
        fit = fit_power_law([1, 2, 4], [1, 2, 4])
        assert "n^1.00" in str(fit)


class TestTiming:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(100))) >= 0

    def test_sweep_shape(self):
        points = sweep(
            [5, 10],
            make_input=lambda n: list(range(n)),
            operation=sum,
            repeat=1,
        )
        assert [n for n, _t in points] == [5, 10]
        assert all(t >= 0 for _n, t in points)


class TestCostReports:
    def test_measure_binary(self):
        r1 = relation(temporal=["t"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["t"])
        r2.add_tuple(["3n"])
        result, report = measure_binary(algebra.intersect, r1, r2)
        assert result.contains([6])
        assert report.input_tuples == 2
        assert report.counters["pairs_examined"] == 1
        assert "in=2" in str(report)

    def test_measure_unary(self):
        r = relation(temporal=["t"])
        r.add_tuple(["2n"])
        result, report = measure_unary(algebra.complement, r)
        assert report.output_tuples == len(result)

    def test_tally_counter(self):
        tally = TallyCounter()
        tally.bump("joins")
        tally.bump("joins", 2)
        with tally.counting("closures"):
            pass
        assert tally["joins"] == 3 and tally["closures"] == 1
        assert "joins=3" in str(tally)
        tally.reset()
        assert tally["joins"] == 0

    def test_format_row(self):
        fit = fit_power_law([1, 2], [1, 2])
        row = format_complexity_row("union", "O(N)", fit, "OK")
        assert "union" in row and "O(N)" in row and "OK" in row
