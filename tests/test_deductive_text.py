"""Tests for the textual Datalog program format."""

import pytest

from repro.core.errors import SchemaError
from repro.deductive import Program
from repro.query import Database


def base_db() -> Database:
    db = Database()
    db.create("Edge", temporal=["a", "b"])
    db.relation("Edge").add_tuple(["3n", "3n"], "a = b - 3 & a >= 0 & a <= 6")
    return db


class TestFromText:
    def test_declarations_and_rules(self):
        program = Program.from_text(
            """
            # reachability
            declare Reach(a:T, b:T)
            Reach(a, b) <- Edge(a, b)
            Reach(a, c) <- Reach(a, b) & Edge(b, c)
            """
        )
        assert program.idb_names == ("Reach",)
        assert len(program.rules) == 2
        out = program.evaluate(base_db())
        reach = out.relation("Reach")
        assert reach.contains([0, 9]) and reach.contains([3, 6])
        assert not reach.contains([0, 1])

    def test_line_continuation(self):
        program = Program.from_text(
            "declare R(a:T)\n"
            "R(a) <- Edge(a, b) \\\n"
            "    & a >= 0\n"
        )
        out = program.evaluate(base_db())
        assert out.relation("R").contains([3])

    def test_comments_and_blanks_ignored(self):
        program = Program.from_text(
            "\n# header\n\ndeclare R(a:T)\n# rule\nR(a) <- Edge(a, b)\n\n"
        )
        assert len(program.rules) == 1

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(SchemaError):
            Program.from_text(
                "declare R(a:T)\ndeclare R(a:T)\n"
            )

    def test_rule_before_declaration_rejected(self):
        with pytest.raises(SchemaError):
            Program.from_text("R(a) <- Edge(a, b)\n")

    def test_dangling_continuation(self):
        with pytest.raises(SchemaError):
            Program.from_text("declare R(a:T)\nR(a) <- Edge(a, b) \\")

    def test_data_inequality_in_rules(self):
        db = Database()
        db.create("Owns", temporal=["t"], data=["who", "what"])
        db.relation("Owns").add_tuple(["2n"], data=["ann", "car"])
        db.relation("Owns").add_tuple(["2n"], data=["bob", "car"])
        program = Program.from_text(
            """
            declare Shared(what:D)
            Shared(w) <- Owns(t, p1, w) & Owns(t, p2, w) & ~(p1 = p2)
            """
        )
        out = program.evaluate(db)
        assert out.relation("Shared").contains([], ["car"])
