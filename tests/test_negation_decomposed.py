"""Tests for the per-component-period complement refinement."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import NormalizationLimitError
from repro.core.negation import (
    _column_components,
    _column_periods,
    complement_tuples,
)
from repro.core.relations import GeneralizedRelation, Schema, relation

from tests.helpers import random_relation

SCHEMA2 = Schema.make(temporal=["X1", "X2"])
WINDOW = (-8, 8)


class TestColumnComponents:
    def test_unconstrained_columns_independent(self):
        r = relation(temporal=["a", "b", "c"])
        r.add_tuple(["2n", "3n", "5n"], "a >= 0")
        comps = _column_components(list(r), 3)
        assert len(set(comps)) == 3

    def test_difference_constraints_merge(self):
        r = relation(temporal=["a", "b", "c"])
        r.add_tuple(["2n", "3n", "5n"], "a <= b")
        comps = _column_components(list(r), 3)
        assert comps[0] == comps[1] != comps[2]

    def test_merging_accumulates_across_tuples(self):
        r = relation(temporal=["a", "b", "c"])
        r.add_tuple(["2n", "3n", "5n"], "a <= b")
        r.add_tuple(["2n", "3n", "5n"], "b <= c")
        comps = _column_components(list(r), 3)
        assert len(set(comps)) == 1

    def test_periods_per_component(self):
        r = relation(temporal=["a", "b", "c"])
        r.add_tuple(["2n", "3n", "5n"], "a <= b")
        comps = _column_components(list(r), 3)
        periods = _column_periods(list(r), comps, 3)
        assert periods == [6, 6, 5]

    def test_singletons_contribute_no_period(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple([7, "3n"], "a <= b")
        comps = _column_components(list(r), 2)
        periods = _column_periods(list(r), comps, 2)
        assert periods == [3, 3]


class TestDecomposedSemantics:
    def test_matches_uniform_on_examples(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["4n", "6n + 1"], "a <= 10")
        r.add_tuple([3, "2n"], "b >= 0")
        dec = GeneralizedRelation(
            r.schema, complement_tuples(list(r), 2)
        )
        uni = GeneralizedRelation(
            r.schema, complement_tuples(list(r), 2, uniform_period=True)
        )
        assert dec.snapshot(*WINDOW) == uni.snapshot(*WINDOW)

    def test_extension_count_shrinks(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["9n", "10n"])
        dec = complement_tuples(list(r), 2)
        # 9*10 = 90 free extensions, one present without constraints →
        # 89 complement tuples.
        assert len(dec) == 89

    def test_limits_enforced(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["101n", "103n"], "a <= b")
        with pytest.raises(NormalizationLimitError):
            complement_tuples(list(r), 2, max_extensions=1000)

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_uniform(self, seed):
        rng = random.Random(seed)
        r = random_relation(rng, SCHEMA2, 2)
        dec = GeneralizedRelation(
            SCHEMA2, complement_tuples(list(r), 2)
        )
        uni = GeneralizedRelation(
            SCHEMA2, complement_tuples(list(r), 2, uniform_period=True)
        )
        assert dec.snapshot(*WINDOW) == uni.snapshot(*WINDOW)

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_partitions_universe(self, seed):
        rng = random.Random(seed)
        r = random_relation(rng, SCHEMA2, 2)
        comp = GeneralizedRelation(
            SCHEMA2, complement_tuples(list(r), 2)
        )
        inside = r.snapshot(*WINDOW)
        outside = comp.snapshot(*WINDOW)
        universe = set(
            itertools.product(range(WINDOW[0], WINDOW[1] + 1), repeat=2)
        )
        assert inside | outside == universe
        assert not (inside & outside)

    def test_mixed_singleton_and_periodic(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple([5, "3n"], "b >= a")
        comp = GeneralizedRelation(
            r.schema, complement_tuples(list(r), 2)
        )
        for a in range(-4, 12):
            for b in range(-4, 12):
                in_r = a == 5 and b % 3 == 0 and b >= a
                assert comp.contains([a, b]) == (not in_r), (a, b)
