"""Tests for schemas and generalized relations."""

import pytest

from repro.core.errors import SchemaError
from repro.core.lrp import LRP
from repro.core.relations import (
    Attribute,
    GeneralizedRelation,
    Schema,
    relation,
)
from repro.core.tuples import GeneralizedTuple


def robots_relation() -> GeneralizedRelation:
    """The paper's Table 1 (robot activities).

    Schema: interval [X1, X2], robot name, task name.
    """
    r = GeneralizedRelation.empty(
        Schema.make(temporal=["X1", "X2"], data=["robot", "task"])
    )
    r.add_tuple(
        ["2 + 2n", "4 + 2n"], "X1 = X2 - 2 & X1 >= -1", ["robot1", "task1"]
    )
    r.add_tuple(
        ["6 + 10n", "7 + 10n"], "X1 = X2 - 1 & X1 >= 10", ["robot2", "task2"]
    )
    r.add_tuple(["10n", "3 + 10n"], "X1 = X2 - 3", ["robot2", "task1"])
    return r


class TestSchema:
    def test_make_orders_attributes(self):
        s = Schema.make(temporal=["t1", "t2"], data=["who"])
        assert s.names == ("t1", "t2", "who")
        assert s.temporal_names == ("t1", "t2")
        assert s.data_names == ("who",)
        assert s.temporal_arity == 2 and s.data_arity == 1

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.make(temporal=["a"], data=["a"])

    def test_lookup(self):
        s = Schema.make(temporal=["t"], data=["d"])
        assert s.attribute("t").temporal
        assert not s.attribute("d").temporal
        assert s.has("t") and not s.has("zzz")
        with pytest.raises(SchemaError):
            s.attribute("zzz")

    def test_indexes(self):
        s = Schema((Attribute("d", False), Attribute("t", True)))
        assert s.temporal_index("t") == 0
        assert s.data_index("d") == 0
        with pytest.raises(SchemaError):
            s.temporal_index("d")
        with pytest.raises(SchemaError):
            s.data_index("t")

    def test_point_order_interleaving(self):
        s = Schema(
            (
                Attribute("d1", False),
                Attribute("t1", True),
                Attribute("d2", False),
            )
        )
        assert s.point_order() == ((False, 0), (True, 0), (False, 1))

    def test_len_and_str(self):
        s = Schema.make(temporal=["t"], data=["d"])
        assert len(s) == 2
        assert "t:T" in str(s) and "d:D" in str(s)


class TestRelationBasics:
    def test_empty(self):
        r = relation(temporal=["X1"])
        assert len(r) == 0 and r.is_empty()

    def test_add_checks_arity(self):
        r = relation(temporal=["X1", "X2"])
        with pytest.raises(SchemaError):
            r.add(GeneralizedTuple.make(["n"]))
        with pytest.raises(SchemaError):
            r.add(GeneralizedTuple.make(["n", "n"], data=("extra",)))

    def test_dedup_on_insert(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["7 + 5n"])
        r.add_tuple(["2 + 5n"])  # same canonical lrp
        assert len(r) == 1

    def test_universe(self):
        u = GeneralizedRelation.universe(Schema.make(temporal=["a", "b"]))
        assert u.contains([123, -456])
        with pytest.raises(SchemaError):
            GeneralizedRelation.universe(
                Schema.make(temporal=["a"], data=["d"])
            )

    def test_syntactic_equality(self):
        r1 = relation(temporal=["X1"])
        r1.add_tuple(["2n"])
        r2 = relation(temporal=["X1"])
        r2.add_tuple(["2n"])
        assert r1 == r2 and hash(r1) == hash(r2)

    def test_str_and_repr(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["2n"])
        assert "1 generalized tuple" in str(r)
        assert "n=1" in repr(r)


class TestPointHandling:
    def test_split_and_join_round_trip(self):
        r = GeneralizedRelation.empty(
            Schema(
                (
                    Attribute("d1", False),
                    Attribute("t1", True),
                    Attribute("t2", True),
                )
            )
        )
        point = ("label", 3, 9)
        temporal, data = r.split_point(point)
        assert temporal == (3, 9) and data == ("label",)
        assert r.join_point(temporal, data) == point

    def test_split_point_wrong_length(self):
        r = relation(temporal=["X1"])
        with pytest.raises(SchemaError):
            r.split_point((1, 2))

    def test_contains_point(self):
        r = robots_relation()
        assert r.contains_point((2, 4, "robot1", "task1"))
        assert not r.contains_point((3, 5, "robot1", "task1"))


class TestTable1:
    """The paper's Table 1 denotes the expected concrete activities."""

    def test_robot1_every_two_steps(self):
        r = robots_relation()
        for start in (0, 2, 4, 20):
            assert r.contains([start, start + 2], ["robot1", "task1"])
        assert not r.contains([-2, 0], ["robot1", "task1"])  # X1 >= -1
        assert not r.contains([3, 5], ["robot1", "task1"])  # odd start

    def test_robot2_task2_starts_at_16(self):
        r = robots_relation()
        assert r.contains([16, 17], ["robot2", "task2"])
        assert not r.contains([6, 7], ["robot2", "task2"])  # X1 >= 10

    def test_robot2_task1_unbounded(self):
        r = robots_relation()
        assert r.contains([-10, -7], ["robot2", "task1"])
        assert r.contains([0, 3], ["robot2", "task1"])

    def test_active_data_domain(self):
        r = robots_relation()
        assert r.active_data_domain() == {"robot1", "robot2", "task1", "task2"}

    def test_snapshot_window(self):
        r = robots_relation()
        points = r.snapshot(0, 10)
        assert (2, 4, "robot1", "task1") in points
        assert (0, 3, "robot2", "task1") in points
        assert all(0 <= p[0] <= 10 and 0 <= p[1] <= 10 for p in points)
