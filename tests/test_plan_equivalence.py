"""Optimized plans and naive evaluation must denote the same point sets.

This is the gate for the logical planner: every rewrite pass is
semantics-preserving, verified three ways — hypothesis-driven random
cases through the fuzz generator, replay of the shrunk regression
corpus with the plan leg forced on, and hand-built edge cases
(pushdown blocked at complements, empty relations, shared subtrees).
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import GeneralizedRelation, Schema
from repro.fuzz.case import Case, load_case
from repro.fuzz.diff import (
    DEFAULT_CONFIG,
    DiffConfig,
    OversizeError,
    eval_generalized,
    eval_planned,
    plan_from_expr,
    run_case,
)
from repro.fuzz.expr import (
    Complement,
    Join,
    Leaf,
    Project,
    Select,
    Subtract,
    Union,
)
from repro.fuzz.gen import generate_case
from repro.perf import config as perf_config

CORPUS_FILES = sorted((Path(__file__).parent / "corpus").glob("*.json"))

PLAN_CONFIG = DiffConfig(plan_check=True)


def naive_eval(case: Case) -> GeneralizedRelation:
    with perf_config.overrides(
        cache_enabled=False,
        prefilter_enabled=False,
        incremental_enabled=False,
        workers=0,
    ):
        return eval_generalized(case, DEFAULT_CONFIG)


def assert_plan_matches_naive(case: Case) -> None:
    try:
        naive = naive_eval(case)
        planned = eval_planned(case, DEFAULT_CONFIG)
    except OversizeError:
        return  # deterministic cost guard: the case is skipped, not failed
    assert planned.schema == naive.schema
    assert planned.snapshot(case.low, case.high) == naive.snapshot(
        case.low, case.high
    ), f"optimized plan diverged on {case.describe()}"


class TestPropertyEquivalence:
    @given(st.integers(0, 20_000))
    @settings(max_examples=60, deadline=None)
    def test_planned_matches_naive(self, seed):
        assert_plan_matches_naive(generate_case(seed))

    @given(st.integers(0, 20_000))
    @settings(max_examples=25, deadline=None)
    def test_full_differential_with_plan_leg(self, seed):
        result = run_case(generate_case(seed), PLAN_CONFIG)
        assert not result.failing, result.summary()


class TestCorpusReplayWithPlanLeg:
    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_corpus_case_replays_clean_optimized(self, path):
        case = load_case(path)
        result = run_case(case, PLAN_CONFIG)
        assert not result.failing, (
            f"{path.name} regressed under the optimized plan "
            f"({case.note or 'no note'}):\n{result.summary()}"
        )


def two_relation_case(expr, r_tuples=(), s_tuples=()) -> Case:
    """A small case over R(t1, t2) and S(t1, t2)."""
    schema = Schema.make(temporal=["t1", "t2"])
    relations = {
        "R": GeneralizedRelation.empty(schema),
        "S": GeneralizedRelation.empty(schema),
    }
    for lrps, cond in r_tuples:
        relations["R"].add_tuple(lrps, cond)
    for lrps, cond in s_tuples:
        relations["S"].add_tuple(lrps, cond)
    return Case(relations=relations, expr=expr, low=-8, high=8)


class TestEdgeCases:
    def test_pushdown_blocked_at_complement(self):
        """σ over ¬R must NOT push inside — and must stay correct."""
        from repro.plan import nodes as ir
        from repro.plan.rewrite import optimize_plan

        case = two_relation_case(
            Select(Complement(Leaf("R")), "t1 <= t2"),
            r_tuples=[((["2n", "3n"], ""))],
        )
        plan, _ = optimize_plan(
            plan_from_expr(case), relations=case.relations
        )
        # Structurally: the selection is still above the complement.
        ops = [n.op for n in plan.walk()]
        assert ops.index("select") < ops.index("complement")
        assert_plan_matches_naive(case)

    def test_pushdown_into_union_under_projection(self):
        case = two_relation_case(
            Project(
                Select(Union(Leaf("R"), Leaf("S")), "t1 >= 0 & t1 <= t2"),
                ["t1"],
            ),
            r_tuples=[((["2n", "1 + 2n"], "t1 <= t2"))],
            s_tuples=[((["3n", "5"], ""))],
        )
        assert_plan_matches_naive(case)

    def test_empty_relations(self):
        """Rewrites over fully empty inputs stay sound."""
        for expr in (
            Join(Leaf("R"), Leaf("S")),
            Subtract(Complement(Leaf("R")), Leaf("S")),
            Project(Union(Leaf("R"), Leaf("S")), ["t1"]),
            Select(Leaf("R"), "t1 >= 0"),
        ):
            assert_plan_matches_naive(two_relation_case(expr))

    def test_empty_one_side(self):
        case = two_relation_case(
            Select(Join(Leaf("R"), Leaf("S")), "t1 >= 0"),
            r_tuples=[((["2n", "4"], ""))],
        )
        assert_plan_matches_naive(case)

    def test_shared_subtree_cse(self):
        """A deduplicated subtree evaluates once and stays correct."""
        shared = Select(Leaf("R"), "t1 >= 0")
        case = two_relation_case(
            Union(shared, Select(Leaf("R"), "t1 >= 0")),
            r_tuples=[((["2n", "3 + 3n"], "t1 <= t2"))],
        )
        assert_plan_matches_naive(case)

    def test_plan_leg_follows_global_optimize_switch(self):
        """plan_check=None resolves from REPRO_OPTIMIZE / configure()."""
        case = generate_case(7)
        with perf_config.overrides(optimize=True):
            result = run_case(case, DiffConfig())
        assert not result.failing, result.summary()
