"""Property tests for the algebra at three temporal columns.

The two-column differential tests cover most logic; three columns
exercise the parts where width matters: chained constraints through an
eliminated middle column, complement's free-extension enumeration over
a wider grid, and multi-step subtraction folds.
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema

from tests.helpers import random_relation

SCHEMA3 = Schema.make(temporal=["X1", "X2", "X3"])
W = (-6, 6)
seeds = st.integers(0, 10_000)


def rel3(seed: int, n: int = 2) -> GeneralizedRelation:
    return random_relation(random.Random(seed), SCHEMA3, n)


class TestWideSetOps:
    @given(seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_subtraction(self, s1, s2):
        a, b = rel3(s1), rel3(s2)
        expected = a.snapshot(*W) - b.snapshot(*W)
        assert algebra.subtract(a, b).snapshot(*W) == expected

    @given(seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_intersection(self, s1, s2):
        a, b = rel3(s1), rel3(s2)
        expected = a.snapshot(*W) & b.snapshot(*W)
        assert algebra.intersect(a, b).snapshot(*W) == expected


class TestWideProjection:
    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_drop_middle_column(self, seed):
        r = rel3(seed)
        out = algebra.project(r, ["X1", "X3"])
        wide = (-24, 24)
        expected = {
            (a, c)
            for (a, b, c) in r.snapshot(*wide)
            if W[0] <= a <= W[1] and W[0] <= c <= W[1]
        }
        assert out.snapshot(*W) == expected

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_iterated_projection_composes(self, seed):
        """Π_{X1}(Π_{X1,X2}(r)) == Π_{X1}(r)."""
        r = rel3(seed)
        one_step = algebra.project(r, ["X1"])
        two_step = algebra.project(algebra.project(r, ["X1", "X2"]), ["X1"])
        wide = (-30, 30)
        assert one_step.snapshot(*wide) == two_step.snapshot(*wide)

    def test_chained_constraints_through_eliminated_column(self):
        """Eliminating the middle of X1 <= X2 <= X3 must keep X1 <= X3."""
        r = GeneralizedRelation.empty(SCHEMA3)
        r.add_tuple(["2n", "3n", "2n"], "X1 <= X2 & X2 <= X3")
        out = algebra.project(r, ["X1", "X3"])
        for a in range(-6, 7):
            for c in range(-6, 7):
                expected = (
                    a % 2 == 0
                    and c % 2 == 0
                    and any(
                        a <= b <= c and b % 3 == 0 for b in range(a, c + 1)
                    )
                )
                assert out.contains([a, c]) == expected, (a, c)


class TestWideComplement:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_partitions_the_cube(self, seed):
        r = rel3(seed, n=2)
        comp = algebra.complement(r)
        inner = (-4, 4)
        inside = r.snapshot(*inner)
        outside = comp.snapshot(*inner)
        cube = set(
            itertools.product(range(inner[0], inner[1] + 1), repeat=3)
        )
        assert inside | outside == cube
        assert not (inside & outside)

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_involution(self, seed):
        r = rel3(seed, n=2)
        twice = algebra.complement(algebra.complement(r))
        inner = (-4, 4)
        assert twice.snapshot(*inner) == r.snapshot(*inner)


class TestWideJoins:
    @given(seeds, seeds)
    @settings(max_examples=20, deadline=None)
    def test_two_shared_columns(self, s1, s2):
        r1 = algebra.rename(rel3(s1), {"X1": "a", "X2": "b", "X3": "c"})
        r2 = algebra.rename(rel3(s2), {"X1": "b", "X2": "c", "X3": "d"})
        out = algebra.join(r1, r2)
        assert out.schema.names == ("a", "b", "c", "d")
        s1_pts = r1.snapshot(*W)
        s2_pts = r2.snapshot(*W)
        expected = {
            (a, b, c, d)
            for (a, b, c) in s1_pts
            for (b2, c2, d) in s2_pts
            if b == b2 and c == c2
        }
        assert out.snapshot(*W) == expected
