"""Tests for CSV bridging and progression compression."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParseError
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.storage import csvio


def trains() -> GeneralizedRelation:
    r = GeneralizedRelation.empty(
        Schema.make(temporal=["dep", "arr"], data=["svc"])
    )
    r.add_tuple(["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"])
    return r


class TestExport:
    def test_export_window(self):
        text = csvio.export_window(trains(), 0, 130)
        lines = text.strip().splitlines()
        assert lines[0] == "dep,arr,svc"
        assert "2,80,slow" in lines
        assert "62,140,slow" not in lines  # arr outside window

    def test_export_no_header(self):
        text = csvio.export_window(trains(), 0, 130, header=False)
        assert not text.startswith("dep")

    def test_export_empty(self):
        text = csvio.export_window(relation(temporal=["t"]), 0, 10)
        assert text.strip() == "t"


class TestImport:
    def test_round_trip_window(self):
        source = trains()
        text = csvio.export_window(source, 0, 300)
        back = csvio.import_csv(source.schema, text)
        assert back.snapshot(0, 300) == source.snapshot(0, 300)

    def test_header_mismatch(self):
        schema = Schema.make(temporal=["t"])
        with pytest.raises(ParseError):
            csvio.import_csv(schema, "x\n1\n")
        with pytest.raises(ParseError):
            csvio.import_csv(schema, "")

    def test_row_arity_mismatch(self):
        schema = Schema.make(temporal=["t"])
        with pytest.raises(ParseError):
            csvio.import_rows(schema, [(1, 2)])

    def test_no_header_import(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        rel = csvio.import_csv(schema, "3,ann\n5,bob\n", header=False)
        assert rel.contains([3], ["ann"]) and rel.contains([5], ["bob"])


class TestCompression:
    def test_progression_recovered(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        rows = [(x, "ann") for x in range(2, 63, 6)]
        finite = csvio.import_rows(schema, rows)
        compressed = csvio.compress_unary(finite)
        assert len(compressed) < len(finite)
        assert compressed.snapshot(0, 70) == finite.snapshot(0, 70)
        (gtuple,) = compressed.tuples
        assert gtuple.lrps[0].period == 6

    def test_leftovers_stay_singletons(self):
        schema = Schema.make(temporal=["t"])
        finite = csvio.import_rows(schema, [(0,), (4,), (8,), (9,), (15,)])
        compressed = csvio.compress_unary(finite)
        assert compressed.snapshot(-5, 20) == finite.snapshot(-5, 20)

    def test_groups_compress_independently(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        rows = [(x, "a") for x in range(0, 30, 3)] + [
            (x, "b") for x in range(1, 30, 7)
        ]
        finite = csvio.import_rows(schema, rows)
        compressed = csvio.compress_unary(finite)
        assert compressed.snapshot(0, 30) == finite.snapshot(0, 30)
        periods = {t.lrps[0].period for t in compressed}
        assert 3 in periods and 7 in periods

    def test_rejects_infinite(self):
        r = relation(temporal=["t"])
        r.add_tuple(["2n"])
        with pytest.raises(ParseError):
            csvio.compress_unary(r)

    def test_rejects_wide(self):
        with pytest.raises(ParseError):
            csvio.compress_unary(relation(temporal=["a", "b"]))

    def test_empty(self):
        out = csvio.compress_unary(relation(temporal=["t"]))
        assert out.is_empty()

    @given(st.lists(st.integers(-30, 30), min_size=0, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_compression_is_lossless(self, values):
        schema = Schema.make(temporal=["t"])
        finite = csvio.import_rows(schema, [(v,) for v in values])
        compressed = csvio.compress_unary(finite)
        assert compressed.snapshot(-35, 35) == finite.snapshot(-35, 35)


class TestTypedOrdering:
    """export_window sorts by schema-typed value, not repr (regression).

    The old ``key=repr`` ordering put ``-1`` before ``-10``'s neighbours
    lexicographically ("-1" < "-10" is False as strings!) and ``10``
    before ``2``; with negatives and multi-digit values the exported
    rows came out misordered.
    """

    def spread(self) -> GeneralizedRelation:
        r = GeneralizedRelation.empty(Schema.make(temporal=["t"]))
        for value in (3, -10, 12, -2, 0, 101, -1):
            r.add_tuple([value])
        return r

    def test_rows_are_numerically_sorted(self):
        text = csvio.export_window(self.spread(), -200, 200, header=False)
        values = [int(line) for line in text.strip().splitlines()]
        assert values == sorted(values)
        assert values[0] == -10 and values[-1] == 101

    def test_mixed_schema_sorts_temporal_numerically(self):
        r = GeneralizedRelation.empty(
            Schema.make(temporal=["t"], data=["who"])
        )
        r.add_tuple([10], data=["ann"])
        r.add_tuple([2], data=["bob"])
        r.add_tuple([-3], data=["ann"])
        text = csvio.export_window(r, -20, 20, header=False)
        firsts = [line.split(",")[0] for line in text.strip().splitlines()]
        assert firsts == ["-3", "2", "10"]

    def test_round_trip_with_negatives(self):
        source = GeneralizedRelation.empty(Schema.make(temporal=["t", "u"]))
        source.add_tuple(["-7 + 5n", "-2 + 5n"], "t <= u")
        source.add_tuple([-10, -1])
        text = csvio.export_window(source, -15, 15)
        back = csvio.import_csv(source.schema, text)
        assert back.snapshot(-15, 15) == source.snapshot(-15, 15)

    def test_inverted_horizon_exports_empty(self):
        text = csvio.export_window(self.spread(), 5, -5)
        assert text.strip() == "t"
