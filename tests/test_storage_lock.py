"""Regression tests for the exclusive single-writer storage lock.

The bug: two ``StorageEngine``/``Database`` handles could open one
root concurrently, interleave WAL appends and corrupt the store.  The
fix takes a non-blocking ``fcntl.flock`` on ``<root>/LOCK`` before
recovery and holds it until close; the second opener gets a clean
``StorageError``.
"""

import pytest

from repro.core.errors import StorageError
from repro.query.database import Database
from repro.storage import faults
from repro.storage.engine import LOCK_NAME, StorageEngine


class TestSingleWriterLock:
    def test_second_engine_on_same_root_is_rejected(self, tmp_path):
        root = str(tmp_path / "db")
        first = StorageEngine.open(root)
        try:
            with pytest.raises(StorageError, match="locked by another"):
                StorageEngine.open(root)
        finally:
            first.close()

    def test_second_database_on_same_root_is_rejected(self, tmp_path):
        root = str(tmp_path / "db")
        with Database.open(root):
            with pytest.raises(StorageError, match="locked by another"):
                Database.open(root)

    def test_lock_releases_on_close(self, tmp_path):
        root = str(tmp_path / "db")
        StorageEngine.open(root).close()
        second = StorageEngine.open(root)
        second.close()

    def test_lock_file_lives_in_root(self, tmp_path):
        root = tmp_path / "db"
        engine = StorageEngine.open(str(root))
        try:
            assert (root / LOCK_NAME).exists()
        finally:
            engine.close()

    def test_lock_does_not_break_fresh_init_check(self, tmp_path):
        # A root containing only the LOCK file still counts as "empty
        # enough" to initialize; unrelated files still refuse.
        root = tmp_path / "db"
        StorageEngine.open(str(root)).close()
        stray = tmp_path / "other"
        stray.mkdir()
        (stray / "unrelated.txt").write_text("hi")
        with pytest.raises(StorageError, match="non-empty"):
            StorageEngine.open(str(stray))

    def test_failed_open_releases_lock(self, tmp_path):
        # Opening a root with create=False fails after the lock check;
        # the lock must not leak, so a later create succeeds.
        root = str(tmp_path / "db")
        StorageEngine.open(root).close()
        manifest = tmp_path / "db" / "MANIFEST"
        manifest.write_bytes(manifest.read_bytes()[:4])  # torn
        with pytest.raises(StorageError):
            StorageEngine.open(root, create=False)
        # the torn manifest still fails, but with the recovery error —
        # not "locked by another writer"
        with pytest.raises(StorageError, match="corrupt"):
            StorageEngine.open(root, create=False)

    def test_injected_crash_releases_lock_for_reopen(self, tmp_path):
        # Crash-recovery tests reopen the root while the crashed handle
        # is still alive; a dead writer's lock must not survive it
        # (modeling the OS dropping a crashed process's flocks).
        root = str(tmp_path / "db")
        db = Database.open(root)
        db.create("Ev", temporal=["t"])
        db.relation("Ev").add_tuple(["5n"], "t >= 0", [])
        with faults.crash_at("wal.commit"):
            with pytest.raises(faults.InjectedCrash):
                db.commit()
        reopened = Database.open(root)
        assert reopened.names == ()
        reopened.close()
