"""Tests for complement / negation (Appendix A.6, Theorem 3.6 context)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.dbm import DBM
from repro.core.errors import DomainError, NormalizationLimitError
from repro.core.negation import (
    complement_constraint_systems,
    negate_dbm,
)
from repro.core.relations import GeneralizedRelation, Schema, relation

from tests.helpers import random_relation

WINDOW = (-8, 8)


def universe_points(arity: int, low: int, high: int) -> set:
    import itertools

    return set(itertools.product(range(low, high + 1), repeat=arity))


class TestNegateDbm:
    def test_single_bound(self):
        dbm = DBM(1)
        dbm.add_upper(0, 5)
        pieces = negate_dbm(dbm, 1)
        assert len(pieces) == 1
        assert pieces[0].satisfied_by([6]) and not pieces[0].satisfied_by([5])

    def test_unconstrained_has_empty_complement(self):
        assert negate_dbm(DBM(2), 2) == []

    def test_unsat_complements_to_everything(self):
        dbm = DBM(1)
        dbm.add_upper(0, 0)
        dbm.add_lower(0, 1)
        pieces = negate_dbm(dbm, 1)
        assert len(pieces) == 1 and pieces[0].satisfied_by([123])

    @given(st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_negation_covers_exactly_the_complement(self, seed):
        rng = random.Random(seed)
        dbm = DBM(2)
        for _ in range(rng.randint(1, 3)):
            choice = rng.random()
            c = rng.randint(-5, 5)
            if choice < 0.4:
                dbm.add_difference(0, 1, c)
            elif choice < 0.7:
                dbm.add_upper(rng.randrange(2), c)
            else:
                dbm.add_lower(rng.randrange(2), c)
        pieces = negate_dbm(dbm, 2)
        for a in range(-8, 9):
            for b in range(-8, 9):
                inside = dbm.satisfied_by([a, b])
                covered = any(p.satisfied_by([a, b]) for p in pieces)
                assert covered == (not inside), (a, b)


class TestComplementConstraintSystems:
    def test_incremental_reduction_bounds_size(self):
        """Conjoining N negated systems stays polynomial, not (m(m+1))^N."""
        systems = []
        for i in range(8):
            d = DBM(2)
            d.add_upper(0, i)
            d.add_lower(0, i)
            d.add_upper(1, i)
            systems.append(d)
        result = complement_constraint_systems(systems, 2)
        # The paper's bound for m=2 is (N+1)^(m(m+1)) = 9^6; the actual
        # reduced count is tiny.
        assert 0 < len(result) < 100

    def test_full_space_annihilates(self):
        systems = [DBM(1)]  # unconstrained = everything
        assert complement_constraint_systems(systems, 1) == []


class TestComplement:
    def test_complement_of_empty_is_universe(self):
        r = relation(temporal=["X1"])
        comp = algebra.complement(r)
        assert comp.contains([0]) and comp.contains([-999])

    def test_complement_of_universe_is_empty(self):
        u = GeneralizedRelation.universe(Schema.make(temporal=["X1"]))
        assert algebra.complement(u).is_empty()

    def test_unary_progression(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["2n"])
        comp = algebra.complement(r)
        for x in range(-9, 10):
            assert comp.contains([x]) == (x % 2 == 1), x

    def test_constrained_tuple(self):
        r = relation(temporal=["X1"])
        r.add_tuple(["n"], "X1 >= 3 & X1 <= 7")
        comp = algebra.complement(r)
        for x in range(-10, 20):
            assert comp.contains([x]) == (x < 3 or x > 7), x

    def test_zero_arity(self):
        empty = relation(temporal=[])
        comp = algebra.complement(empty)
        assert not comp.is_empty()
        assert algebra.complement(comp).is_empty()

    def test_involution_on_window(self):
        r = relation(temporal=["X1", "X2"])
        r.add_tuple(["2n", "3n"], "X1 <= X2")
        twice = algebra.complement(algebra.complement(r))
        assert twice.snapshot(*WINDOW) == r.snapshot(*WINDOW)

    def test_extension_limit(self):
        r = relation(temporal=["X1", "X2"])
        r.add_tuple(["101n", "103n"])
        with pytest.raises(NormalizationLimitError):
            algebra.complement(r, max_extensions=1000)

    def test_data_requires_domains(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        r = GeneralizedRelation.empty(schema)
        r.add_tuple(["2n"], data=["a"])
        with pytest.raises(DomainError):
            algebra.complement(r)
        with pytest.raises(DomainError):
            algebra.complement(r, data_domains={"other": ["a"]})

    def test_data_complement(self):
        schema = Schema.make(temporal=["t"], data=["who"])
        r = GeneralizedRelation.empty(schema)
        r.add_tuple(["2n"], data=["a"])
        comp = algebra.complement(r, data_domains={"who": ["a", "b"]})
        assert comp.contains([1], ["a"])  # odd point, present data value
        assert not comp.contains([2], ["a"])
        assert comp.contains([2], ["b"])  # absent data value: everything

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_complement_partitions_the_window(self, seed):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["X1", "X2"]), 2)
        comp = algebra.complement(r)
        inside = r.snapshot(*WINDOW)
        outside = comp.snapshot(*WINDOW)
        universe = universe_points(2, *WINDOW)
        assert inside | outside == universe
        assert not (inside & outside)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_de_morgan(self, seed):
        """¬(r1 ∪ r2) == ¬r1 ∩ ¬r2 on a window."""
        rng = random.Random(seed)
        schema = Schema.make(temporal=["X1"])
        r1 = random_relation(rng, schema, 2)
        r2 = random_relation(rng, schema, 2)
        left = algebra.complement(algebra.union(r1, r2))
        right = algebra.intersect(
            algebra.complement(r1), algebra.complement(r2)
        )
        assert left.snapshot(-15, 15) == right.snapshot(-15, 15)
