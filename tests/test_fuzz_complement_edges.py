"""Complement edge cases, checked against the finite-window oracle.

The complement is where the generalized representation earns its keep
(the finite engine cannot complement against Z at all), so its edges —
empty relations, the full universe, double complement — get dedicated
differential coverage over more than one window.
"""

from repro.baseline.finite import FiniteRelation
from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema
from repro.fuzz.case import Case
from repro.fuzz.diff import run_case
from repro.fuzz.expr import Complement, Leaf

#: Two windows of different sizes and positions; every check runs on both.
WINDOWS = ((-4, 4), (-9, 2))

T1 = Schema.make(temporal=["T1"])
T12 = Schema.make(temporal=["T1", "T2"])


def oracle_complement(relation, low, high):
    finite = FiniteRelation.materialize(relation, low, high)
    domains = {name: range(low, high + 1) for name in relation.schema.names}
    return set(finite.complement(domains).rows)


def assert_matches_oracle(relation, low, high):
    got = algebra.complement(relation).snapshot(low, high)
    assert got == oracle_complement(relation, low, high)


class TestComplementEdges:
    def test_complement_of_empty_is_universe(self):
        for schema in (T1, T12):
            empty = GeneralizedRelation.empty(schema)
            comp = algebra.complement(empty)
            for low, high in WINDOWS:
                span = high - low + 1
                assert len(comp.snapshot(low, high)) == span ** len(schema)
                assert_matches_oracle(empty, low, high)

    def test_complement_of_universe_is_empty(self):
        for schema in (T1, T12):
            universe = GeneralizedRelation.universe(schema)
            comp = algebra.complement(universe)
            for low, high in WINDOWS:
                assert comp.snapshot(low, high) == set()
                assert_matches_oracle(universe, low, high)

    def test_double_complement_identity(self):
        rel = GeneralizedRelation.empty(T1)
        rel.add_tuple(["1 + 3n"], "T1 >= -6")
        rel.add_tuple(["4"], "")
        doubled = algebra.complement(algebra.complement(rel))
        for low, high in WINDOWS:
            assert doubled.snapshot(low, high) == rel.snapshot(low, high)

    def test_double_complement_identity_2d(self):
        rel = GeneralizedRelation.empty(T12)
        rel.add_tuple(["0 + 2n", "1 + 2n"], "T1 <= T2")
        doubled = algebra.complement(algebra.complement(rel))
        for low, high in WINDOWS:
            assert doubled.snapshot(low, high) == rel.snapshot(low, high)

    def test_periodic_complement_against_oracle(self):
        rel = GeneralizedRelation.empty(T1)
        rel.add_tuple(["0 + 2n"], "")
        for low, high in WINDOWS:
            assert_matches_oracle(rel, low, high)

    def test_constrained_2d_complement_against_oracle(self):
        rel = GeneralizedRelation.empty(T12)
        rel.add_tuple(["0 + 3n", "0 + 1n"], "T2 >= T1 - 1 & T2 <= T1 + 1")
        for low, high in WINDOWS:
            assert_matches_oracle(rel, low, high)


class TestComplementThroughHarness:
    """The same edges as whole differential cases (all three engines)."""

    def run_over_windows(self, relation, expr_builder=Complement):
        for low, high in WINDOWS:
            case = Case(
                relations={"R": relation},
                expr=expr_builder(Leaf("R")),
                low=low,
                high=high,
            )
            result = run_case(case)
            assert result.ok, result.summary()

    def test_empty_relation_case(self):
        self.run_over_windows(GeneralizedRelation.empty(T1))

    def test_universe_case(self):
        self.run_over_windows(GeneralizedRelation.universe(T12))

    def test_double_complement_case(self):
        rel = GeneralizedRelation.empty(T1)
        rel.add_tuple(["2 + 5n"], "T1 >= -8")
        self.run_over_windows(
            rel, expr_builder=lambda leaf: Complement(Complement(leaf))
        )
