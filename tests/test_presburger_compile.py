"""Differential tests for the Presburger-to-relation compilers.

These are the constructive halves of Theorems 2.1 and 2.2: every
compiled relation must denote exactly the formula's solution set
(checked over windows against the direct evaluator).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConstraintError
from repro.presburger import (
    Rel,
    binary_to_restricted,
    comparison,
    compile_binary,
    compile_unary,
    compile_unary_comparison,
    compile_unary_congruence,
    congruence,
    congruence_classes,
    conj,
    disj,
    neg,
    parse_formula,
    relation_to_formula,
    solutions,
)

WINDOW = (-15, 15)


def unary_points(rel):
    return {x for (x,) in rel.snapshot(*WINDOW)}


def formula_points(formula, var="v"):
    return {x for (x,) in solutions(formula, [var], *WINDOW)}


class TestUnaryComparisons:
    """Theorem 2.1 cases 1-3."""

    @pytest.mark.parametrize(
        "k1,rel,c",
        [
            (3, Rel.EQ, 6),
            (3, Rel.EQ, 5),
            (2, Rel.LT, 7),
            (2, Rel.GT, -7),
            (-3, Rel.LE, 7),
            (-3, Rel.GE, 7),
            (0, Rel.EQ, 0),
            (0, Rel.LT, -1),
            (1, Rel.LE, 0),
        ],
    )
    def test_basic_cases(self, k1, rel, c):
        compiled = compile_unary_comparison(k1, rel, c)
        expected = {x for x in range(*WINDOW) if rel.holds(k1 * x, c)}
        got = {x for x in unary_points(compiled) if WINDOW[0] <= x < WINDOW[1]}
        assert got == expected

    @given(
        st.integers(-5, 5),
        st.sampled_from(list(Rel)),
        st.integers(-12, 12),
    )
    @settings(max_examples=150, deadline=None)
    def test_all_comparisons(self, k1, rel, c):
        compiled = compile_unary_comparison(k1, rel, c)
        expected = {x for x in range(WINDOW[0], WINDOW[1] + 1) if rel.holds(k1 * x, c)}
        assert unary_points(compiled) == expected


class TestUnaryCongruences:
    """Theorem 2.1 case 4."""

    def test_paper_form(self):
        # 2v ≡ 3 (mod 7): v ≡ 5 (mod 7)
        compiled = compile_unary_congruence(2, 3, 7)
        assert unary_points(compiled) == {
            x for x in range(WINDOW[0], WINDOW[1] + 1) if (2 * x - 3) % 7 == 0
        }

    def test_unsolvable(self):
        assert compile_unary_congruence(4, 1, 8).is_empty()

    def test_degenerate_coefficient(self):
        assert not compile_unary_congruence(8, 0, 4).is_empty()
        assert compile_unary_congruence(8, 1, 4).is_empty()

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            compile_unary_congruence(1, 0, 0)

    @given(st.integers(-6, 6), st.integers(-8, 8), st.integers(1, 8))
    @settings(max_examples=150, deadline=None)
    def test_all_congruences(self, k1, c, k2):
        compiled = compile_unary_congruence(k1, c, k2)
        expected = {
            x
            for x in range(WINDOW[0], WINDOW[1] + 1)
            if (k1 * x - c) % k2 == 0
        }
        assert unary_points(compiled) == expected


@st.composite
def unary_formulas(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return comparison(
                {"v": draw(st.integers(-4, 4))},
                draw(st.sampled_from(list(Rel))),
                draw(st.integers(-8, 8)),
            )
        return congruence(
            {"v": draw(st.integers(-4, 4)) or 1},
            draw(st.integers(-4, 4)),
            draw(st.integers(1, 6)),
        )
    connective = draw(st.integers(0, 2))
    if connective == 0:
        return neg(draw(unary_formulas(depth=depth - 1)))
    left = draw(unary_formulas(depth=depth - 1))
    right = draw(unary_formulas(depth=depth - 1))
    return conj(left, right) if connective == 1 else disj(left, right)


class TestUnaryBooleanCombinations:
    """Theorem 2.1, full statement: boolean closure via the algebra."""

    def test_conjunction(self):
        formula = parse_formula("v = 0 mod 2 & v >= 0")
        compiled = compile_unary(formula)
        assert unary_points(compiled) == formula_points(formula)

    def test_negation_via_complement(self):
        formula = neg(parse_formula("v = 0 mod 3"))
        compiled = compile_unary(formula)
        assert unary_points(compiled) == formula_points(formula)

    def test_variable_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compile_unary(parse_formula("x = 0"), variable="y")
        with pytest.raises(ValueError):
            compile_unary(parse_formula("x = y"))

    @given(unary_formulas())
    @settings(max_examples=80, deadline=None)
    def test_boolean_combinations(self, formula):
        compiled = compile_unary(formula, variable="v")
        assert unary_points(compiled) == formula_points(formula)


class TestRoundTrip:
    """Both directions of Theorem 2.1 composed: formula -> relation -> formula."""

    @given(unary_formulas())
    @settings(max_examples=50, deadline=None)
    def test_formula_relation_formula(self, formula):
        compiled = compile_unary(formula, variable="v")
        back = relation_to_formula(compiled, variable="v")
        assert formula_points(back) == formula_points(formula)

    def test_requires_unary(self):
        from repro.core.relations import relation

        with pytest.raises(ValueError):
            relation_to_formula(relation(temporal=["a", "b"]))


class TestCongruenceClasses:
    """The lattice-class decomposition in Theorem 2.2's proof."""

    @given(
        st.integers(-5, 5),
        st.integers(-5, 5),
        st.integers(-6, 6),
        st.integers(1, 6),
    )
    @settings(max_examples=200, deadline=None)
    def test_classes_cover_exactly(self, a1, a2, c, m):
        classes = congruence_classes(a1, a2, c, m)
        for x in range(-8, 9):
            for y in range(-8, 9):
                expected = (a1 * x + a2 * y - c) % m == 0
                covered = any(
                    lx.contains(x) and ly.contains(y) for lx, ly in classes
                )
                assert covered == expected, (x, y)


class TestBinaryCompilation:
    """Theorem 2.2: binary Presburger -> general-constraint relations."""

    BINARY_WINDOW = (-10, 10)

    def binary_points(self, grel):
        return grel.snapshot(*self.BINARY_WINDOW)

    def formula_pairs(self, formula):
        return solutions(formula, ["x", "y"], *self.BINARY_WINDOW)

    @pytest.mark.parametrize(
        "text",
        [
            "3x = 2y + 1",
            "3x < 2y + 1",
            "3x > 2y + 1",
            "2x = 3y + 1 mod 5",
            "x = y mod 2 & x >= 0",
            "~(3x = 2y) & x < y + 4",
            "2x = 4 | y = 1 mod 3",
            "x = 3",
        ],
    )
    def test_examples(self, text):
        formula = parse_formula(text)
        compiled = compile_binary(formula, variables=("x", "y"))
        assert self.binary_points(compiled) == self.formula_pairs(formula)

    @given(
        st.integers(-4, 4),
        st.integers(-4, 4),
        st.integers(-6, 6),
        st.sampled_from(list(Rel)),
    )
    @settings(max_examples=100, deadline=None)
    def test_basic_comparisons(self, k1, k2, c, rel):
        formula = comparison({"x": k1, "y": -k2}, rel, c)
        compiled = compile_binary(formula, variables=("x", "y"))
        assert self.binary_points(compiled) == self.formula_pairs(formula)

    @given(
        st.integers(-4, 4),
        st.integers(-4, 4),
        st.integers(-5, 5),
        st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_basic_congruences(self, k1, k2, c, m):
        formula = congruence({"x": k1, "y": -k2}, c, m)
        compiled = compile_binary(formula, variables=("x", "y"))
        assert self.binary_points(compiled) == self.formula_pairs(formula)

    def test_too_many_variables(self):
        with pytest.raises(ValueError):
            compile_binary(parse_formula("x + y + z = 0"))


class TestBinaryToRestricted:
    def test_unit_coefficients_convert(self):
        formula = parse_formula("x = y mod 2 & x <= y + 4")
        grel = compile_binary(formula, variables=("x", "y"))
        restricted = binary_to_restricted(grel, names=("x", "y"))
        assert restricted.snapshot(-8, 8) == solutions(
            formula, ["x", "y"], -8, 8
        )

    def test_general_coefficients_rejected(self):
        grel = compile_binary(
            parse_formula("3x = 2y + 1"), variables=("x", "y")
        )
        with pytest.raises(ConstraintError):
            binary_to_restricted(grel)
