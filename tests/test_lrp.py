"""Unit and property tests for linear repeating points."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ParseError
from repro.core.lrp import LRP, common_period

offsets = st.integers(min_value=-30, max_value=30)
periods = st.integers(min_value=0, max_value=12)


def lrps():
    return st.builds(LRP.make, offsets, periods)


class TestCanonicalForm:
    def test_make_reduces_offset(self):
        assert LRP.make(7, 5) == LRP.make(2, 5)
        assert LRP.make(-3, 5) == LRP.make(2, 5)

    def test_make_absolute_period(self):
        assert LRP.make(3, -5) == LRP.make(3, 5)

    def test_point(self):
        p = LRP.point(-17)
        assert p.is_singleton and p.offset == -17

    def test_invalid_direct_construction(self):
        with pytest.raises(ValueError):
            LRP(offset=7, period=5)
        with pytest.raises(ValueError):
            LRP(offset=0, period=-1)

    @given(offsets, periods)
    def test_canonicalization_preserves_membership(self, c, k):
        lrp = LRP.make(c, k)
        for x in range(c - 2 * max(k, 1), c + 2 * max(k, 1) + 1):
            member = (x == c) if k == 0 else ((x - c) % k == 0)
            assert lrp.contains(x) == member


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("3 + 5n", LRP.make(3, 5)),
            ("5n + 3", LRP.make(3, 5)),
            ("3+5n", LRP.make(3, 5)),
            ("-17 + 5n", LRP.make(-17, 5)),
            ("7", LRP.point(7)),
            ("-7", LRP.point(-7)),
            ("n", LRP.make(0, 1)),
            ("2n", LRP.make(0, 2)),
            ("2 * n", LRP.make(0, 2)),
            ("10n1", LRP.make(0, 10)),
            ("3 + 10n2", LRP.make(3, 10)),
            ("2n - 4", LRP.make(-4, 2)),
            ("1 - 2n", LRP.make(1, 2)),
        ],
    )
    def test_accepts(self, text, expected):
        assert LRP.parse(text) == expected

    @pytest.mark.parametrize("text", ["", "x + 2", "3 +", "n + n"])
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            LRP.parse(text)

    @given(offsets, periods)
    def test_str_round_trip(self, c, k):
        lrp = LRP.make(c, k)
        assert LRP.parse(str(lrp)) == lrp


class TestMembershipEnumeration:
    def test_example_2_1(self):
        """The paper's Example 2.1: 3 + 5n."""
        lrp = LRP.parse("3 + 5n")
        members = list(lrp.enumerate(-17, 23))
        assert members == [-17, -12, -7, -2, 3, 8, 13, 18, 23]

    def test_enumerate_singleton(self):
        assert list(LRP.point(4).enumerate(0, 10)) == [4]
        assert list(LRP.point(4).enumerate(5, 10)) == []

    def test_first_last(self):
        lrp = LRP.make(3, 5)
        assert lrp.first_at_or_above(4) == 8
        assert lrp.last_at_or_below(7) == 3

    def test_first_last_singleton_raises(self):
        with pytest.raises(ValueError):
            LRP.point(2).first_at_or_above(5)
        with pytest.raises(ValueError):
            LRP.point(7).last_at_or_below(5)

    @given(lrps(), st.integers(-40, 0), st.integers(0, 40))
    def test_enumerate_matches_contains(self, lrp, low, high):
        enumerated = set(lrp.enumerate(low, high))
        brute = {x for x in range(low, high + 1) if lrp.contains(x)}
        assert enumerated == brute


class TestIntersection:
    def test_example_3_1(self):
        """Paper Example 3.1: 2n+1 ∩ 5n = 10n+5; 3n-4 ∩ 5n+2 = 15n+2."""
        assert LRP.parse("2n + 1").intersect(LRP.parse("5n")) == LRP.make(5, 10)
        assert LRP.parse("3n - 4").intersect(LRP.parse("5n + 2")) == LRP.make(2, 15)

    def test_disjoint(self):
        assert LRP.make(0, 2).intersect(LRP.make(1, 2)) is None

    def test_point_in_progression(self):
        assert LRP.point(7).intersect(LRP.make(1, 3)) == LRP.point(7)
        assert LRP.point(8).intersect(LRP.make(1, 3)) is None

    def test_includes(self):
        assert LRP.make(0, 2).includes(LRP.make(0, 4))
        assert LRP.make(0, 2).includes(LRP.point(6))
        assert not LRP.make(0, 4).includes(LRP.make(0, 2))

    @given(lrps(), lrps())
    def test_intersection_is_set_intersection(self, a, b):
        meet = a.intersect(b)
        window = range(-60, 61)
        brute = {x for x in window if a.contains(x) and b.contains(x)}
        if meet is None:
            assert not brute
        else:
            assert brute == {x for x in window if meet.contains(x)}


class TestSplit:
    def test_lemma_3_1(self):
        """Lemma 3.1: an lrp of period k splits into c lrps of period ck."""
        pieces = LRP.make(1, 2).split(6)
        assert pieces == [LRP.make(1, 6), LRP.make(3, 6), LRP.make(5, 6)]

    def test_split_identity(self):
        assert LRP.make(3, 4).split(4) == [LRP.make(3, 4)]

    def test_split_singleton_unchanged(self):
        assert LRP.point(9).split(4) == [LRP.point(9)]

    def test_split_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            LRP.make(0, 4).split(6)

    @given(st.integers(-10, 10), st.integers(1, 6), st.integers(1, 4))
    def test_split_partitions(self, c, k, factor):
        lrp = LRP.make(c, k)
        pieces = lrp.split(k * factor)
        assert len(pieces) == factor
        window = range(-40, 41)
        covered = [x for x in window if any(p.contains(x) for p in pieces)]
        original = [x for x in window if lrp.contains(x)]
        assert covered == original
        # pieces are pairwise disjoint
        for x in window:
            assert sum(p.contains(x) for p in pieces) <= 1 or lrp.period == 0


class TestSubtract:
    def test_disjoint_returns_self(self):
        a, b = LRP.make(0, 2), LRP.make(1, 2)
        assert a.subtract(b) == [a]

    def test_equal_returns_empty(self):
        a = LRP.make(1, 3)
        assert a.subtract(a) == []

    def test_periodic_difference(self):
        # {2n} - {4n} = {4n + 2}
        out = LRP.make(0, 2).subtract(LRP.make(0, 4))
        assert out == [LRP.make(2, 4)]

    def test_point_minus_progression_containing_it(self):
        assert LRP.point(6).subtract(LRP.make(0, 2)) == []

    def test_point_carveout_not_expressible(self):
        with pytest.raises(ValueError):
            LRP.make(0, 2).subtract(LRP.point(4))

    @given(lrps(), lrps())
    def test_subtract_is_set_difference(self, a, b):
        meet = a.intersect(b)
        if meet is not None and meet.period == 0 and a.period != 0:
            return  # the documented inexpressible case
        out = a.subtract(b)
        window = range(-60, 61)
        brute = {x for x in window if a.contains(x) and not b.contains(x)}
        covered = {x for x in window if any(p.contains(x) for p in out)}
        assert covered == brute


class TestCommonPeriod:
    def test_mixed(self):
        lrps_list = [LRP.make(0, 4), LRP.make(1, 6), LRP.point(2)]
        assert common_period(lrps_list) == 12

    def test_all_singletons(self):
        assert common_period([LRP.point(1), LRP.point(2)]) == 1


class TestOrderingAndRepr:
    def test_sortable(self):
        items = sorted([LRP.make(3, 5), LRP.make(1, 2), LRP.point(9)])
        assert items[0] == LRP.make(1, 2)

    def test_repr(self):
        assert repr(LRP.make(3, 5)) == "LRP(3, 5)"

    def test_str_forms(self):
        assert str(LRP.point(7)) == "7"
        assert str(LRP.make(0, 4)) == "4n"
        assert str(LRP.make(3, 4)) == "3 + 4n"

    def test_hashable(self):
        assert len({LRP.make(7, 5), LRP.make(2, 5)}) == 1
