"""Replay the regression corpus through the differential harness.

Every JSON file under ``tests/corpus/`` is a shrunk repro of a bug once
found by ``repro fuzz`` (or a hand-built edge case worth pinning).
Plain pytest replays each through all three engines; a regression
resurfaces as a ``divergent`` or ``error`` status here, with the case's
``note`` field explaining what it originally caught.
"""

from pathlib import Path

import pytest

from repro.fuzz.case import FORMAT, load_case
from repro.fuzz.diff import run_case

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, f"no corpus cases found under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_case_replays_clean(path):
    case = load_case(path)
    case.validate()
    result = run_case(case)
    assert not result.failing, (
        f"{path.name} regressed ({case.note or 'no note'}):\n"
        f"{result.summary()}"
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_case_round_trips(path):
    case = load_case(path)
    again = case.dumps()
    assert case.to_dict()["format"] == FORMAT
    # Serialization is stable: dump(load(dump)) == dump.
    from repro.fuzz.case import case_from_dict
    import json

    assert case_from_dict(json.loads(again)).dumps() == again
