"""Tests for generalized tuples."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import atoms_to_dbm, parse_atoms
from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.tuples import GeneralizedTuple

from tests.helpers import random_tuple


def make(lrps, constraints="", data=()):
    names = [f"X{i + 1}" for i in range(len(lrps))]
    dbm = atoms_to_dbm(parse_atoms(constraints), names)
    return GeneralizedTuple.make(lrps, data=data, dbm=dbm)


class TestConstruction:
    def test_make_coerces(self):
        t = GeneralizedTuple.make([3, "1 + 2n", LRP.make(0, 4)])
        assert t.lrps == (LRP.point(3), LRP.make(1, 2), LRP.make(0, 4))

    def test_arities(self):
        t = make(["2n", 5], data=("robot1",))
        assert t.temporal_arity == 2 and t.data_arity == 1

    def test_dbm_size_mismatch(self):
        with pytest.raises(ValueError):
            GeneralizedTuple(lrps=(LRP.point(0),), dbm=DBM(2))

    def test_free_extension(self):
        t = make(["2n", "3n"], "X1 <= X2")
        free = t.free_extension()
        assert free.lrps == t.lrps
        assert not free.has_constraints()
        assert t.has_constraints()


class TestSemantics:
    def test_example_2_2_first(self):
        """Paper Example 2.2: [1, 1+2n] ∧ X2 >= 0."""
        t = make([1, "1 + 2n"], "X2 >= 0")
        assert t.contains([1, 1]) and t.contains([1, 3]) and t.contains([1, 5])
        assert not t.contains([1, -1])
        assert not t.contains([2, 3])
        assert not t.contains([1, 2])

    def test_example_2_2_second(self):
        """Paper Example 2.2: [3+2n, 5+2n] ∧ X1 = X2 - 2."""
        t = make(["3 + 2n", "5 + 2n"], "X1 = X2 - 2")
        for pair in [(3, 5), (5, 7), (7, 9), (-1, 1), (3, 1)]:
            expected = pair[1] - pair[0] == 2 and pair[0] % 2 == 1
            assert t.contains(list(pair)) == expected, pair

    def test_contains_data(self):
        t = make([5], data=("a", 1))
        assert t.contains([5], ("a", 1))
        assert not t.contains([5], ("b", 1))

    def test_contains_wrong_arity(self):
        with pytest.raises(ValueError):
            make([5]).contains([5, 6])

    def test_enumerate_zero_arity(self):
        t = GeneralizedTuple.make([])
        assert list(t.enumerate(-5, 5)) == [()]

    def test_enumerate_unsatisfiable(self):
        t = make(["n"], "X1 <= 0 & X1 >= 1")
        assert list(t.enumerate(-10, 10)) == []

    @given(st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_enumerate_matches_contains(self, seed):
        rng = random.Random(seed)
        t = random_tuple(rng, 2)
        window = (-8, 8)
        enumerated = set(t.enumerate(*window))
        brute = {
            (a, b)
            for a in range(window[0], window[1] + 1)
            for b in range(window[0], window[1] + 1)
            if t.contains([a, b])
        }
        assert enumerated == brute


class TestIntersection:
    def test_example_3_1_tuples(self):
        """Paper Example 3.1 at the tuple level."""
        t1 = make(["2n + 1", "3n - 4"], "X1 <= X2 & X1 >= 3")
        t2 = make(["5n", "5n + 2"], "X1 = X2 - 2")
        meet = t1.intersect(t2)
        assert meet is not None
        assert meet.lrps == (LRP.make(5, 10), LRP.make(2, 15))
        # Constraints are the union: X1 <= X2, X1 >= 3, X1 = X2 - 2.
        assert meet.contains([15, 17])
        assert not meet.contains([5, 2])  # violates X1 = X2 - 2

    def test_disjoint_lrps(self):
        t1 = make(["2n"])
        t2 = make(["2n + 1"])
        assert t1.intersect(t2) is None

    def test_different_data(self):
        t1 = make(["n"], data=("a",))
        t2 = make(["n"], data=("b",))
        assert t1.intersect(t2) is None

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            make(["n"]).intersect(make(["n", "n"]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_intersection_is_set_intersection(self, seed):
        rng = random.Random(seed)
        t1 = random_tuple(rng, 2)
        t2 = random_tuple(rng, 2)
        meet = t1.intersect(t2)
        window = (-10, 10)
        s1 = set(t1.enumerate(*window))
        s2 = set(t2.enumerate(*window))
        got = set(meet.enumerate(*window)) if meet is not None else set()
        assert got == s1 & s2


class TestCanonicalKey:
    def test_equal_tuples_equal_keys(self):
        t1 = make(["2n", "2n"], "X1 <= X2 & X1 >= X2")
        t2 = make(["2n", "2n"], "X1 = X2")
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_canonical_lrp_equality(self):
        a = GeneralizedTuple.make([LRP.make(7, 5)])
        b = GeneralizedTuple.make([LRP.make(2, 5)])
        assert a == b

    def test_distinct_data_distinct(self):
        assert make(["n"], data=("a",)) != make(["n"], data=("b",))

    def test_str_contains_pieces(self):
        t = make(["3 + 5n", 7], "X1 <= X2", data=("robot",))
        text = str(t)
        assert "3 + 5n" in text and "7" in text
        assert "X1 <= X2" in text and "robot" in text
