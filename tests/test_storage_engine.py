"""Tests for the durable storage engine: open/commit/compact/recover."""

import os

import pytest

from repro.core.errors import RecoveryError, SchemaError, StorageError
from repro.obs import metrics
from repro.query.database import Database
from repro.storage.engine import StorageEngine

WINDOW = (-40, 120)


def catalog_points(db: Database) -> dict[str, set]:
    """The finite-window image of every relation — recovery's oracle."""
    return {
        name: db.relation(name).snapshot(*WINDOW) for name in db.names
    }


def populate(db: Database) -> None:
    db.create("Train", temporal=["dep", "arr"], data=["service"])
    trains = db.relation("Train")
    trains.add_tuple(["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"])
    trains.add_tuple(["46 + 60n", "110 + 60n"], "dep = arr - 64", ["express"])
    db.create("Fires", temporal=["t"])
    db.relation("Fires").add_tuple(["2 + 6n"], "t >= 0")


class TestOpenAndCommit:
    def test_open_initializes_empty(self, tmp_path):
        with Database.open(str(tmp_path / "db")) as db:
            assert db.names == ()
            assert db.persistent
            assert db.storage is not None

    def test_create_false_requires_existing(self, tmp_path):
        with pytest.raises(StorageError, match="no database"):
            Database.open(str(tmp_path / "missing"), create=False)

    def test_refuses_foreign_directory(self, tmp_path):
        (tmp_path / "stuff.txt").write_text("not a database")
        with pytest.raises(StorageError, match="non-empty"):
            Database.open(str(tmp_path))

    def test_commit_and_reopen(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path)
        populate(db)
        assert db.commit() == 2  # one put per relation
        before = catalog_points(db)
        db.close()
        with Database.open(path) as again:
            assert set(again.names) == {"Train", "Fires"}
            assert catalog_points(again) == before

    def test_commit_is_idempotent_when_unchanged(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            populate(db)
            assert db.commit() > 0
            assert db.commit() == 0
        # ... and straight after recovery too: the recovered encoding is
        # the committed encoding, so nothing spuriously re-persists.
        with Database.open(path) as again:
            assert again.commit() == 0

    def test_only_changed_relations_are_rewritten(self, tmp_path):
        with Database.open(str(tmp_path / "db")) as db:
            populate(db)
            db.commit()
            db.relation("Fires").add_tuple(["5 + 6n"], "t >= 12")
            assert db.commit() == 1  # Train untouched -> one put

    def test_drop_persists(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            populate(db)
            db.commit()
            db.drop("Fires")
            assert db.commit() == 1  # one drop record
        with Database.open(path) as again:
            assert again.names == ("Train",)

    def test_uncommitted_work_is_lost(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            populate(db)
            db.commit()
            db.relation("Fires").add_tuple(["1 + 6n"], "t >= 0")
            db.create("Extra", temporal=["t"])
            # no commit
        with Database.open(path) as again:
            assert set(again.names) == {"Train", "Fires"}
            assert not again.relation("Fires").contains([1])

    def test_many_transactions_replay_in_order(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            db.create("Seq", temporal=["t"])
            for i in range(7):
                db.relation("Seq").add_tuple([str(i)])
                db.commit()
        with Database.open(path) as again:
            assert sorted(again.relation("Seq").enumerate(0, 10)) == [
                (i,) for i in range(7)
            ]

    def test_in_memory_database_rejects_commit(self):
        db = Database()
        assert not db.persistent
        with pytest.raises(SchemaError, match="in-memory"):
            db.commit()
        with pytest.raises(SchemaError, match="in-memory"):
            db.compact()
        db.close()  # close is a harmless no-op without a store


class TestCompaction:
    def test_compact_truncates_wal_preserves_state(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path)
        populate(db)
        db.commit()
        before = catalog_points(db)
        wal_before = db.storage.info()["wal_bytes"]
        assert wal_before > 0
        snapshot = db.compact()
        assert db.storage.info()["wal_bytes"] == 0
        assert db.storage.info()["snapshot"] == snapshot
        db.close()
        with Database.open(path) as again:
            assert catalog_points(again) == before

    def test_commits_after_compaction_replay_over_snapshot(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            populate(db)
            db.commit()
            db.compact()
            db.relation("Fires").add_tuple(["3 + 6n"], "t >= 0")
            db.commit()
            expected = catalog_points(db)
        with Database.open(path) as again:
            assert catalog_points(again) == expected

    def test_compact_ignores_uncommitted_changes(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            populate(db)
            db.commit()
            committed = catalog_points(db)
            db.create("Uncommitted", temporal=["t"])
            db.compact()  # compacts the committed state only
        with Database.open(path) as again:
            assert "Uncommitted" not in again
            assert catalog_points(again) == committed

    def test_repeated_compaction_keeps_one_snapshot(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            populate(db)
            db.commit()
            db.compact()
            db.relation("Fires").add_tuple(["4 + 6n"], "t >= 0")
            db.commit()
            db.compact()
            snapshots = os.listdir(
                os.path.join(path, "snapshots")
            )
            assert len(snapshots) == 1


class TestEngineLifecycle:
    def test_closed_engine_rejects_operations(self, tmp_path):
        engine = StorageEngine.open(str(tmp_path / "db"))
        engine.close()
        with pytest.raises(StorageError, match="closed"):
            engine.commit({})
        engine.close()  # idempotent

    def test_corrupt_manifest_is_recovery_error(self, tmp_path):
        path = str(tmp_path / "db")
        StorageEngine.open(path).close()
        with open(os.path.join(path, "MANIFEST"), "wb") as handle:
            handle.write(b"garbage\n")
        with pytest.raises(RecoveryError, match="manifest"):
            StorageEngine.open(path)

    def test_corrupt_snapshot_is_recovery_error(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path)
        populate(db)
        db.commit()
        snapshot = db.compact()
        db.close()
        snapshot_path = os.path.join(path, "snapshots", snapshot)
        with open(snapshot_path, "r+b") as handle:
            handle.seek(20)
            handle.write(b"XXXX")
        with pytest.raises(RecoveryError, match="snapshot"):
            Database.open(path)

    def test_torn_wal_tail_is_repaired_on_open(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            populate(db)
            db.commit()
            expected = catalog_points(db)
        wal = os.path.join(path, "wal.log")
        with open(wal, "ab") as handle:
            handle.write(b"0badc0de 999 {torn")  # a torn tail
        with Database.open(path) as again:
            assert catalog_points(again) == expected
        # the tail was truncated away, so a further reopen is clean too
        with Database.open(path) as final:
            assert catalog_points(final) == expected

    def test_metrics_are_recorded(self, tmp_path):
        with Database.open(str(tmp_path / "db")) as db:
            populate(db)
            db.commit()
            db.compact()
        snap = metrics().snapshot()
        assert snap["counters"]["storage.wal.records_appended"] >= 3
        assert snap["counters"]["storage.wal.bytes_appended"] > 0
        assert snap["counters"]["storage.snapshots_written"] >= 1
        assert snap["histograms"]["storage.recovery.seconds"]["count"] >= 1
        assert snap["histograms"]["storage.commit.seconds"]["count"] >= 1
        assert snap["histograms"]["storage.snapshot.seconds"]["count"] >= 1

    def test_info_shape(self, tmp_path):
        with Database.open(str(tmp_path / "db")) as db:
            populate(db)
            db.commit()
            info = db.storage.info()
        assert info["format"] == 1
        assert info["relations"] == {"Train": 2, "Fires": 1}
        assert info["wal_bytes"] > 0
        assert info["snapshot"] is None

    def test_data_values_round_trip(self, tmp_path):
        path = str(tmp_path / "db")
        with Database.open(path) as db:
            db.create("Mixed", temporal=["t"], data=["a", "b"])
            db.relation("Mixed").add_tuple(["3n"], "t >= 0", ["x", 7])
            db.relation("Mixed").add_tuple(["5n"], "t >= 0", [None, -2])
            db.commit()
            expected = catalog_points(db)
        with Database.open(path) as again:
            assert catalog_points(again) == expected
