"""Semi-naive evaluation: equivalence with the naive oracle + strata.

The semi-naive strategy must be *observationally* equivalent to the
naive fixpoint — same point sets for every IDB relation, on every
program, on every database.  These tests pin that down on hand-built
programs, on seeded random temporal-graph workloads, and as a
hypothesis property; plus the differentiation machinery itself
(occurrence classification, brittle fallbacks) and the stratification
edge cases the incremental layer leans on.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.errors import EvaluationError
from repro.deductive import Program
from repro.deductive.incremental import (
    DIRTY,
    delta_name,
    differentiate,
    occurrences,
)
from repro.deductive.program import default_strategy
from repro.deductive.scenarios import (
    EDGE_SCHEMA,
    edge_batches,
    edge_relation,
    reachability_program,
)
from repro.query import Database
from repro.query.parser import parse_query


def assert_same_idb(program: Program, db: Database) -> None:
    """Evaluate both strategies and compare every IDB as a point set."""
    fast = program.evaluate(db, strategy="seminaive")
    slow = program.evaluate(db, strategy="naive")
    for name in program.idb_names:
        assert algebra.equivalent(
            fast.relation(name), slow.relation(name)
        ), f"strategies disagree on {name}"


def edge_db(seed: int, n_nodes: int = 5, n_batches: int = 4) -> Database:
    db = Database()
    db.register(
        "Edge",
        edge_relation(edge_batches(n_nodes, n_batches, 3, seed=seed)),
    )
    return db


class TestStrategyEquivalence:
    def test_recursive_reachability(self):
        assert_same_idb(reachability_program(4), edge_db(1))

    def test_nonrecursive_program(self):
        db = Database()
        db.create("Perform", temporal=["t1", "t2"], data=["robot"])
        db.relation("Perform").add_tuple(
            ["2 + 10n", "5 + 10n"], "t1 = t2 - 3", ["r1"]
        )
        program = Program()
        program.declare("Busy", temporal=["t"], data=["r"])
        program.rule(
            "Busy(t, r) <- EXISTS a. EXISTS b. "
            "(Perform(a, b, r) & a <= t & t <= b)"
        )
        assert_same_idb(program, db)

    def test_program_with_negation(self):
        db = edge_db(2, n_nodes=4)
        program = Program.from_text(
            "declare Reach(t:T, src:D, dst:D)\n"
            "declare Idle(t:T, src:D, dst:D)\n"
            "Reach(t, x, y) <- Edge(t, x, y)\n"
            "Reach(t, x, z) <- EXISTS s. EXISTS u. (Reach(s, x, u) "
            "& Edge(t, u, z) & s <= t & t <= s + 3)\n"
            "Idle(t, x, y) <- Edge(t, x, y) & ~Reach(t, y, x)\n"
        )
        assert_same_idb(program, db)

    def test_constants_in_heads(self):
        db = edge_db(3, n_nodes=3, n_batches=2)
        program = Program.from_text(
            'declare Tagged(t:T, label:D)\n'
            'Tagged(t, "seen") <- EXISTS x. EXISTS y. Edge(t, x, y)\n'
        )
        assert_same_idb(program, db)

    def test_empty_edb(self):
        db = Database()
        db.create("Edge", temporal=["t"], data=["src", "dst"])
        assert_same_idb(reachability_program(3), db)

    @pytest.mark.parametrize("seed", range(5))
    def test_seeded_workloads(self, seed):
        rng = random.Random(seed)
        db = edge_db(
            seed,
            n_nodes=rng.randint(3, 6),
            n_batches=rng.randint(2, 4),
        )
        assert_same_idb(reachability_program(rng.randint(2, 5)), db)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        window=st.integers(2, 5),
        n_nodes=st.integers(3, 6),
    )
    def test_property_seminaive_equals_naive(self, seed, window, n_nodes):
        db = edge_db(seed, n_nodes=n_nodes, n_batches=3)
        assert_same_idb(reachability_program(window), db)

    def test_env_flips_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEMINAIVE", "0")
        assert default_strategy() == "naive"
        monkeypatch.delenv("REPRO_SEMINAIVE")
        assert default_strategy() == "seminaive"

    def test_unknown_strategy_rejected(self):
        from repro.core.errors import ReproValueError

        with pytest.raises(ReproValueError):
            reachability_program(3).evaluate(edge_db(0), strategy="eager")


class TestDifferentiation:
    SCHEMAS = {
        "P": None,
        "Q": None,
    }

    def _body(self, text: str):
        from repro.core.relations import Schema

        schemas = {
            "P": Schema.make(temporal=["t"]),
            "Q": Schema.make(temporal=["t"]),
        }
        return parse_query(text, schemas)

    def test_one_delta_query_per_positive_occurrence(self):
        body = self._body("P(t) & Q(t)")
        deltas = differentiate(body, {"P": object(), "Q": object()})
        assert deltas is not None and len(deltas) == 2

    def test_substitution_redirects_one_atom(self):
        body = self._body("P(t) & P(t)")
        deltas = differentiate(body, {"P": object()})
        assert len(deltas) == 2
        for query in deltas:
            names = [occ.name for occ in occurrences(query)]
            assert names.count(delta_name("P")) == 1
            assert names.count("P") == 1

    def test_negated_occurrence_not_differentiated(self):
        body = self._body("P(t) & ~Q(t)")
        deltas = differentiate(body, {"Q": object()})
        assert deltas == []

    def test_brittle_positive_occurrence_forces_fallback(self):
        # A positive occurrence under double negation distributes over
        # neither unions nor deltas: the whole body must be re-run.
        body = self._body("P(t) & ~(~Q(t))")
        assert differentiate(body, {"Q": object()}) is None

    def test_forall_is_brittle(self):
        body = self._body("FORALL s. (Q(s) | P(t))")
        assert differentiate(body, {"Q": object()}) is None

    def test_untouched_body_is_skippable(self):
        body = self._body("P(t)")
        assert differentiate(body, {"Q": object()}) == []

    def test_occurrence_polarity(self):
        body = self._body("P(t) & ~Q(t)")
        by_name = {occ.name: occ for occ in occurrences(body)}
        assert not by_name["P"].negated and not by_name["P"].brittle
        assert by_name["Q"].negated and by_name["Q"].brittle


class TestRebindAcrossDatabases:
    def test_same_program_two_edb_shapes(self):
        # Binding is keyed to the schema mapping: evaluating one
        # Program against a database whose EDB schema differs must
        # re-parse the rule bodies, not silently reuse the stale parse.
        program = Program.from_text(
            "declare Out(t:T)\nOut(t) <- EXISTS x. Ev(t, x)\n"
        )
        db1 = Database()
        db1.create("Ev", temporal=["t", "x"])
        db1.relation("Ev").add_tuple(["3", "4"], "", [])
        r1 = program.evaluate(db1).relation("Out")
        assert r1.snapshot(0, 10) == {(3,)}

        db2 = Database()
        db2.create("Ev", temporal=["t"], data=["x"])
        db2.relation("Ev").add_tuple(["7"], "", ["a"])
        r2 = program.evaluate(db2).relation("Out")
        assert r2.snapshot(0, 10) == {(7,)}

        # And back again: the first shape still evaluates correctly.
        assert program.evaluate(db1).relation("Out").snapshot(0, 10) == {
            (3,)
        }


class TestStratification:
    def test_negation_cycle_error_text(self):
        program = Program.from_text(
            "declare P(t:T)\n"
            "declare Q(t:T)\n"
            "P(t) <- Ev(t) & ~Q(t)\n"
            "Q(t) <- Ev(t) & ~P(t)\n"
        )
        db = Database()
        db.create("Ev", temporal=["t"])
        with pytest.raises(EvaluationError, match="not stratifiable"):
            program.evaluate(db)

    def test_self_negation_rejected(self):
        program = Program.from_text(
            "declare P(t:T)\nP(t) <- Ev(t) & ~P(t)\n"
        )
        db = Database()
        db.create("Ev", temporal=["t"])
        with pytest.raises(EvaluationError, match="cycle through negation"):
            program.evaluate(db)

    def test_negating_earlier_stratum_view(self):
        # A later stratum may negate an earlier stratum's IDB: the
        # negated view must be complete before the negation reads it.
        db = Database()
        db.create("Ev", temporal=["t"])
        db.relation("Ev").add_tuple(["5n"], "t >= 0", [])
        program = Program.from_text(
            "declare Covered(t:T)\n"
            "declare Gap(t:T)\n"
            "Covered(t) <- Ev(t)\n"
            "Gap(t) <- Tick(t) & ~Covered(t)\n"
        )
        db.create("Tick", temporal=["t"])
        db.relation("Tick").add_tuple(["n"], "t >= 0", [])
        strata = program.stratify(db.schemas())
        flat = [name for layer in strata for name in layer]
        assert flat.index("Covered") < flat.index("Gap")
        result = program.evaluate(db)
        got = result.relation("Gap").snapshot(0, 12)
        assert got == {(t,) for t in range(13) if t % 5 != 0}
        assert_same_idb(program, db)

    def test_stratum_order_deterministic(self):
        program_text = (
            "declare A(t:T)\n"
            "declare B(t:T)\n"
            "declare C(t:T)\n"
            "A(t) <- Ev(t)\n"
            "B(t) <- Ev(t) & ~A(t)\n"
            "C(t) <- B(t)\n"
        )
        db = Database()
        db.create("Ev", temporal=["t"])
        reference = Program.from_text(program_text).stratify(db.schemas())
        for _ in range(5):
            again = Program.from_text(program_text).stratify(db.schemas())
            assert again == reference
        assert reference == [["A"], ["B", "C"]]


class TestDirtySentinel:
    def test_dirty_is_identity_not_equality(self):
        # DIRTY is a sentinel compared with `is`; it must never compare
        # equal to a real delta relation.
        from repro.core.relations import GeneralizedRelation

        assert DIRTY is DIRTY
        assert DIRTY is not GeneralizedRelation.empty(EDGE_SCHEMA)
