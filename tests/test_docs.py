"""Documentation tests: every Python block in the docs must run.

Extracts fenced ``python`` code blocks from README.md and
docs/tutorial.md and executes them in order within one namespace per
file (later tutorial blocks build on earlier ones).  Comment-marked
shell/text blocks are skipped.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: pathlib.Path) -> list[str]:
    return _BLOCK_RE.findall(path.read_text())


@pytest.mark.parametrize("doc", ["README.md", "docs/tutorial.md"])
def test_doc_blocks_execute(doc):
    path = ROOT / doc
    blocks = python_blocks(path)
    assert blocks, f"{doc} has no python blocks?"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{doc}[block {index}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assert reports
            pytest.fail(f"{doc} block {index} failed: {exc}\n{block}")


def test_readme_mentions_every_subpackage():
    readme = (ROOT / "README.md").read_text()
    src = ROOT / "src" / "repro"
    for package in sorted(p.name for p in src.iterdir() if p.is_dir()):
        if package.startswith("__"):
            continue
        assert package in readme, f"README does not mention {package!r}"


def test_design_lists_every_benchmark():
    design = (ROOT / "DESIGN.md").read_text()
    benches = sorted(
        p.name
        for p in (ROOT / "benchmarks").glob("test_bench_*.py")
    )
    for bench in benches:
        assert bench in design, f"DESIGN.md does not index {bench}"


def test_experiments_covers_every_benchmark():
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    benches = sorted(
        p.name
        for p in (ROOT / "benchmarks").glob("test_bench_*.py")
    )
    for bench in benches:
        assert bench in experiments, f"EXPERIMENTS.md does not record {bench}"
