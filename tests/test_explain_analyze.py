"""EXPLAIN ANALYZE, the query directives, and the redesigned API.

The acceptance case: on the paper's Figure 1 / Example 2.4 train
schedule, EXPLAIN ANALYZE must return a span tree whose per-operator
structural counts agree with :mod:`repro.analysis.counters`.
"""

import json
import warnings

import pytest

import repro
import repro.api
from repro.analysis.counters import measure_binary, measure_unary
from repro.core import algebra
from repro.core.errors import (
    ConstraintError,
    EvaluationError,
    NormalizationLimitError,
    ParseError,
    ReproError,
    ReproTypeError,
    ReproValueError,
    SchemaError,
)
from repro.core.relations import GeneralizedRelation, Schema
from repro.obs import TraceRecorder, tracing
from repro.query import (
    Database,
    Directive,
    QueryTrace,
    explain_analyze,
    split_directive,
)
from repro.query.explain import PlanNode


def trains_db() -> Database:
    db = Database()
    db.create("Train", temporal=["dep", "arr"], data=["service"])
    trains = db.relation("Train")
    trains.add_tuple(["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"])
    trains.add_tuple(["46 + 60n", "110 + 60n"], "dep = arr - 64", ["express"])
    return db


TRAIN_QUERY = 'EXISTS d. EXISTS a. Train(d, a, "slow") & d >= 60'


class TestCountsMatchAnalysisCounters:
    """Span attributes == the structural CostReport, same operation."""

    def test_binary_operation(self):
        trains = trains_db().relation("Train")
        with tracing(TraceRecorder()) as rec:
            result, report = measure_binary(algebra.intersect, trains, trains)
        sp = rec.root
        assert sp.name == "algebra.intersect"
        assert sp.attrs["input_tuples"] == report.input_tuples
        assert sp.attrs["output_tuples"] == report.output_tuples
        assert sp.attrs["schema_width"] == report.schema_width
        assert sp.attrs["pairs_examined"] == report.counters["pairs_examined"]
        assert report.output_tuples == len(result)

    def test_unary_operation(self):
        trains = trains_db().relation("Train")
        with tracing(TraceRecorder()) as rec:
            result, report = measure_unary(
                lambda r: algebra.project(r, ["dep"]), trains
            )
        sp = rec.root
        assert sp.name == "algebra.project"
        assert sp.attrs["input_tuples"] == report.input_tuples
        assert sp.attrs["output_tuples"] == report.output_tuples == len(result)

    def test_query_span_counts(self):
        db = trains_db()
        trace = db.trace(TRAIN_QUERY)
        root = trace.root
        assert root.name == "query.evaluate"
        assert root.attrs["out_tuples"] == len(trace.result)
        # Every query node's recorded out_tuples is consistent with the
        # algebra spans that produced it.
        for sp in root.walk():
            if sp.name.startswith("algebra."):
                assert sp.attrs["output_tuples"] >= 0
            if sp.name.startswith("query.") and "out_tuples" in sp.attrs:
                assert sp.attrs["out_tuples"] >= 0


class TestExplainAnalyze:
    def test_returns_query_trace(self):
        db = trains_db()
        trace = explain_analyze(db, TRAIN_QUERY)
        assert isinstance(trace, QueryTrace)
        assert not trace.result.is_empty()

    def test_annotated_plan(self):
        trace = trains_db().trace(TRAIN_QUERY)
        plan = trace.plan()
        assert isinstance(plan, PlanNode)
        assert "wall_ms" in plan.attrs
        text = str(plan)
        assert "ms]" in text
        # The join node reports the algebra operations it ran.
        ops = []
        stack = [plan]
        while stack:
            node = stack.pop()
            ops.extend(op["op"] for op in node.attrs.get("ops", ()))
            stack.extend(node.children)
        assert ops, "no algebra summaries attached to any plan node"

    def test_plan_only_matches_plain_explain(self):
        # Pinned to the naive pipeline: with the optimizer on,
        # db.explain returns a PlanReport instead of this legacy shape.
        db = trains_db()
        analyzed = db.trace(TRAIN_QUERY, optimize=False).plan_only()
        plain = db.explain(TRAIN_QUERY, optimize=False)

        def shape(node):
            return (
                node.operator,
                node.out_tuples,
                tuple(shape(c) for c in node.children),
            )

        assert shape(analyzed) == shape(plain)
        assert not analyzed.attrs

    def test_flamegraph_and_json(self):
        trace = trains_db().trace(TRAIN_QUERY)
        text = trace.flamegraph()
        assert "query.evaluate" in text
        doc = json.loads(trace.to_json())
        assert doc["trace"]["name"] == "query.evaluate"
        assert doc["query"]


class TestDirectives:
    def test_split_plain(self):
        assert split_directive("Even(t)") == (Directive.QUERY, "Even(t)")

    def test_split_explain(self):
        directive, rest = split_directive("EXPLAIN Even(t)")
        assert directive is Directive.EXPLAIN
        assert rest == "Even(t)"

    def test_split_explain_analyze(self):
        directive, rest = split_directive("explain  analyze Even(t)")
        assert directive is Directive.EXPLAIN_ANALYZE
        assert rest == "Even(t)"

    def test_explain_named_predicate_untouched(self):
        # A relation actually called Explain must stay queryable.
        directive, rest = split_directive("Explain(t)")
        assert directive is Directive.QUERY
        assert rest == "Explain(t)"

    def test_query_routes_directives(self):
        db = trains_db()
        assert isinstance(
            db.query("EXPLAIN " + TRAIN_QUERY, optimize=False), PlanNode
        )
        assert isinstance(db.query("EXPLAIN ANALYZE " + TRAIN_QUERY), QueryTrace)
        plain = db.query(TRAIN_QUERY)
        assert isinstance(plain, GeneralizedRelation)


class TestDatabaseCreateRedesign:
    def test_keyword_form(self):
        db = Database()
        rel = db.create("R", temporal=["t"], data=["d"])
        assert list(rel.schema.temporal_names) == ["t"]
        assert list(rel.schema.data_names) == ["d"]

    def test_positional_form_deprecated(self):
        db = Database()
        with pytest.warns(DeprecationWarning):
            rel = db.create("R", ["t1", "t2"], ["d"])
        assert len(rel.schema) == 3

    def test_keyword_form_warns_nothing(self):
        db = Database()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            db.create("R", temporal=["t"])

    def test_conflicting_forms_rejected(self):
        db = Database()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                db.create("R", ["t"], temporal=["u"])

    def test_too_many_positionals_rejected(self):
        db = Database()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                db.create("R", ["t"], ["d"], ["x"])


class TestErrorHierarchy:
    def test_every_library_error_is_repro_error(self):
        for exc in (
            ConstraintError,
            EvaluationError,
            NormalizationLimitError,
            ParseError,
            SchemaError,
            ReproTypeError,
            ReproValueError,
        ):
            assert issubclass(exc, ReproError)

    def test_dual_inheritance(self):
        assert issubclass(ReproValueError, ValueError)
        assert issubclass(ReproTypeError, TypeError)

    def test_raise_sites_use_hierarchy(self):
        from repro.core.lrp import LRP

        with pytest.raises(ReproError):
            LRP(offset=0, period=-1)
        with pytest.raises(ValueError):  # old handlers keep working
            LRP(offset=0, period=-1)

    def test_parse_errors_catchable_at_base(self):
        db = trains_db()
        with pytest.raises(ReproError):
            db.ask("Train(")


class TestApiFacade:
    def test_all_exports_resolve(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_facade_covers_the_quickstart_surface(self):
        for name in (
            "Database",
            "GeneralizedRelation",
            "Schema",
            "QueryTrace",
            "explain",
            "explain_analyze",
            "tracing",
            "TraceRecorder",
            "metrics",
            "render_flamegraph",
            "ReproError",
        ):
            assert name in repro.api.__all__, name

    def test_top_level_exports_errors(self):
        assert repro.ReproValueError is ReproValueError
        assert "ReproTypeError" in repro.__all__
