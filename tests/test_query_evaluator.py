"""Tests for first-order query evaluation (Section 4, Theorem 4.1)."""

import itertools

import pytest

from repro.core.errors import EvaluationError
from repro.query import Database


def ticks_db() -> Database:
    db = Database()
    db.create("Even", temporal=["t"])
    db.relation("Even").add_tuple(["2n"])
    db.create("Third", temporal=["t"])
    db.relation("Third").add_tuple(["3n"])
    return db


def robots_db() -> Database:
    """The paper's Table 1 database."""
    db = Database()
    db.create("Perform", temporal=["t1", "t2"], data=["robot", "task"])
    perform = db.relation("Perform")
    perform.add_tuple(
        ["2 + 2n", "4 + 2n"], "t1 = t2 - 2 & t1 >= -1", ["robot1", "task1"]
    )
    perform.add_tuple(
        ["6 + 10n", "7 + 10n"], "t1 = t2 - 1 & t1 >= 10", ["robot2", "task2"]
    )
    perform.add_tuple(["10n", "3 + 10n"], "t1 = t2 - 3", ["robot2", "task1"])
    return db


class TestAtomicQueries:
    def test_open_atom_returns_relation(self):
        db = ticks_db()
        res = db.query("Even(t)")
        assert res.schema.names == ("t",)
        assert res.contains([4]) and not res.contains([3])

    def test_constant_argument(self):
        db = ticks_db()
        assert db.ask("Even(4)")
        assert not db.ask("Even(5)")

    def test_successor_in_argument(self):
        db = ticks_db()
        res = db.query("Even(t + 1)")
        # t + 1 even  <=>  t odd
        assert res.contains([3]) and not res.contains([4])

    def test_repeated_variable(self):
        db = Database()
        db.create("Pair", temporal=["a", "b"])
        db.relation("Pair").add_tuple(["2n", "2n"])
        res = db.query("Pair(t, t)")
        assert res.contains([4]) and not res.contains([3])

    def test_repeated_variable_with_offsets(self):
        db = Database()
        db.create("Pair", temporal=["a", "b"])
        db.relation("Pair").add_tuple(["n", "n"], "a = b - 5")
        res = db.query("Pair(t, t + 5)")
        assert res.contains([0]) and res.contains([7])
        empty = db.query("Pair(t, t + 4)")
        assert empty.is_empty()

    def test_comparison_atoms(self):
        db = ticks_db()
        assert db.ask("EXISTS t. Even(t) & t >= 100")
        assert db.ask("3 <= 4") and not db.ask("4 < 4")

    def test_unknown_predicate(self):
        db = ticks_db()
        from repro.query.ast import Pred, TempVar

        with pytest.raises(EvaluationError):
            db.query(Pred("Nope", (TempVar("t"),)))


class TestBooleanStructure:
    def test_conjunction_is_intersection(self):
        db = ticks_db()
        res = db.query("Even(t) & Third(t)")
        assert res.contains([6]) and not res.contains([2])

    def test_disjunction_is_union(self):
        db = ticks_db()
        res = db.query("Even(t) | Third(t)")
        assert res.contains([2]) and res.contains([3])
        assert not res.contains([1])

    def test_negation_is_complement(self):
        db = ticks_db()
        res = db.query("~Even(t)")
        assert res.contains([3]) and not res.contains([4])

    def test_or_aligns_different_variables(self):
        db = ticks_db()
        res = db.query("Even(t) | Third(u)")
        assert res.schema.names == ("t", "u")
        assert res.contains([2, 1])  # left disjunct, u universal
        assert res.contains([1, 3])  # right disjunct, t universal
        assert not res.contains([1, 1])

    def test_implication(self):
        db = ticks_db()
        # every multiple of 6 is even
        assert db.ask("FORALL t. (Even(t) & Third(t)) -> Even(t)")
        assert not db.ask("FORALL t. Third(t) -> Even(t)")


class TestQuantifiers:
    def test_exists_projects(self):
        db = Database()
        db.create("Pair", temporal=["a", "b"])
        db.relation("Pair").add_tuple(["2n", "3n"], "a <= b")
        res = db.query("EXISTS b. Pair(a, b)")
        assert res.schema.names == ("a",)
        assert res.contains([2])

    def test_exists_over_infinite_domain(self):
        """Quantification genuinely ranges over all of Z."""
        db = ticks_db()
        assert db.ask("EXISTS t. Even(t) & t >= 1000000")
        assert db.ask("EXISTS t. Even(t) & t <= -1000000")

    def test_forall_true_statement(self):
        db = ticks_db()
        # every even time has an even successor's successor
        assert db.ask("FORALL t. Even(t) -> Even(t + 2)")
        assert not db.ask("FORALL t. Even(t) -> Even(t + 1)")

    def test_forall_over_z_is_false_for_bounded(self):
        db = ticks_db()
        assert not db.ask("FORALL t. Even(t)")
        assert db.ask("FORALL t. Even(t) | ~Even(t)")

    def test_vacuous_exists(self):
        db = ticks_db()
        assert db.ask("EXISTS u. EXISTS t. Even(t)")

    def test_ask_requires_closed(self):
        db = ticks_db()
        with pytest.raises(EvaluationError):
            db.ask("Even(t)")

    def test_data_quantification(self):
        db = robots_db()
        assert db.ask('EXISTS r. EXISTS t1. EXISTS t2. Perform(t1, t2, r, "task2")')
        assert not db.ask(
            'EXISTS r. EXISTS t1. EXISTS t2. Perform(t1, t2, r, "task9")'
        )


class TestRobotQueries:
    """Queries over the paper's Table 1."""

    def test_who_performs_task2(self):
        db = robots_db()
        res = db.query('EXISTS t1. EXISTS t2. Perform(t1, t2, r, "task2")')
        assert res.contains([], ["robot2"])
        assert not res.contains([], ["robot1"])

    def test_start_times_of_task2(self):
        db = robots_db()
        res = db.query('EXISTS t2. EXISTS r. Perform(t, t2, r, "task2")')
        points = sorted(x for (x,) in res.snapshot(0, 40))
        assert points == [16, 26, 36]

    def test_robot1_always_busy_with_task1(self):
        db = robots_db()
        assert db.ask(
            'FORALL t1. FORALL t2. FORALL k. '
            '(Perform(t1, t2, "robot1", k)) -> k = "task1"'
        )

    def test_example_4_1(self):
        """The paper's Example 4.1 formula evaluates (to false on Table 1:
        robot2's task2 intervals have length 1 < 5, so the antecedent is
        never satisfied, making the implication vacuously true)."""
        db = robots_db()
        text = """
        EXISTS x. EXISTS y. EXISTS t1. EXISTS t2.
        FORALL t3. FORALL t4. FORALL z.
          (Perform(t1, t2, x, "task2")
             & t1 <= t3 & t3 <= t4 & t4 <= t2 & t1 + 5 <= t2)
          -> ~Perform(t3, t4, y, z)
        """
        assert db.ask(text)

    def test_example_4_1_with_long_task(self):
        """Make the antecedent satisfiable: add a robot3 doing task2 for
        6 time units while robot1 works inside that window; the formula
        still holds because there exists a robot (robot3 vs. a y choice)
        ... and fails when every robot overlaps."""
        db = robots_db()
        db.relation("Perform").add_tuple(
            ["20n", "6 + 20n"], "t1 = t2 - 6", ["robot3", "task2"]
        )
        text = """
        EXISTS x. EXISTS y. EXISTS t1. EXISTS t2.
        FORALL t3. FORALL t4. FORALL z.
          (Perform(t1, t2, x, "task2")
             & t1 <= t3 & t3 <= t4 & t4 <= t2 & t1 + 5 <= t2)
          -> ~Perform(t3, t4, y, z)
        """
        # robot1 performs task1 on [2,4], [4,6] ... inside [0,6]; but the
        # quantifier choice y = robot2 works: robot2's task1 runs on
        # [10n, 10n+3] which intersects [0, 6] at [0, 3] — and its task2
        # at [16, 17]... we need SOME y never performing inside [t1,t2].
        # With x = robot3, t1 = 20, t2 = 26: robot2 task1 covers [20, 23]
        # and robot1 covers [20, 22] etc.  Check the engine's verdict
        # against brute-force reasoning below.
        assert db.ask(text) == self._brute_force_4_1(db)

    @staticmethod
    def _brute_force_4_1(db) -> bool:
        """Windowed reference evaluation of Example 4.1.

        The periods involved divide 20, so if a witness (x, t1, t2)
        exists at all, one exists with t1 in a single period window;
        checking [-40, 40] is exhaustive for this database.
        """
        perform = db.relation("Perform")
        lo, hi = -40, 40
        snapshot = perform.snapshot(lo - 20, hi + 20)
        robots = {"robot1", "robot2", "robot3"}
        busy = {(t3, t4, y) for (t3, t4, y, _z) in snapshot}
        task2 = {
            (t1, t2, x) for (t1, t2, x, z) in snapshot if z == "task2"
        }
        for t1 in range(lo, hi):
            for t2 in range(t1 + 5, hi):
                if not any((t1, t2, x) in task2 for x in robots):
                    continue
                for y in robots:
                    if not any(
                        (t3, t4, y) in busy
                        for t3 in range(t1, t2 + 1)
                        for t4 in range(t3, t2 + 1)
                    ):
                        return True
        return False


class TestDataEquality:
    def test_var_const(self):
        db = robots_db()
        res = db.query(
            'EXISTS t1. EXISTS t2. EXISTS k. '
            'Perform(t1, t2, r, k) & k = "task2"'
        )
        assert res.contains([], ["robot2"]) and not res.contains([], ["robot1"])

    def test_var_var(self):
        db = Database()
        db.create("P", data=["a"])
        db.relation("P").add_tuple([], data=["x"])
        db.create("Q", data=["b"])
        db.relation("Q").add_tuple([], data=["x"])
        db.relation("Q").add_tuple([], data=["y"])
        res = db.query("P(a) & Q(b) & a = b")
        assert res.contains([], ["x", "x"])
        assert not res.contains([], ["x", "y"])


class TestDatabaseCatalog:
    def test_create_register_drop(self):
        db = Database()
        db.create("R", temporal=["t"])
        assert "R" in db and db.names == ("R",)
        with pytest.raises(Exception):
            db.create("R", temporal=["t"])
        db.drop("R")
        assert "R" not in db
        with pytest.raises(EvaluationError):
            db.relation("R")
        with pytest.raises(EvaluationError):
            db.drop("R")

    def test_active_domain(self):
        db = robots_db()
        assert "robot1" in db.active_data_domain()

    def test_repr(self):
        db = ticks_db()
        assert "Even" in repr(db)
