"""Tests for the unified metrics registry (`repro.obs.metrics`)."""

import pytest

from repro.analysis.counters import metrics_registry, metrics_snapshot
from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema
from repro.obs import TraceRecorder, tracing
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_metrics,
)


def small_relation() -> GeneralizedRelation:
    rel = GeneralizedRelation.empty(Schema.make(temporal=["t"]))
    rel.add_tuple(["2 + 6n"])
    rel.add_tuple(["1 + 4n"])
    return rel


class TestPrimitives:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge(self):
        g = Gauge("depth")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2

    def test_histogram_summary(self):
        h = Histogram("ms")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0
        assert h.quantile(0.5) == pytest.approx(2.0, abs=1.0)

    def test_histogram_empty(self):
        h = Histogram("ms")
        assert h.quantile(0.5) is None
        assert h.mean is None
        assert h.summary()["count"] == 0

    def test_histogram_quantile_bounds(self):
        h = Histogram("ms")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_reservoir_deterministic(self):
        # Counts stay exact past the reservoir; quantiles come from the
        # deterministic first-N reservoir, so two equal runs agree.
        a, b = Histogram("a"), Histogram("b")
        for i in range(10_000):
            a.observe(float(i))
            b.observe(float(i))
        assert a.summary() == b.summary()
        assert a.summary()["count"] == 10_000


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(2)
        reg.gauge("depth").set(1)
        reg.histogram("ms").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["ops"] == 2
        assert snap["gauges"]["depth"] == 1
        assert snap["histograms"]["ms"]["count"] == 1

    def test_collector_contributions(self):
        reg = MetricsRegistry()
        reg.add_collector(lambda: {"counters": {"external": 7}})
        assert reg.snapshot()["counters"]["external"] == 7

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc()
        reg.reset()
        assert reg.snapshot()["counters"].get("ops", 0) == 0


class TestGlobalRegistry:
    def test_analysis_counters_reexports_registry(self):
        assert metrics_registry() is get_registry()

    def test_perf_counters_folded_in(self):
        reset_metrics()
        rel = small_relation()
        algebra.intersect(rel, rel)
        snap = metrics_snapshot()
        perf_keys = [k for k in snap["counters"] if k.startswith("perf.")]
        assert perf_keys, "perf collector contributed nothing"

    def test_cache_stats_folded_in(self):
        rel = small_relation()
        algebra.intersect(rel, rel)
        snap = metrics_snapshot()
        cache_keys = [k for k in snap["counters"] if k.startswith("cache.")]
        gauge_keys = [k for k in snap["gauges"] if k.startswith("cache.")]
        assert cache_keys or gauge_keys

    def test_span_histograms_recorded(self):
        reset_metrics()
        rel = small_relation()
        with tracing(TraceRecorder()):
            algebra.union(rel, rel)
        snap = metrics_snapshot()
        assert "span.algebra.union.ms" in snap["histograms"]
        assert snap["histograms"]["span.algebra.union.ms"]["count"] >= 1

    def test_histograms_optional_per_recorder(self):
        reset_metrics()
        rel = small_relation()
        with tracing(TraceRecorder(record_histograms=False)):
            algebra.union(rel, rel)
        snap = metrics_snapshot()
        # The instrument may exist from earlier traced runs (reset keeps
        # registered instruments), but this run observed nothing.
        recorded = snap["histograms"].get("span.algebra.union.ms")
        assert recorded is None or recorded["count"] == 0
