"""Tests for the optimization layer (``repro.perf``).

Two pillars:

* unit tests for the pieces — LRU cache semantics, incremental closure
  against Floyd–Warshall, closure-state-preserving copies, prefilter
  soundness, semantic deduplication;
* differential equivalence — every algebra operation computed with all
  optimizations on must denote the same point set (and, for
  intersection/join, the same tuple list) as the naive configuration,
  across 150+ seeded random cases.
"""

from __future__ import annotations

import random

import pytest

from repro.core import algebra
from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.perf import prefilter
from repro.perf.cache import LRUCache, cache_stats, reset_caches
from repro.perf.config import (
    PERF_COUNTERS,
    counters_snapshot,
    get_config,
    overrides,
    reset_counters,
)
from tests.helpers import random_dbm, random_relation

NAIVE = dict(
    cache_enabled=False,
    prefilter_enabled=False,
    incremental_enabled=False,
    workers=0,
)
OPTIMIZED = dict(
    cache_enabled=True,
    prefilter_enabled=True,
    incremental_enabled=True,
    workers=0,
)


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_overwrite_updates_value(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("a", 99)
        assert cache.get("a") == 99
        assert len(cache) == 1

    def test_stats_track_hits_misses_evictions(self):
        cache = LRUCache(maxsize=1)
        cache.get("x")  # miss
        cache.put("x", 1)
        cache.get("x")  # hit
        cache.put("y", 2)  # evicts x
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["size"] == 1
        assert stats["maxsize"] == 1


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


class TestConfig:
    def test_overrides_restores_previous_values(self):
        before = get_config()
        with overrides(workers=7, prefilter_enabled=False):
            inner = get_config()
            assert inner.workers == 7
            assert not inner.prefilter_enabled
        assert get_config() == before

    def test_overrides_nest(self):
        with overrides(cache_size=32):
            with overrides(cache_size=16):
                assert get_config().cache_size == 16
            assert get_config().cache_size == 32

    def test_disabling_cache_disables_lookups(self):
        with overrides(cache_enabled=False):
            from repro.perf.cache import closure_cache, normalize_cache

            assert closure_cache() is None
            assert normalize_cache() is None


# ----------------------------------------------------------------------
# incremental closure vs Floyd–Warshall
# ----------------------------------------------------------------------


def _matrix(dbm: DBM) -> list[list]:
    return [row[:] for row in dbm._b]


class TestIncrementalClosure:
    @pytest.mark.parametrize("seed", range(60))
    def test_incremental_matches_full_closure(self, seed):
        """Adding bounds to a closed DBM then re-closing must equal the
        from-scratch Floyd–Warshall closure of the same written system."""
        rng = random.Random(seed)
        arity = rng.randint(1, 4)
        base = random_dbm(rng, arity, n_constraints=rng.randint(0, 4))
        with overrides(**NAIVE):
            reference = base.copy()
            ref_sat = reference.close()
        with overrides(cache_enabled=False, incremental_enabled=True):
            subject = base.copy()
            subject.close()
            # now add a handful of extra bounds to the *closed* matrix —
            # exactly the incremental path's precondition
            extra = random_dbm(rng, arity, n_constraints=rng.randint(1, 3))
            full = base.copy()
            for i, j, bound in extra.iter_bounds():
                args = (i, j, bound)
                if i >= 0 and j >= 0:
                    subject.add_difference(*args)
                    full.add_difference(*args)
                elif j < 0:
                    subject.add_upper(i, bound)
                    full.add_upper(i, bound)
                else:
                    subject.add_lower(j, -bound)
                    full.add_lower(j, -bound)
            inc_sat = subject.close()
        with overrides(**NAIVE):
            full_sat = full.close()
        assert inc_sat == full_sat
        if inc_sat:
            assert _matrix(subject) == _matrix(full)
        assert ref_sat == base.copy().close()

    def test_incremental_detects_unsatisfiable(self):
        dbm = DBM(2)
        dbm.add_lower(0, 5)
        with overrides(cache_enabled=False, incremental_enabled=True):
            assert dbm.close()
            dbm.add_upper(0, 3)  # contradicts X0 >= 5
            assert not dbm.close()

    def test_close_is_idempotent(self):
        rng = random.Random(7)
        dbm = random_dbm(rng, 3, n_constraints=4)
        assert dbm.close() == dbm.close()
        once = _matrix(dbm)
        dbm.close()
        assert _matrix(dbm) == once


class TestClosurePreservingOps:
    def test_copy_preserves_closure_state(self):
        dbm = DBM(2)
        dbm.add_upper(0, 5)
        dbm.close()
        clone = dbm.copy()
        assert clone._closed
        assert clone.close()
        assert _matrix(clone) == _matrix(dbm)

    def test_copy_preserves_dirty_edges(self):
        dbm = DBM(2)
        dbm.add_upper(0, 5)
        dbm.close()
        dbm.add_lower(1, 1)
        clone = dbm.copy()
        assert not clone._closed
        assert clone._dirty == dbm._dirty
        assert clone.close() == dbm.copy().close()

    def test_extend_preserves_closure(self):
        dbm = DBM(2)
        dbm.add_upper(0, 5)
        dbm.add_lower(1, -3)
        dbm.close()
        wider = dbm.extend(2)
        assert wider._closed
        assert wider.size == 4
        assert wider.close()


# ----------------------------------------------------------------------
# closure interning cache
# ----------------------------------------------------------------------


class TestClosureCache:
    def test_identical_written_systems_hit_the_cache(self):
        with overrides(cache_enabled=True):
            reset_caches()
            reset_counters()

            def build():
                d = DBM(2)
                d.add_upper(0, 9)
                d.add_lower(1, 2)
                d.add_difference(0, 1, 4)
                # defeat dirty-tracking so the cacheable full path runs
                d._dirty = None
                return d

            first = build()
            assert first.close()
            second = build()
            assert second.close()
            counts = counters_snapshot()
            assert counts.get("closure_cache_hit", 0) >= 1
            assert _matrix(first) == _matrix(second)

    def test_cached_result_matches_uncached(self):
        rng = random.Random(21)
        for _ in range(30):
            base = random_dbm(rng, 3, n_constraints=4)
            base._dirty = None
            with overrides(cache_enabled=True):
                reset_caches()
                cached = base.copy()
                cached._dirty = None
                cached.close()  # populate
                warm = base.copy()
                warm._dirty = None
                warm_sat = warm.close()  # hit
            with overrides(**NAIVE):
                naive = base.copy()
                naive_sat = naive.close()
            assert warm_sat == naive_sat
            if warm_sat:
                assert _matrix(warm) == _matrix(naive)

    def test_tiny_cache_stays_correct_under_eviction(self):
        rng = random.Random(5)
        systems = [random_dbm(rng, 2, n_constraints=3) for _ in range(12)]
        with overrides(**NAIVE):
            expected = []
            for system in systems:
                naive = system.copy()
                expected.append((naive.close(), _matrix(naive)))
        with overrides(cache_enabled=True, cache_size=2):
            reset_caches()
            for _ in range(2):  # second sweep churns the 2-entry cache
                for system, (exp_sat, exp_matrix) in zip(systems, expected):
                    probe = system.copy()
                    probe._dirty = None
                    assert probe.close() == exp_sat
                    if exp_sat:
                        assert _matrix(probe) == exp_matrix
            assert cache_stats()["closure"]["evictions"] > 0


# ----------------------------------------------------------------------
# prefilter soundness
# ----------------------------------------------------------------------


class TestPrefilters:
    def test_lrp_residue_filter_agrees_with_crt(self):
        rng = random.Random(11)
        for _ in range(300):
            a = LRP.make(rng.randint(-8, 8), rng.choice([0, 1, 2, 3, 4, 6]))
            b = LRP.make(rng.randint(-8, 8), rng.choice([0, 1, 2, 3, 4, 6]))
            compatible = prefilter.lrp_pair_compatible(a, b)
            assert compatible == (a.intersect(b) is not None)

    def test_interval_filter_never_rejects_satisfiable_pairs(self):
        rng = random.Random(13)
        for _ in range(200):
            d1 = random_dbm(rng, 2, n_constraints=3)
            d2 = random_dbm(rng, 2, n_constraints=3)
            _, sat1 = prefilter.closed_probe(d1)
            _, sat2 = prefilter.closed_probe(d2)
            if not (sat1 and sat2):
                continue
            closed1, _ = prefilter.closed_probe(d1)
            closed2, _ = prefilter.closed_probe(d2)
            if prefilter.intervals_compatible(closed1, closed2):
                continue
            # rejected: the conjunction must genuinely be unsatisfiable
            assert not d1.intersect(d2).close()

    def test_added_bound_filter_is_exact(self):
        rng = random.Random(17)
        checked = 0
        for _ in range(200):
            base = random_dbm(rng, 2, n_constraints=3)
            closed, sat = prefilter.closed_probe(base)
            if not sat:
                continue
            u, v = rng.choice([(0, 1), (1, 0), (0, -1), (-1, 0), (1, -1)])
            w = rng.randint(-10, 10)
            verdict = prefilter.added_bound_satisfiable(closed, u, v, w)
            probe = closed.copy()
            probe._set(u + 1, v + 1, w)  # _set keeps the tighter bound
            assert verdict == probe.close()
            checked += 1
        assert checked > 50


# ----------------------------------------------------------------------
# semantic deduplication
# ----------------------------------------------------------------------


def _tuple_of(lrps, bounds, arity=1):
    dbm = DBM(arity)
    for i, (lo, hi) in enumerate(bounds):
        if lo is not None:
            dbm.add_lower(i, lo)
        if hi is not None:
            dbm.add_upper(i, hi)
    return GeneralizedTuple(lrps=tuple(lrps), dbm=dbm)


class TestSemanticDedup:
    def test_redundant_bounds_collapse(self):
        """Same point set written two ways deduplicates to one tuple."""
        a = _tuple_of([LRP.make(0, 3)], [(0, 9)])
        b = _tuple_of([LRP.make(0, 3)], [(0, 9)])
        b.dbm.add_upper(0, 11)  # redundant: already X0 <= 9
        out = algebra._dedup([a, b])
        assert len(out) == 1

    def test_empty_tuples_are_dropped(self):
        empty = _tuple_of([LRP.make(0, 3)], [(5, 2)])  # 5 <= X0 <= 2
        alive = _tuple_of([LRP.make(1, 3)], [(0, 9)])
        out = algebra._dedup([empty, alive])
        assert out == [alive]

    def test_pinned_singleton_lrp_collapses_with_point(self):
        """[2 + 3n] with X0 = 5 denotes {5}, same as the point lrp [5]."""
        periodic = _tuple_of([LRP.make(2, 3)], [(5, 5)])
        point = _tuple_of([LRP.point(5)], [(5, 5)])
        assert periodic.semantic_key() == point.semantic_key()
        assert len(algebra._dedup([periodic, point])) == 1

    def test_different_sets_do_not_collapse(self):
        a = _tuple_of([LRP.make(0, 3)], [(0, 9)])
        b = _tuple_of([LRP.make(1, 3)], [(0, 9)])
        assert len(algebra._dedup([a, b])) == 2


# ----------------------------------------------------------------------
# differential equivalence: optimized vs naive (150 seeded cases)
# ----------------------------------------------------------------------

SCHEMA2 = Schema.make(temporal=["A", "B"])
WINDOW = (-10, 14)  # covers > lcm(1..4,6) so periodicity is exercised


def _keys(relation: GeneralizedRelation) -> set:
    return {t.canonical_key() for t in relation}


def _snap(relation: GeneralizedRelation):
    return relation.snapshot(*WINDOW)


@pytest.mark.parametrize("seed", range(50))
def test_equivalence_intersect_join_subtract(seed):
    """Three operations x 50 seeds = 150 differential cases.

    Intersection and join must produce the *same tuples* (prefilters and
    caches only skip provably-empty work); subtraction may factor the
    result differently, so it is compared on the denoted point sets.
    """
    rng = random.Random(1000 + seed)
    r1 = random_relation(rng, SCHEMA2, rng.randint(2, 4))
    r2 = random_relation(rng, SCHEMA2, rng.randint(2, 4))
    with overrides(**NAIVE):
        naive_meet = algebra.intersect(r1, r2)
        naive_join = algebra.join(r1, r2)
        naive_diff = algebra.subtract(r1, r2)
    with overrides(**OPTIMIZED):
        reset_caches()
        fast_meet = algebra.intersect(r1, r2)
        fast_join = algebra.join(r1, r2)
        fast_diff = algebra.subtract(r1, r2)
    assert _keys(fast_meet) == _keys(naive_meet)
    assert _keys(fast_join) == _keys(naive_join)
    assert _snap(fast_meet) == _snap(naive_meet)
    assert _snap(fast_diff) == _snap(naive_diff)


@pytest.mark.parametrize("seed", range(12))
def test_equivalence_complement_and_project(seed):
    rng = random.Random(2000 + seed)
    schema1 = Schema.make(temporal=["A"])
    small = random_relation(rng, schema1, rng.randint(1, 3))
    wide = random_relation(rng, SCHEMA2, rng.randint(2, 3))
    with overrides(**NAIVE):
        naive_comp = algebra.complement(small)
        naive_proj = algebra.project(wide, ["B"])
    with overrides(**OPTIMIZED):
        reset_caches()
        fast_comp = algebra.complement(small)
        fast_proj = algebra.project(wide, ["B"])
    assert _snap(fast_comp) == _snap(naive_comp)
    assert _snap(fast_proj) == _snap(naive_proj)


@pytest.mark.parametrize("seed", range(8))
def test_equivalence_survives_cache_eviction(seed):
    """A 4-entry cache under heavy churn must not change any answer."""
    rng = random.Random(3000 + seed)
    r1 = random_relation(rng, SCHEMA2, 3)
    r2 = random_relation(rng, SCHEMA2, 3)
    with overrides(**NAIVE):
        expected = algebra.subtract(r1, r2)
    with overrides(**dict(OPTIMIZED, cache_size=4)):
        reset_caches()
        got = algebra.subtract(r1, r2)
        assert cache_stats()["closure"]["maxsize"] == 4
    assert _snap(got) == _snap(expected)


def test_prefilter_counters_fire_on_disjoint_relations():
    """Residue-incompatible pairs must be rejected by the prefilter."""
    r1 = GeneralizedRelation.empty(SCHEMA2)
    r2 = GeneralizedRelation.empty(SCHEMA2)
    r1.add(_tuple_of([LRP.make(0, 4), LRP.make(0, 4)], [(0, 20), (0, 20)], 2))
    r2.add(_tuple_of([LRP.make(1, 4), LRP.make(1, 4)], [(0, 20), (0, 20)], 2))
    with overrides(**OPTIMIZED):
        reset_caches()
        reset_counters()
        out = algebra.intersect(r1, r2)
        assert len(out) == 0
        assert PERF_COUNTERS["prefilter_lrp_skip"] >= 1
