"""Integration tests for the serving layer: server, clients, protocol.

Every test drives a real ``ReproServer`` over TCP on an ephemeral
loopback port — no mocked transport — because the concurrency claims
(snapshot pinning across connections, group-committed concurrent
writers, abort isolation inside a commit group) only mean something
end to end.
"""

import asyncio
import threading

import pytest

from repro.core.errors import (
    EvaluationError,
    ParseError,
    ReproError,
    SchemaError,
    ServeError,
    StorageError,
)
from repro.serve import Client, ReproServer, SyncClient, protocol
from repro.serve.cli import serve_main


def _create(name: str) -> dict:
    return {"op": "create", "name": name, "temporal": ["t"], "data": []}


def _insert(name: str, offset: int, period: int = 10) -> dict:
    return {
        "op": "insert",
        "name": name,
        "lrps": [f"{offset} + {period}n"],
        "constraints": "t >= 0",
        "data": [],
    }


@pytest.fixture
def server():
    with ReproServer() as srv:
        yield srv


@pytest.fixture
def client(server):
    with SyncClient(port=server.port) as c:
        yield c


class TestBasicOps:
    def test_ping(self, client):
        payload = client.ping()
        assert payload["pong"] is True
        assert payload["protocol"] == protocol.PROTOCOL_VERSION
        assert payload["version"] == 0

    def test_commit_query_roundtrip(self, client):
        result = client.commit([_create("Ev"), _insert("Ev", 2)])
        assert result == {"version": 1, "records": 1}
        assert client.ask("EXISTS t. Ev(t) & t >= 12")
        rel = client.query("EXISTS t. Ev(t) & t >= 0")
        assert not rel.is_empty()
        fetched = client.relation("Ev")
        assert sorted(fetched.enumerate(0, 25)) == [(2,), (12,), (22,)]

    def test_info_and_names(self, client):
        client.commit([_create("Ev"), _insert("Ev", 1)])
        info = client.info()
        assert info["persistent"] is False
        assert info["relations"] == {"Ev": 1}
        assert client.names() == ["Ev"]

    def test_errors_keep_their_type_across_the_wire(self, client):
        client.commit([_create("Ev")])
        with pytest.raises(SchemaError):
            client.commit([_create("Ev")])
        with pytest.raises(EvaluationError):
            client.commit([_insert("Nope", 1)])
        with pytest.raises(ParseError):
            client.ask("EXISTS t. Unknown(t)")
        with pytest.raises(ReproError):
            client.relation("Nope")

    def test_protocol_errors(self, client):
        with pytest.raises(ServeError, match="unknown op"):
            client._call("frobnicate")
        with pytest.raises(ServeError, match="needs 'text'"):
            client._call("ask")
        with pytest.raises(ServeError, match="mutations"):
            client._call("commit", mutations="not-a-list")

    def test_aborted_txn_leaves_others_committed(self, server, client):
        client.commit([_create("Ev")])
        with pytest.raises(EvaluationError):
            client.commit([_insert("Ev", 1), _insert("Ghost", 2)])
        # the aborted transaction left no trace, the catalog still moves
        assert client.relation("Ev").is_empty()
        client.commit([_insert("Ev", 3)])
        assert len(client.relation("Ev")) == 1


class TestSnapshots:
    def test_pinned_connection_ignores_later_commits(self, server):
        with SyncClient(port=server.port) as a:
            a.commit([_create("Ev"), _insert("Ev", 0)])
            pinned = a.snapshot()
            with SyncClient(port=server.port) as b:
                b.commit([_insert("Ev", 5)])
                assert len(b.relation("Ev")) == 2
            assert len(a.relation("Ev")) == 1
            assert not a.ask("EXISTS t. Ev(t) & t = 5")
            assert a.info()["version"] == pinned
            released = a.release()
            assert released > pinned
            assert len(a.relation("Ev")) == 2

    def test_snapshot_repin_advances(self, client):
        client.commit([_create("Ev")])
        first = client.snapshot()
        client.commit([_insert("Ev", 1)])
        second = client.snapshot()
        assert second > first
        assert len(client.relation("Ev")) == 1


class TestConcurrentWriters:
    def test_concurrent_commits_all_land(self, tmp_path):
        root = str(tmp_path / "db")
        with ReproServer.open(root) as server:
            with SyncClient(port=server.port) as seed:
                seed.commit([_create("Ev")])
            results: dict[int, dict] = {}

            def writer(i: int) -> None:
                with SyncClient(port=server.port) as c:
                    results[i] = c.commit([_insert("Ev", 100 + i, 1000)])

            threads = [
                threading.Thread(target=writer, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            versions = sorted(r["version"] for r in results.values())
            assert versions == list(range(2, 10))  # distinct, monotone
        # every concurrently committed transaction is durable
        from repro.query.database import Database

        with Database.open(root, create=False) as db:
            assert len(db.relation("Ev")) == 8
            assert db.version == 9

    def test_served_root_is_single_writer(self, tmp_path):
        root = str(tmp_path / "db")
        with ReproServer.open(root) as server:
            with SyncClient(port=server.port) as c:
                c.ping()
            from repro.storage.engine import StorageEngine

            with pytest.raises(StorageError, match="locked by another"):
                StorageEngine.open(root)
        # released on server stop
        from repro.storage.engine import StorageEngine

        StorageEngine.open(root).close()


class TestAsyncClient:
    def test_async_roundtrip(self, server):
        async def main() -> None:
            async with await Client.connect(port=server.port) as c:
                assert (await c.ping())["pong"] is True
                await c.commit([_create("Ev"), _insert("Ev", 4)])
                assert await c.ask("EXISTS t. Ev(t) & t >= 4")
                pinned = await c.snapshot()
                rel = await c.relation("Ev")
                assert len(rel) == 1
                assert await c.release() == pinned
                assert await c.names() == ["Ev"]

        asyncio.run(main())


class TestServeCli:
    def test_ping_info_query(self, server, capsys):
        with SyncClient(port=server.port) as c:
            c.commit([_create("Ev"), _insert("Ev", 7)])
        port = str(server.port)
        assert serve_main(["ping", "--port", port]) == 0
        assert "pong" in capsys.readouterr().out
        assert serve_main(["info", "--port", port]) == 0
        out = capsys.readouterr().out
        assert "in-memory catalog @ version 1" in out
        assert "Ev: 1 generalized tuple(s)" in out
        assert serve_main(["ask", "--port", port,
                           "EXISTS t. Ev(t) & t >= 7"]) == 0
        assert "true" in capsys.readouterr().out
        assert serve_main(["query", "--port", port,
                           "EXISTS t. Ev(t) & t >= 0"]) == 0
        assert "generalized tuple(s)" in capsys.readouterr().out

    def test_connection_refused_is_clean(self, capsys):
        assert serve_main(["ping", "--port", "1"]) == 1
        assert "error:" in capsys.readouterr().out

    def test_start_requires_exactly_one_target(self, capsys):
        assert serve_main(["start"]) == 2
        assert "exactly one" in capsys.readouterr().out
