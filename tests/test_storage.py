"""Tests for text and JSON serialization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ParseError
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.storage import jsonio, textio

from tests.helpers import random_relation


def robots_text() -> str:
    return """
# The paper's Table 1.
relation Perform(t1:T, t2:T, robot:D, task:D)
[2 + 2n, 4 + 2n] : t1 = t2 - 2 & t1 >= -1 | robot1, task1
[6 + 10n, 7 + 10n] : t1 = t2 - 1 & t1 >= 10 | robot2, task2
[10n, 3 + 10n] : t1 = t2 - 3 | robot2, task1
"""


class TestTextFormat:
    def test_loads_table1(self):
        name, rel = textio.loads(robots_text())
        assert name == "Perform"
        assert len(rel) == 3
        assert rel.contains([2, 4], ["robot1", "task1"])
        assert rel.contains([16, 17], ["robot2", "task2"])

    def test_round_trip(self):
        _, rel = textio.loads(robots_text())
        dumped = textio.dumps(rel, name="Perform")
        name2, rel2 = textio.loads(dumped)
        assert name2 == "Perform"
        assert rel.snapshot(-5, 25) == rel2.snapshot(-5, 25)

    def test_no_constraints_no_data(self):
        text = "relation R(t:T)\n[2n]\n"
        _, rel = textio.loads(text)
        assert rel.contains([4]) and not rel.contains([3])

    def test_data_only_relation(self):
        text = 'relation L(name:D)\n[] | "hello, world"\n'
        _, rel = textio.loads(text)
        assert rel.contains([], ["hello, world"])

    def test_quoting_round_trip(self):
        r = GeneralizedRelation.empty(Schema.make(temporal=["t"], data=["d"]))
        r.add_tuple(["n"], data=["weird, value"])
        dumped = textio.dumps(r)
        _, back = textio.loads(dumped)
        assert back.contains([0], ["weird, value"])

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "nonsense",
            "relation R",
            "relation (t:T)",
            "relation R(t:X)",
            "relation R(t)",
            "relation R(t:T)\nnot a tuple",
            "relation R(t:T)\n[2n",
            "relation R(t:T)\n[2n] junk",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            textio.loads(bad)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        rel = random_relation(
            rng,
            Schema.make(temporal=["X1", "X2"], data=["who"]),
            3,
            data_choices=[("a",), ("b",)],
        )
        _, back = textio.loads(textio.dumps(rel))
        assert back.snapshot(-8, 8) == rel.snapshot(-8, 8)


class TestJsonFormat:
    def test_round_trip(self):
        _, rel = textio.loads(robots_text())
        back = jsonio.loads(jsonio.dumps(rel))
        assert back.schema == rel.schema
        assert back.snapshot(-5, 25) == rel.snapshot(-5, 25)

    def test_database_round_trip(self):
        _, rel = textio.loads(robots_text())
        other = relation(temporal=["t"])
        other.add_tuple(["3n"])
        text = jsonio.dump_database({"Perform": rel, "Tick": other})
        back = jsonio.load_database(text)
        assert set(back) == {"Perform", "Tick"}
        assert back["Tick"].contains([3])

    def test_malformed_payload(self):
        with pytest.raises(ParseError):
            jsonio.relation_from_dict({"schema": "nope"})
        with pytest.raises(ParseError):
            jsonio.relation_from_dict({"schema": [], "tuples": [{"bad": 1}]})

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_round_trip(self, seed):
        rng = random.Random(seed)
        rel = random_relation(
            rng, Schema.make(temporal=["X1", "X2", "X3"]), 3
        )
        back = jsonio.loads(jsonio.dumps(rel))
        assert back.snapshot(-6, 6) == rel.snapshot(-6, 6)

    def test_pretty_printing(self):
        r = relation(temporal=["t"])
        r.add_tuple(["2n"], "t >= 0")
        text = jsonio.dumps(r, indent=2)
        assert '"lrps"' in text and "\n" in text
