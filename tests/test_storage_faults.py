"""The crash-recovery matrix: every injection point × every workload.

This is the proof of the engine's atomicity claim: for a crash at
*any* fault point on the commit or compaction path, reopening the
database yields **exactly** the pre-commit or the post-commit state —
never a mixture, never a partial transaction.  States are compared as
finite-window point sets through two independent lenses: the symbolic
``GeneralizedRelation.snapshot`` and the materialized
:class:`repro.baseline.finite.FiniteRelation` oracle (the same
executable specification the differential fuzzer uses), so a recovery
bug cannot hide behind a serialization quirk.

Everything is seeded and counter-based (no timing, no randomness at
run time), so the whole matrix replays identically on every machine.
"""

import random

import pytest

from repro.baseline.finite import FiniteRelation
from repro.query.database import Database
from repro.storage import faults
from repro.testing import seeded_relation

WINDOW = (-40, 120)

#: Fault points on the commit path, with the torn-write fractions the
#: matrix exercises where supported.
COMMIT_FAULTS = [
    ("wal.append", 1, None),
    ("wal.append", 1, 0.0),
    ("wal.append", 1, 0.35),
    ("wal.append", 1, 0.85),
    ("wal.append", 2, 0.5),  # second record of a multi-record txn
    ("wal.commit", 1, None),
    ("wal.fsync", 1, None),
]

#: Fault points on the compaction path.
COMPACT_FAULTS = [
    ("snapshot.write", 1, None),
    ("snapshot.write", 1, 0.5),
    ("snapshot.fsync", 1, None),
    ("snapshot.rename", 1, None),
    ("manifest.write", 1, None),
    ("manifest.write", 1, 0.5),
    ("manifest.rename", 1, None),
    ("wal.reset", 1, None),
]


def observe(db: Database) -> dict[str, frozenset]:
    """The catalog as finite-window point sets, oracle-cross-checked.

    Each relation is enumerated symbolically *and* materialized through
    the finite baseline; the two must agree before the observation is
    trusted.
    """
    out = {}
    for name in db.names:
        relation = db.relation(name)
        symbolic = frozenset(relation.snapshot(*WINDOW))
        oracle = frozenset(
            FiniteRelation.materialize(relation, *WINDOW).rows
        )
        assert symbolic == oracle, (
            f"symbolic/oracle disagreement on {name!r}"
        )
        out[name] = symbolic
    return out


def crash(db: Database, operation) -> None:
    """Run ``operation`` expecting the armed fault to kill the engine."""
    with pytest.raises(faults.InjectedCrash):
        operation(db)
    db.close()


# ----------------------------------------------------------------------
# workloads: (pre-state builder, mutation) pairs
# ----------------------------------------------------------------------


def build_empty(db: Database) -> None:
    """Workload 1: the very first commit of a fresh database."""


def build_seeded(db: Database) -> None:
    """Workload 2/3 base: a committed multi-relation seeded catalog."""
    rng = random.Random(9001)
    for i in range(3):
        db.register(
            f"R{i}",
            seeded_relation(rng, temporal_arity=2, max_tuples=4, max_period=6),
        )
    db.create("Log", temporal=["t"], data=["tag"])
    db.relation("Log").add_tuple(["7n"], "t >= 0", ["boot"])
    db.commit()


def mutate_first_commit(db: Database) -> None:
    db.create("Train", temporal=["dep", "arr"], data=["service"])
    db.relation("Train").add_tuple(
        ["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"]
    )
    db.create("Fires", temporal=["t"])
    db.relation("Fires").add_tuple(["2 + 6n"], "t >= 0")
    db.commit()


def mutate_multi(db: Database) -> None:
    """Touch several relations in one transaction: put + put + drop."""
    rng = random.Random(77)
    db.relation("Log").add_tuple(["3 + 7n"], "t >= 10", ["tick"])
    db.register(
        "R1",
        seeded_relation(rng, temporal_arity=2, max_tuples=5, max_period=6),
    )
    db.drop("R2")
    db.create("Fresh", temporal=["t"])
    db.relation("Fresh").add_tuple(["4n"], "t >= -8")
    db.commit()


def compact_op(db: Database) -> None:
    db.compact()


WORKLOADS = [
    ("first_commit", build_empty, mutate_first_commit, COMMIT_FAULTS),
    ("multi_relation", build_seeded, mutate_multi, COMMIT_FAULTS),
    ("mid_compaction", build_seeded, compact_op, COMPACT_FAULTS),
]

MATRIX = [
    pytest.param(
        name,
        build,
        mutate,
        point,
        hit,
        fraction,
        id=f"{name}-{point}-hit{hit}"
        + (f"-torn{fraction}" if fraction is not None else ""),
    )
    for name, build, mutate, fault_list in WORKLOADS
    for point, hit, fraction in fault_list
]


@pytest.mark.parametrize(
    "name, build, mutate, point, hit, fraction", MATRIX
)
def test_crash_recovery_is_atomic(
    tmp_path, name, build, mutate, point, hit, fraction
):
    path = str(tmp_path / "db")

    # Pre-state: build and commit the workload's starting catalog.
    db = Database.open(path)
    build(db)
    pre = observe(db)
    db.close()

    # Post-state: what the mutation produces when nothing crashes
    # (computed on a scratch copy so the real store stays at pre).
    scratch_path = str(tmp_path / "scratch")
    scratch = Database.open(scratch_path)
    build(scratch)
    mutate(scratch)
    post = observe(scratch)
    scratch.close()

    # Crash the real store at the injection point, then recover.
    db = Database.open(path)
    with faults.crash_at(point, hit=hit, fraction=fraction):
        crash(db, mutate)
    recovered = Database.open(path)
    state = observe(recovered)

    assert state == pre or state == post, (
        f"partial state after crash at {point} (hit {hit}, "
        f"fraction {fraction}): recovered {sorted(state)} is neither "
        f"pre {sorted(pre)} nor post {sorted(post)}"
    )

    # The recovered store must be fully usable: mutate + commit again.
    recovered.create("AfterCrash", temporal=["t"])
    recovered.relation("AfterCrash").add_tuple(["9n"], "t >= 0")
    assert recovered.commit() >= 1
    recovered.close()
    final = Database.open(path)
    assert "AfterCrash" in final
    final.close()


class TestPinnedOutcomes:
    """Where the protocol *determines* pre vs post, pin it down."""

    def test_crash_before_commit_marker_recovers_pre(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path)
        with faults.crash_at("wal.commit"):
            crash(db, mutate_first_commit)
        with Database.open(path) as recovered:
            assert recovered.names == ()

    def test_crash_after_marker_before_fsync_recovers_post(self, tmp_path):
        # The marker reached the (unbuffered) file before the fsync
        # point fires, so recovery in the same machine sees the commit.
        path = str(tmp_path / "db")
        db = Database.open(path)
        with faults.crash_at("wal.fsync"):
            crash(db, mutate_first_commit)
        with Database.open(path) as recovered:
            assert set(recovered.names) == {"Train", "Fires"}

    def test_torn_first_record_recovers_pre(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database.open(path)
        with faults.crash_at("wal.append", fraction=0.6):
            crash(db, mutate_first_commit)
        with Database.open(path) as recovered:
            assert recovered.names == ()

    def test_compaction_crashes_never_change_the_catalog(self, tmp_path):
        # Compaction re-encodes the same committed state, so recovery
        # must observe it unchanged whichever side of the crash wins.
        path = str(tmp_path / "db")
        db = Database.open(path)
        build_seeded(db)
        committed = observe(db)
        db.close()
        for point in (
            "snapshot.rename",
            "manifest.rename",
            "wal.reset",
        ):
            db = Database.open(path)
            with faults.crash_at(point):
                crash(db, compact_op)
            with Database.open(path) as recovered:
                assert observe(recovered) == committed

    def test_crashed_engine_refuses_further_work(self, tmp_path):
        from repro.core.errors import StorageError

        db = Database.open(str(tmp_path / "db"))
        with faults.crash_at("wal.commit"):
            crash(db, mutate_first_commit)
        reopened_db = Database.open(str(tmp_path / "db"))
        assert reopened_db.names == ()
        reopened_db.close()
        with pytest.raises(StorageError, match="crashed"):
            db.commit()


class TestInjectorMechanics:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            faults.get_injector().arm("no.such.point")
        faults.get_injector().reset()

    def test_fraction_requires_torn_point(self):
        with pytest.raises(ValueError, match="torn"):
            faults.get_injector().arm("wal.commit", fraction=0.5)
        faults.get_injector().reset()

    def test_disarmed_injector_is_inert(self, tmp_path):
        injector = faults.get_injector()
        injector.reset()
        assert not injector.armed
        with Database.open(str(tmp_path / "db")) as db:
            mutate_first_commit(db)
        assert injector.hits["wal.commit"] >= 1  # points fired, no crash

    def test_crash_at_resets_on_exit(self, tmp_path):
        with faults.crash_at("wal.commit"):
            pass
        assert not faults.get_injector().armed
        with Database.open(str(tmp_path / "db")) as db:
            mutate_first_commit(db)  # must not crash
