"""Edge cases across modules: degenerate arities, huge values, extremes."""

import pytest

from repro.core import algebra
from repro.core.dbm import DBM
from repro.core.emptiness import relation_witness, tuple_witness
from repro.core.lrp import LRP
from repro.core.normalize import normalize_tuple
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.core.tuples import GeneralizedTuple
from repro.query import Database


class TestHugeIntegers:
    """Everything is arbitrary-precision: no overflow at any scale."""

    BIG = 10**30

    def test_lrp_membership_far_out(self):
        lrp = LRP.make(3, 7)
        assert lrp.contains(3 + 7 * self.BIG)
        assert not lrp.contains(4 + 7 * self.BIG)

    def test_huge_offsets_canonicalize(self):
        assert LRP.make(self.BIG, 7) == LRP.make(self.BIG % 7, 7)

    def test_intersection_of_huge_periods(self):
        a = LRP.make(1, self.BIG)
        b = LRP.make(1, self.BIG + 1)
        meet = a.intersect(b)
        assert meet is not None
        assert meet.contains(1)

    def test_relation_contains_far_out(self):
        r = relation(temporal=["t"])
        r.add_tuple(["60n"], "t >= 0")
        assert r.contains([60 * self.BIG])

    def test_query_with_huge_constant(self):
        db = Database()
        db.create("P", temporal=["t"])
        db.relation("P").add_tuple(["2n"])
        assert db.ask(f"EXISTS t. P(t) & t >= {self.BIG} & t <= {self.BIG + 1}")

    def test_witness_respects_huge_bounds(self):
        t = GeneralizedTuple.make(["2n"])
        dbm = DBM(1)
        dbm.add_lower(0, self.BIG)
        t = GeneralizedTuple(t.lrps, dbm)
        w = tuple_witness(t)
        assert w is not None and w[0] >= self.BIG and w[0] % 2 == 0


class TestZeroArity:
    def test_zero_arity_relation_ops(self):
        yes = relation(temporal=[])
        yes.add_tuple([])
        no = relation(temporal=[])
        assert not algebra.union(yes, no).is_empty()
        assert algebra.intersect(yes, no).is_empty()
        assert not algebra.subtract(yes, no).is_empty()
        assert algebra.subtract(yes, yes).is_empty()

    def test_zero_arity_complement_involution(self):
        yes = relation(temporal=[])
        yes.add_tuple([])
        assert algebra.complement(yes).is_empty()
        assert not algebra.complement(algebra.complement(yes)).is_empty()

    def test_project_everything_away(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["2n", "3n"], "a <= b")
        nothing = algebra.project(r, [])
        assert not nothing.is_empty()
        empty = relation(temporal=["a", "b"])
        assert algebra.project(empty, []).is_empty()

    def test_witness_of_zero_arity(self):
        yes = relation(temporal=[])
        yes.add_tuple([])
        assert relation_witness(yes) == ()


class TestSingletonHeavyTuples:
    def test_all_singleton_normalization(self):
        t = GeneralizedTuple.make([5, -3, 0])
        result = normalize_tuple(t)
        assert len(result) == 1
        assert result[0].period == 1
        assert result[0].singleton == (True, True, True)

    def test_singleton_projection(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple([5, "3n"], "a <= b")
        out = algebra.project(r, ["b"])
        points = sorted(x for (x,) in out.snapshot(0, 12))
        assert points == [6, 9, 12]

    def test_singleton_join(self):
        r1 = relation(temporal=["a"])
        r1.add_tuple([6])
        r2 = relation(temporal=["a"])
        r2.add_tuple(["3n"])
        out = algebra.join(r1, r2)
        assert out.contains([6]) and len(out) == 1

    def test_singleton_complement(self):
        r = relation(temporal=["t"])
        r.add_tuple([5])
        comp = algebra.complement(r)
        assert comp.contains([4]) and comp.contains([6])
        assert not comp.contains([5])


class TestConstraintExtremes:
    def test_equality_forcing_single_point(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["n", "n"], "a = 3 & b = a + 4")
        assert r.snapshot(-10, 10) == {(3, 7)}

    def test_constraint_tighter_than_lattice(self):
        r = relation(temporal=["t"])
        r.add_tuple(["10n"], "t >= 1 & t <= 9")
        assert r.is_empty()

    def test_chained_equalities_project(self):
        r = relation(temporal=["a", "b", "c"])
        r.add_tuple(["2n", "2n", "2n"], "a = b - 2 & b = c - 2")
        out = algebra.project(r, ["a", "c"])
        assert out.contains([0, 4]) and not out.contains([0, 2])

    def test_redundant_constraints_are_harmless(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(
            ["2n", "2n"],
            "a <= b & a <= b + 2 & a <= b + 100 & b >= 0 & b >= -50",
        )
        assert r.contains([0, 0]) and not r.contains([2, 0])


class TestSchemaEdges:
    def test_data_only_algebra(self):
        schema = Schema.make(data=["x"])
        r1 = GeneralizedRelation.empty(schema)
        r1.add_tuple([], data=["a"])
        r1.add_tuple([], data=["b"])
        r2 = GeneralizedRelation.empty(schema)
        r2.add_tuple([], data=["b"])
        assert algebra.subtract(r1, r2).snapshot(0, 0) == {("a",)}
        assert algebra.intersect(r1, r2).snapshot(0, 0) == {("b",)}

    def test_join_purely_on_data(self):
        s1 = Schema.make(data=["k", "v1"])
        s2 = Schema.make(data=["k", "v2"])
        r1 = GeneralizedRelation.empty(s1)
        r1.add_tuple([], data=["x", 1])
        r2 = GeneralizedRelation.empty(s2)
        r2.add_tuple([], data=["x", 2])
        r2.add_tuple([], data=["y", 3])
        out = algebra.join(r1, r2)
        assert out.snapshot(0, 0) == {("x", 1, 2)}

    def test_rename_then_self_product(self):
        r = relation(temporal=["t"])
        r.add_tuple(["2n"])
        left = algebra.rename(r, {"t": "t1"})
        right = algebra.rename(r, {"t": "t2"})
        pairs = algebra.product(left, right)
        assert pairs.contains([2, 4])


class TestQueryEdges:
    def test_query_with_only_comparisons(self):
        db = Database()
        assert db.ask("3 <= 4 & 5 >= 5")
        assert not db.ask("3 > 4 | 1 = 2")

    def test_nested_negations(self):
        db = Database()
        db.create("P", temporal=["t"])
        db.relation("P").add_tuple(["2n"])
        assert db.ask("EXISTS t. ~~P(t)")
        res = db.query("~~~P(t)")
        assert res.contains([3]) and not res.contains([2])

    def test_exists_shadowing(self):
        db = Database()
        db.create("P", temporal=["t"])
        db.relation("P").add_tuple([4])
        # inner t is bound; outer t is free and independent
        res = db.query("(EXISTS t. P(t)) & t >= 0 & t <= 1")
        assert res.contains([0]) and res.contains([1])
        assert not res.contains([4])

    def test_deeply_nested_connectives(self):
        db = Database()
        db.create("P", temporal=["t"])
        db.relation("P").add_tuple(["3n"])
        text = "P(t)"
        for _ in range(6):
            text = f"({text} | {text}) & ({text})"
        res = db.query(text)
        assert res.contains([3]) and not res.contains([4])


class TestInvertedHorizon:
    """``low > high`` denotes the empty window, uniformly everywhere.

    Before this was pinned down, the convention was implicit: tuple and
    relation enumeration happened to return nothing for most shapes but
    zero-arity tuples yielded their unit point regardless of the
    window, and downstream consumers (materialize, export) inherited
    whatever the core did.
    """

    def test_tuple_enumerate_empty(self):
        t = GeneralizedTuple.make(["0 + 1n"])
        assert list(t.enumerate(3, -3)) == []

    def test_zero_arity_tuple_enumerate_empty(self):
        t = GeneralizedTuple.make([])
        assert list(t.enumerate(0, 0)) == [()]
        assert list(t.enumerate(1, 0)) == []

    def test_relation_enumerate_empty(self):
        r = relation(temporal=["t"])
        r.add_tuple([0])
        assert list(r.enumerate(5, -5)) == []
        assert r.snapshot(5, -5) == set()

    def test_zero_arity_relation_enumerate_empty(self):
        r = GeneralizedRelation.empty(Schema.make())
        r.add_tuple([])
        assert list(r.enumerate(0, 0)) == [()]
        assert list(r.enumerate(1, -1)) == []

    def test_materialize_empty(self):
        from repro.baseline.finite import FiniteRelation

        r = relation(temporal=["t"])
        r.add_tuple(["0 + 1n"])
        assert len(FiniteRelation.materialize(r, 7, -7)) == 0

    def test_degenerate_single_point_window_still_works(self):
        r = relation(temporal=["t"])
        r.add_tuple(["0 + 2n"])
        assert r.snapshot(4, 4) == {(4,)}
        assert r.snapshot(3, 3) == set()
