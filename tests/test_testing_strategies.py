"""Tests for the public hypothesis strategies (and via them, more fuzz)."""

from hypothesis import given, settings

from repro.core import algebra
from repro.core.lrp import LRP
from repro.periodic import PeriodicSet
from repro.testing import (
    dbms,
    generalized_relations,
    generalized_tuples,
    lrps,
    periodic_sets,
)


class TestStrategyShapes:
    @given(lrps())
    def test_lrps_are_canonical(self, lrp):
        assert isinstance(lrp, LRP)
        assert lrp.period >= 0
        if lrp.period > 0:
            assert 0 <= lrp.offset < lrp.period

    @given(lrps(allow_singletons=False))
    def test_no_singletons_option(self, lrp):
        assert lrp.period >= 1

    @given(dbms(arity=3))
    def test_dbms_have_right_size(self, dbm):
        assert dbm.size == 3

    @given(generalized_tuples(temporal_arity=2, data_values=("x",)))
    def test_tuples_have_right_shape(self, gtuple):
        assert gtuple.temporal_arity == 2
        assert gtuple.data == ("x",)

    @given(generalized_relations(temporal_arity=1, max_tuples=2))
    @settings(max_examples=50)
    def test_relations_have_right_schema(self, rel):
        assert rel.schema.temporal_names == ("X1",)
        assert rel.schema.data_arity == 0

    @given(periodic_sets())
    @settings(max_examples=50)
    def test_periodic_sets_valid(self, ps):
        assert isinstance(ps, PeriodicSet)
        ps.between(-5, 5)  # must not raise


class TestStrategiesDriveRealProperties:
    """The strategies are good enough to state real theorems with."""

    @given(
        generalized_relations(temporal_arity=1, max_tuples=2),
        generalized_relations(temporal_arity=1, max_tuples=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_absorption_law(self, a, b):
        """a ∪ (a ∩ b) == a."""
        rebuilt = algebra.union(a, algebra.intersect(a, b))
        assert rebuilt.snapshot(-10, 10) == a.snapshot(-10, 10)

    @given(generalized_relations(temporal_arity=2, max_tuples=2))
    @settings(max_examples=40, deadline=None)
    def test_projection_monotone(self, rel):
        """Π(a) ⊆ Π(a ∪ anything) — via the strategy's own union."""
        doubled = algebra.union(rel, rel)
        left = algebra.project(rel, ["X1"])
        right = algebra.project(doubled, ["X1"])
        assert left.snapshot(-10, 10) == right.snapshot(-10, 10)

    @given(periodic_sets(), periodic_sets())
    @settings(max_examples=50, deadline=None)
    def test_symmetric_difference_disjoint_from_intersection(self, a, b):
        assert (a ^ b).isdisjoint(a & b)
