"""Tests for the public hypothesis strategies (and via them, more fuzz)."""

from hypothesis import given, settings

from repro.core import algebra
from repro.core.lrp import LRP
from repro.periodic import PeriodicSet
from repro.testing import (
    dbms,
    generalized_relations,
    generalized_tuples,
    lrps,
    periodic_sets,
)


class TestStrategyShapes:
    @given(lrps())
    def test_lrps_are_canonical(self, lrp):
        assert isinstance(lrp, LRP)
        assert lrp.period >= 0
        if lrp.period > 0:
            assert 0 <= lrp.offset < lrp.period

    @given(lrps(allow_singletons=False))
    def test_no_singletons_option(self, lrp):
        assert lrp.period >= 1

    @given(dbms(arity=3))
    def test_dbms_have_right_size(self, dbm):
        assert dbm.size == 3

    @given(generalized_tuples(temporal_arity=2, data_values=("x",)))
    def test_tuples_have_right_shape(self, gtuple):
        assert gtuple.temporal_arity == 2
        assert gtuple.data == ("x",)

    @given(generalized_relations(temporal_arity=1, max_tuples=2))
    @settings(max_examples=50)
    def test_relations_have_right_schema(self, rel):
        assert rel.schema.temporal_names == ("X1",)
        assert rel.schema.data_arity == 0

    @given(periodic_sets())
    @settings(max_examples=50)
    def test_periodic_sets_valid(self, ps):
        assert isinstance(ps, PeriodicSet)
        ps.between(-5, 5)  # must not raise


class TestStrategiesDriveRealProperties:
    """The strategies are good enough to state real theorems with."""

    @given(
        generalized_relations(temporal_arity=1, max_tuples=2),
        generalized_relations(temporal_arity=1, max_tuples=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_absorption_law(self, a, b):
        """a ∪ (a ∩ b) == a."""
        rebuilt = algebra.union(a, algebra.intersect(a, b))
        assert rebuilt.snapshot(-10, 10) == a.snapshot(-10, 10)

    @given(generalized_relations(temporal_arity=2, max_tuples=2))
    @settings(max_examples=40, deadline=None)
    def test_projection_monotone(self, rel):
        """Π(a) ⊆ Π(a ∪ anything) — via the strategy's own union."""
        doubled = algebra.union(rel, rel)
        left = algebra.project(rel, ["X1"])
        right = algebra.project(doubled, ["X1"])
        assert left.snapshot(-10, 10) == right.snapshot(-10, 10)

    @given(periodic_sets(), periodic_sets())
    @settings(max_examples=50, deadline=None)
    def test_symmetric_difference_disjoint_from_intersection(self, a, b):
        assert (a ^ b).isdisjoint(a & b)


class TestSeededGenerators:
    """The deterministic counterparts draw from the same distributions."""

    def test_seeded_replay_is_exact(self):
        import random

        from repro.testing import seeded_dbm, seeded_lrp, seeded_relation

        a = seeded_relation(random.Random(42), temporal_arity=2)
        b = seeded_relation(random.Random(42), temporal_arity=2)
        assert a == b
        assert seeded_lrp(random.Random(7)) == seeded_lrp(random.Random(7))
        assert seeded_dbm(random.Random(7), 3).canonical_key() == seeded_dbm(
            random.Random(7), 3
        ).canonical_key()

    def test_seeded_dbm_zero_arity_spends_no_draws(self):
        import random

        rng = random.Random(5)
        from repro.testing import seeded_dbm

        seeded_dbm(rng, 0)
        control = random.Random(5)
        assert rng.randint(0, 10**6) == control.randint(0, 10**6)

    def test_difference_constraints_are_generated(self):
        """Regression: the i == j draw used to silently fall through to
        an upper bound, so genuine difference constraints X_i - X_j <= c
        between distinct variables were underrepresented."""
        import random

        from repro.testing import seeded_dbm

        diff_seen = 0
        for seed in range(300):
            dbm = seeded_dbm(random.Random(seed), 2)
            for i, j, _ in dbm.iter_bounds():
                if i >= 0 and j >= 0:
                    diff_seen += 1
        # kind==0 is drawn 1/3 of the time; with up to 4 constraints per
        # dbm over 300 seeds, hundreds of draws happen.  Before the fix
        # roughly half of kind==0 draws (the i==j ones) were lost.
        assert diff_seen > 100

    def test_strategy_and_seeded_share_one_distribution(self):
        """Same draw sequence -> same structure via either family."""
        from repro.testing import _build_relation

        import itertools

        draws = itertools.cycle([2, 3, 1, 0, 1, 4, 2, 0, 1, 1, 3, 5, 0, 2])

        def scripted(lo, hi):
            return max(lo, min(hi, next(draws)))

        rel = _build_relation(scripted, temporal_arity=1)
        assert rel.schema.temporal_names == ("X1",)
