"""The documentation gates themselves must pass on every checkout.

``tools/docs_check.py`` is what ``make docs-check`` (and CI) runs; this
suite keeps it honest in both directions — the repository's docs pass,
and the checker still detects the violations it exists to catch.
"""

import importlib.util
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "docs_check", ROOT / "tools" / "docs_check.py"
)
docs_check = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(docs_check)


def test_doc_set_covers_the_required_pages():
    names = {path.name for path in docs_check.iter_doc_files()}
    for required in (
        "README.md",
        "index.md",
        "architecture.md",
        "storage.md",
        "tutorial.md",
        "fuzzing.md",
        "performance.md",
        "observability.md",
    ):
        assert required in names


def test_repository_links_are_clean():
    assert docs_check.check_links() == []


def test_public_api_is_fully_documented():
    assert docs_check.check_docstrings() == []


def test_main_reports_success():
    assert docs_check.main() == 0


def test_broken_links_are_detected(tmp_path, monkeypatch):
    doc = tmp_path / "page.md"
    doc.write_text(
        "See [a real file](real.md), [gone](missing.md), "
        "[external](https://example.com/x.md) and [an anchor](#frag).\n"
    )
    (tmp_path / "real.md").write_text("ok\n")
    monkeypatch.setattr(docs_check, "iter_doc_files", lambda: [doc])
    errors = docs_check.check_links()
    assert len(errors) == 1
    assert "missing.md" in errors[0]


def test_anchor_suffixes_check_only_the_file_part(tmp_path, monkeypatch):
    doc = tmp_path / "page.md"
    doc.write_text("[ok](real.md#section) [bad](missing.md#section)\n")
    (tmp_path / "real.md").write_text("ok\n")
    monkeypatch.setattr(docs_check, "iter_doc_files", lambda: [doc])
    errors = docs_check.check_links()
    assert len(errors) == 1
    assert "missing.md#section" in errors[0]
