"""Property and regression tests for the batched closure kernel.

The vectorized backend (``repro.perf.kernel``) must be bound-for-bound
equivalent to the scalar Python path: same satisfiability verdicts, same
closed matrices, same canonical keys, same projected relations.  These
tests state that equivalence as hypothesis properties over random
constraint systems (including unsatisfiable ones and mixed-arity
batches), pin the closure-state regressions the kernel work surfaced,
and replay the fuzz corpus with the numpy backend forced on.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.fuzz.case import load_case
from repro.fuzz.diff import run_case
from repro.perf import kernel
from repro.perf.config import PERF_COUNTERS, overrides, reset_counters
from repro.testing import dbms, generalized_relations
from tests.helpers import random_relation
from tests.test_corpus import CORPUS_FILES

HAVE_NUMPY = kernel._numpy() is not None
needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="numpy not installed (perf extra)"
)


def _diagonal_negative(dbm: DBM) -> bool:
    return any(dbm._b[i][i] is not None and dbm._b[i][i] < 0 for i in range(dbm._n))


def _assert_genuinely_closed(dbm: DBM) -> None:
    """A DBM claiming ``_closed`` must be a fixpoint of closure."""
    assert dbm._closed
    probe = dbm.copy()
    probe._closed = False
    probe._dirty = None
    assert probe.close()
    assert probe._b == dbm._b


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_python_always_honored(self):
        with overrides(kernel="python"):
            assert kernel.kernel_backend() == "python"
            assert not kernel.kernel_active()

    @needs_numpy
    def test_numpy_and_auto_resolve_to_numpy(self):
        for mode in ("numpy", "auto"):
            with overrides(kernel=mode):
                assert kernel.kernel_backend() == "numpy"
                assert kernel.kernel_active()

    def test_python_backend_close_batch_is_scalar_loop(self):
        ds = [DBM(2) for _ in range(4)]
        for d in ds:
            d.add_difference(0, 1, 3)
        with overrides(kernel="python"):
            reset_counters()
            verdicts = kernel.close_batch(ds)
        assert verdicts == [True] * 4
        assert PERF_COUNTERS["kernel.batch_closures"] == 0
        for d in ds:
            _assert_genuinely_closed(d)


# ----------------------------------------------------------------------
# batched closure ≡ scalar closure
# ----------------------------------------------------------------------


@needs_numpy
class TestClosureEquivalence:
    @given(st.lists(dbms(arity=3, max_constraints=6), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_close_batch_matches_scalar(self, batch):
        scalars = [d.copy() for d in batch]
        expected = [d.close() for d in scalars]
        with overrides(kernel="numpy"):
            got = kernel.close_batch(batch)
        assert got == expected
        for d, s, sat in zip(batch, scalars, expected):
            assert d._closed
            if sat:
                # Satisfiable systems agree on every tightened bound.
                assert d._b == s._b
                _assert_genuinely_closed(d)
            else:
                # For unsatisfiable ones only the negative diagonal is
                # contractual, exactly as after a scalar close().
                assert _diagonal_negative(d)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_mixed_arity_batches_group_by_dimension(self, data):
        arities = data.draw(
            st.lists(st.integers(1, 4), min_size=2, max_size=10)
        )
        batch = [data.draw(dbms(arity=a, max_constraints=4)) for a in arities]
        expected = [d.copy().close() for d in batch]
        with overrides(kernel="numpy"):
            got = kernel.close_batch(batch)
        assert got == expected
        for d in batch:
            assert d._closed

    @given(st.lists(dbms(arity=2, max_constraints=5), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_sat_batch_parity_without_mutation(self, batch):
        before = [[row[:] for row in d._b] for d in batch]
        flags = [d._closed for d in batch]
        expected = [d.copy().close() for d in batch]
        with overrides(kernel="numpy"):
            got = kernel.sat_batch(batch)
        assert got == expected
        assert [d._b for d in batch] == before
        assert [d._closed for d in batch] == flags

    @given(st.lists(dbms(arity=3, max_constraints=5), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_canonical_keys_batch_parity_without_mutation(self, batch):
        before = [[row[:] for row in d._b] for d in batch]
        flags = [d._closed for d in batch]
        expected = [d.canonical_key() for d in batch]
        with overrides(kernel="numpy"):
            got = kernel.canonical_keys_batch(batch)
        assert got == expected
        assert [d._b for d in batch] == before
        assert [d._closed for d in batch] == flags

    def test_oversized_bounds_fall_back_to_scalar(self):
        huge = kernel.MAX_ABS_BOUND * 4
        batch = []
        for _ in range(kernel.MIN_BATCH):
            d = DBM(2)
            d.add_difference(0, 1, huge)
            d.add_difference(1, 0, -huge + 1)
            batch.append(d)
        with overrides(kernel="numpy"):
            reset_counters()
            verdicts = kernel.close_batch(batch)
        assert verdicts == [True] * len(batch)
        assert PERF_COUNTERS["kernel.batch_closures"] == 0
        assert PERF_COUNTERS["kernel.scalar_fallbacks"] == len(batch)
        for d in batch:
            _assert_genuinely_closed(d)

    def test_batch_counters_observe_vectorized_sweeps(self):
        batch = []
        for i in range(kernel.MIN_BATCH + 2):
            d = DBM(2)
            d.add_difference(0, 1, i)
            batch.append(d)
        with overrides(kernel="numpy"):
            reset_counters()
            kernel.close_batch(batch)
        assert PERF_COUNTERS["kernel.batch_closures"] == 1
        assert PERF_COUNTERS["kernel.batch_dbms"] == len(batch)
        assert PERF_COUNTERS["kernel.scalar_fallbacks"] == 0


# ----------------------------------------------------------------------
# projection through the kernel
# ----------------------------------------------------------------------


@needs_numpy
class TestProjectionKernel:
    @given(generalized_relations(temporal_arity=3, max_tuples=3))
    @settings(max_examples=40, deadline=None)
    def test_project_backends_agree_tuple_for_tuple(self, rel):
        name = rel.schema.temporal_names[0]
        with overrides(kernel="python"):
            expected = algebra.project(rel, [name])
        with overrides(kernel="numpy"):
            got = algebra.project(rel, [name])
        assert {t.canonical_key() for t in got} == {
            t.canonical_key() for t in expected
        }

    @given(generalized_relations(temporal_arity=2, max_tuples=3))
    @settings(max_examples=40, deadline=None)
    def test_projected_tuples_reclose_to_themselves(self, rel):
        # The batched path emits born-closed DBMs (and the scalar path
        # preserves closure flags); both claims must survive a re-close.
        name = rel.schema.temporal_names[1]
        with overrides(kernel="numpy"):
            out = algebra.project(rel, [name])
        for gtuple in out:
            if gtuple.dbm._closed:
                _assert_genuinely_closed(gtuple.dbm)

    def test_dbm_project_returns_closed_system(self):
        d = DBM(3)
        d.add_difference(0, 1, 5)
        d.add_difference(1, 2, -2)
        d.add_upper(2, 7)
        out = d.project([0, 2])
        _assert_genuinely_closed(out)

    def test_scalar_projection_preserves_closed_flag_honestly(self):
        # Regression: _project_combo once kept stale closure state when
        # kept-cluster singletons pinned values after the grid close.
        lrps = (LRP.make(0, 2), LRP.make(1, 3), LRP.point(4))
        dbm = DBM(3)
        dbm.add_difference(0, 1, 4)
        dbm.add_difference(1, 2, 2)
        rel = GeneralizedRelation.empty(Schema.make(temporal=["A", "B", "C"]))
        rel.add(GeneralizedTuple(lrps=lrps, dbm=dbm))
        with overrides(kernel="python"):
            out = algebra.project(rel, ["A", "C"])
        assert len(list(out)) >= 1
        for gtuple in out:
            if gtuple.dbm._closed:
                _assert_genuinely_closed(gtuple.dbm)

    def test_backends_agree_on_seeded_relations(self):
        rng = random.Random(0xC105)
        schema = Schema.make(temporal=["A", "B", "C"], data=["D"])
        for trial in range(25):
            rel = random_relation(
                rng, schema, n_tuples=4, data_choices=[("x",), ("y",)]
            )
            keep = rng.choice([["A"], ["B", "D"], ["A", "C"], ["D"]])
            with overrides(kernel="python"):
                expected = algebra.project(rel, keep)
            with overrides(kernel="numpy"):
                got = algebra.project(rel, keep)
            assert {t.canonical_key() for t in got} == {
                t.canonical_key() for t in expected
            }, f"trial {trial}: backends disagree on project({keep})"


# ----------------------------------------------------------------------
# per-tuple projection plan memo
# ----------------------------------------------------------------------


def _memo_relation() -> GeneralizedRelation:
    lrps = (LRP.make(0, 2), LRP.make(1, 3))
    dbm = DBM(2)
    dbm.add_difference(0, 1, 4)
    rel = GeneralizedRelation.empty(Schema.make(temporal=["A", "B"]))
    rel.add(GeneralizedTuple(lrps=lrps, dbm=dbm))
    return rel


class TestPlanMemo:
    def test_memo_populated_and_hit_when_caches_on(self):
        rel = _memo_relation()
        with overrides(kernel="python", cache_enabled=True):
            reset_counters()
            first = algebra.project(rel, ["A"])
            assert PERF_COUNTERS["plan_memo_hits"] == 0
            assert any(t._plans for t in rel)
            second = algebra.project(rel, ["A"])
            assert PERF_COUNTERS["plan_memo_hits"] >= 1
        assert {t.canonical_key() for t in first} == {
            t.canonical_key() for t in second
        }

    def test_memo_skipped_when_caches_off(self):
        rel = _memo_relation()
        with overrides(kernel="python", cache_enabled=False):
            reset_counters()
            algebra.project(rel, ["A"])
            algebra.project(rel, ["A"])
            assert PERF_COUNTERS["plan_memo_hits"] == 0
        assert all(t._plans is None for t in rel)


# ----------------------------------------------------------------------
# corpus replay with the numpy backend forced on
# ----------------------------------------------------------------------


@needs_numpy
@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_replays_clean_under_numpy_kernel(path):
    case = load_case(path)
    case.validate()
    with overrides(kernel="numpy"):
        result = run_case(case)
    assert not result.failing, (
        f"{path.name} regressed under the numpy kernel "
        f"({case.note or 'no note'}):\n{result.summary()}"
    )
