"""Integration tests spanning multiple subsystems end to end."""

import pytest

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.core.temporal import next_event
from repro.deductive import Program
from repro.intervals import (
    RecurringTrip,
    at_time,
    every,
    hourly,
    liege_brussels_schedule,
    schedule_relation,
)
from repro.presburger import compile_unary, parse_formula
from repro.query import Database
from repro.storage import jsonio, textio
from repro.tl import Model, always, atom, disj, eventually, negate


class TestScheduleLifecycle:
    """Build -> persist -> reload -> query -> aggregate, one flow."""

    def test_full_round_trip(self, tmp_path):
        trains = liege_brussels_schedule()
        # persist as text, reload
        path = tmp_path / "trains.itql"
        path.write_text(textio.dumps(trains, name="Train"))
        name, reloaded = textio.loads(path.read_text())
        assert name == "Train"
        # and as JSON, reload again
        again = jsonio.loads(jsonio.dumps(reloaded))
        db = Database()
        db.register("Train", again)
        # query the reloaded data symbolically
        assert db.ask(
            'EXISTS d. EXISTS a. Train(d, a, "slow") & d >= 600'
        )
        # exact next departure after 9:00
        assert next_event(again, "dep", at_time(9, 0)) == at_time(9, 2)

    def test_query_result_feeds_algebra(self):
        db = Database()
        db.register("Train", liege_brussels_schedule())
        departures = db.query("EXISTS a. EXISTS s. Train(d, a, s)")
        # the open result is itself a generalized relation: complement it
        quiet = algebra.complement(departures)
        assert quiet.contains([at_time(7, 0)])
        assert not quiet.contains([at_time(7, 2)])


class TestDeductivePlusTemporalLogic:
    """Derive an IDB relation with rules, then model-check it."""

    def test_busy_robots_liveness(self):
        db = Database()
        db.create("Perform", temporal=["t1", "t2"], data=["robot", "task"])
        perform = db.relation("Perform")
        perform.add_tuple(
            ["6n", "2 + 6n"], "t1 = t2 - 2", ["r1", "polish"]
        )
        perform.add_tuple(
            ["3 + 6n", "5 + 6n"], "t1 = t2 - 2", ["r2", "weld"]
        )
        program = Program()
        program.declare("Busy", temporal=["t"])
        program.rule(
            "Busy(t) <- Perform(a, b, r, k) & a <= t & t <= b"
        )
        derived = program.evaluate(db)
        model = Model({"Busy": derived.relation("Busy")})
        # someone is busy at every instant (slots [0,2],[3,5] tile Z mod 6)
        assert model.holds_everywhere(atom("Busy"))
        # hence trivially: always eventually busy
        assert model.holds_everywhere(always(eventually(atom("Busy"))))

    def test_gap_detection(self):
        db = Database()
        db.create("Perform", temporal=["t1", "t2"], data=["robot", "task"])
        db.relation("Perform").add_tuple(
            ["6n", "2 + 6n"], "t1 = t2 - 2", ["r1", "polish"]
        )
        program = Program()
        program.declare("Busy", temporal=["t"])
        program.rule("Busy(t) <- Perform(a, b, r, k) & a <= t & t <= b")
        derived = program.evaluate(db)
        model = Model({"Busy": derived.relation("Busy")})
        idle = model.sat(negate(atom("Busy")))
        assert sorted(x for (x,) in idle.enumerate(0, 11)) == [3, 4, 5, 9, 10, 11]


class TestPresburgerIntoDatabase:
    """Compiled Presburger predicates are first-class relations."""

    def test_compiled_formula_joins_with_schedule(self):
        # "minutes divisible by 4 but not by 3" as a compiled relation
        formula = parse_formula("v = 0 mod 4 & ~(v = 0 mod 3)")
        pattern = compile_unary(formula)
        db = Database()
        db.register("Pattern", algebra.rename(pattern, {"v": "m"}))
        db.register(
            "Shuttle",
            schedule_relation(
                [RecurringTrip(every(4), 2, "bus")],
                departure_attr="m",
                arrival_attr="a",
            ),
        )
        # departures that match the pattern: multiples of 4 not div. by 3
        res = db.query("EXISTS a. EXISTS s. Shuttle(m, a, s) & Pattern(m)")
        points = {x for (x,) in res.snapshot(0, 24)}
        assert points == {4, 8, 16, 20}

    def test_compiled_formula_in_rules(self):
        formula = parse_formula("v = 1 mod 2")
        odd = compile_unary(formula)
        db = Database()
        db.register("Odd", algebra.rename(odd, {"v": "t"}))
        db.create("Tick", temporal=["t"])
        db.relation("Tick").add_tuple(["3n"])
        program = Program()
        program.declare("OddTick", temporal=["t"])
        program.rule("OddTick(t) <- Tick(t) & Odd(t)")
        out = program.evaluate(db)
        assert sorted(
            x for (x,) in out.relation("OddTick").enumerate(0, 20)
        ) == [3, 9, 15]


class TestIntervalsPlusQueries:
    def test_allen_constraints_in_fo_queries(self):
        """The 'overlaps' pattern written directly as a query."""
        db = Database()
        db.register(
            "Occupy",
            schedule_relation(
                [
                    RecurringTrip(hourly(0), 30, "first"),
                    RecurringTrip(hourly(20), 30, "second"),
                ],
                departure_attr="s",
                arrival_attr="e",
                label_attr="who",
            ),
        )
        # overlap: s1 < s2 < e1 < e2
        overlapping = db.ask(
            'EXISTS s1. EXISTS e1. EXISTS s2. EXISTS e2. '
            'Occupy(s1, e1, "first") & Occupy(s2, e2, "second") '
            "& s1 < s2 & s2 < e1 & e1 < e2"
        )
        assert overlapping

    def test_no_overlap_case(self):
        db = Database()
        db.register(
            "Occupy",
            schedule_relation(
                [
                    RecurringTrip(hourly(0), 10, "first"),
                    RecurringTrip(hourly(30), 10, "second"),
                ],
                departure_attr="s",
                arrival_attr="e",
                label_attr="who",
            ),
        )
        assert not db.ask(
            'EXISTS s1. EXISTS e1. EXISTS s2. EXISTS e2. '
            'Occupy(s1, e1, "first") & Occupy(s2, e2, "second") '
            "& s2 <= e1 & s1 <= e2 & s1 <= s2"
        )


class TestBigCompositePipeline:
    def test_everything_at_once(self, tmp_path):
        """Text load -> rules -> TL -> query -> save, with checks."""
        source = """
        relation Sensor(t:T, kind:D)
        [4n] | ping
        [2 + 8n] | alarm
        """
        relations = textio.loads_all(source)
        db = Database()
        for name, rel in relations.items():
            db.register(name, rel)
        program = Program()
        program.declare("Event", temporal=["t"])
        program.rule("Event(t) <- Sensor(t, k)")
        enriched = program.evaluate(db)
        model = Model({"Event": enriched.relation("Event")})
        assert model.holds_everywhere(eventually(atom("Event")))
        # alarms are a subset of pings' grid complement? alarms at 2+8n
        assert db.ask('EXISTS t. Sensor(t, "alarm") & Sensor(t + 2, "ping")')
        out_path = tmp_path / "out.itql"
        out_path.write_text(
            textio.dumps(enriched.relation("Event"), name="Event")
        )
        _, back = textio.loads(out_path.read_text())
        assert back.snapshot(0, 20) == enriched.relation("Event").snapshot(0, 20)
