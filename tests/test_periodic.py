"""Tests for the PeriodicSet facade."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.periodic import PeriodicSet

W = (-20, 20)


def brute(ps: PeriodicSet) -> set[int]:
    return set(ps.between(*W))


@st.composite
def periodic_sets(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        period = draw(st.integers(1, 6))
        offset = draw(st.integers(-6, 6))
        return PeriodicSet.every(period, offset)
    if kind == 1:
        lo = draw(st.integers(-10, 10))
        hi = lo + draw(st.integers(0, 8))
        return PeriodicSet.interval(lo, hi)
    if kind == 2:
        values = draw(st.lists(st.integers(-10, 10), max_size=4))
        return PeriodicSet.points(values)
    base = PeriodicSet.every(draw(st.integers(1, 4)), draw(st.integers(0, 3)))
    bound = draw(st.integers(-8, 8))
    return base & PeriodicSet.at_or_above(bound)


class TestConstructors:
    def test_every(self):
        s = PeriodicSet.every(6, offset=2)
        assert 2 in s and 8 in s and 2 + 6 * 10**12 in s
        assert 3 not in s

    def test_every_validates(self):
        with pytest.raises(ValueError):
            PeriodicSet.every(0)

    def test_points_and_interval(self):
        assert brute(PeriodicSet.points([1, 5, 5])) == {1, 5}
        assert brute(PeriodicSet.interval(3, 6)) == {3, 4, 5, 6}
        assert PeriodicSet.interval(7, 3).is_empty()

    def test_bounds_constructors(self):
        assert 10**15 in PeriodicSet.at_or_above(0)
        assert -(10**15) in PeriodicSet.at_or_below(0)

    def test_from_lrp(self):
        s = PeriodicSet.from_lrp("3 + 5n", "t >= 0")
        assert s.between(0, 20) == [3, 8, 13, 18]

    def test_wraps_only_unary(self):
        from repro.core.relations import relation

        with pytest.raises(ValueError):
            PeriodicSet(relation(temporal=["a", "b"]))

    def test_renames_column(self):
        from repro.core.relations import relation

        r = relation(temporal=["x"])
        r.add_tuple(["2n"])
        s = PeriodicSet(r)
        assert 4 in s


class TestSetOperators:
    @given(periodic_sets(), periodic_sets())
    @settings(max_examples=60, deadline=None)
    def test_boolean_ops_match_set_semantics(self, a, b):
        assert brute(a | b) == brute(a) | brute(b)
        assert brute(a & b) == brute(a) & brute(b)
        assert brute(a - b) == brute(a) - brute(b)
        assert brute(a ^ b) == brute(a) ^ brute(b)

    @given(periodic_sets())
    @settings(max_examples=40, deadline=None)
    def test_complement(self, a):
        comp = ~a
        universe = set(range(W[0], W[1] + 1))
        assert brute(comp) == universe - brute(a)

    def test_subset_and_equality(self):
        multiples4 = PeriodicSet.every(4)
        multiples2 = PeriodicSet.every(2)
        assert multiples4 <= multiples2
        assert multiples4 < multiples2
        assert not multiples2 <= multiples4
        rebuilt = PeriodicSet.every(4) | PeriodicSet.every(4, 2)
        assert rebuilt == multiples2
        assert multiples2 >= rebuilt and not multiples2 > rebuilt

    def test_isdisjoint(self):
        assert PeriodicSet.every(2).isdisjoint(PeriodicSet.every(2, 1))
        assert not PeriodicSet.every(2).isdisjoint(PeriodicSet.every(3))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PeriodicSet.every(2))


class TestQueries:
    def test_emptiness_and_finiteness(self):
        assert PeriodicSet.empty().is_empty()
        assert not PeriodicSet.every(3).is_empty()
        assert PeriodicSet.interval(0, 5).is_finite()
        assert not PeriodicSet.every(3).is_finite()

    def test_len(self):
        assert len(PeriodicSet.interval(0, 5)) == 6
        assert len(PeriodicSet.points([1, 2, 2])) == 2
        with pytest.raises(TypeError):
            len(PeriodicSet.every(2))

    def test_next_prev(self):
        s = PeriodicSet.every(6, 2)
        assert s.next_at_or_after(3) == 8
        assert s.prev_at_or_before(3) == 2
        assert (~s).next_at_or_after(2) == 3

    def test_min_max(self):
        s = PeriodicSet.every(3) & PeriodicSet.interval(1, 10)
        assert s.minimum() == 3 and s.maximum() == 9
        assert PeriodicSet.every(3).minimum() is None

    def test_iterate_from(self):
        s = PeriodicSet.every(5, 1)
        it = s.iterate_from(0)
        assert [next(it) for _ in range(4)] == [1, 6, 11, 16]

    def test_iterate_from_finite_terminates(self):
        s = PeriodicSet.points([3, 7])
        assert list(s.iterate_from(0)) == [3, 7]

    def test_shift(self):
        s = PeriodicSet.every(6, 2).shift(1)
        assert 3 in s and 2 not in s

    def test_simplify_preserves(self):
        s = PeriodicSet.every(4) | PeriodicSet.every(2)
        simplified = s.simplify()
        assert simplified == s
        assert len(simplified.relation) <= len(s.relation)

    def test_repr_smoke(self):
        assert "tuple" in repr(PeriodicSet.every(2))
        assert "(empty)" in repr(PeriodicSet.empty())


class TestScenario:
    def test_maintenance_window_scenario(self):
        """The quickstart scenario, in three lines."""
        fires = PeriodicSet.every(6, 2)
        window = PeriodicSet.interval(100, 200)
        risky = fires & window
        assert risky.between(0, 300)[0] == 104
        safe = fires - window
        assert 104 not in safe and 98 in safe

    def test_weekday_style_composition(self):
        """Every 7 ticks at phases 0-4 = 'weekdays' of a 7-tick week."""
        weekdays = PeriodicSet.empty()
        for phase in range(5):
            weekdays = weekdays | PeriodicSet.every(7, phase)
        weekend = ~weekdays
        assert 5 in weekend and 6 in weekend and 7 not in weekend
        assert weekend == PeriodicSet.every(7, 5) | PeriodicSet.every(7, 6)
