"""Tests for the three-way differential executor."""

import pytest

from repro.core.relations import GeneralizedRelation, Schema
from repro.fuzz.case import Case
from repro.fuzz.diff import (
    DEFAULT_CONFIG,
    DiffConfig,
    OversizeError,
    compute_margin,
    eval_finite,
    eval_generalized,
    run_case,
)
from repro.fuzz.expr import (
    Complement,
    Intersect,
    Join,
    Leaf,
    Project,
    Select,
    Subtract,
    Union,
)
from repro.fuzz.gen import generate_case

T1 = Schema.make(temporal=["T1"])
T12 = Schema.make(temporal=["T1", "T2"])


def rel_1d(*specs):
    out = GeneralizedRelation.empty(T1)
    for lrp, constraints in specs:
        out.add_tuple([lrp], constraints)
    return out


def case_over(expr, low=-4, high=4, **relations):
    return Case(relations=dict(relations), expr=expr, low=low, high=high)


class TestEvalGeneralized:
    def test_matches_direct_algebra(self):
        a = rel_1d(("0 + 2n", ""))
        b = rel_1d(("0 + 3n", ""))
        case = case_over(Subtract(Leaf("A"), Leaf("B")), A=a, B=b)
        got = eval_generalized(case)
        assert got.snapshot(-10, 10) == a.subtract(b).snapshot(-10, 10)

    def test_tuple_cap_trips(self):
        a = rel_1d(("0 + 2n", ""), ("1 + 4n", ""), ("3 + 5n", ""))
        case = case_over(Complement(Leaf("A")), A=a)
        with pytest.raises(OversizeError):
            eval_generalized(case, DiffConfig(tuple_cap=1))


class TestEvalFinite:
    def test_exact_without_projection(self):
        a = rel_1d(("1 + 3n", "T1 >= -3"))
        b = rel_1d(("0 + 2n", ""))
        expr = Union(Intersect(Leaf("A"), Leaf("B")), Subtract(Leaf("B"), Leaf("A")))
        case = case_over(expr, A=a, B=b)
        assert compute_margin(case) == 0
        finite = eval_finite(case, 0)
        symbolic = eval_generalized(case)
        assert set(finite.rows) == symbolic.snapshot(case.low, case.high)

    def test_projection_needs_margin(self):
        # A = {(t1, t2) : t2 = t1 + 9}; projecting onto T1 inside
        # window [-4, 4] requires witnesses t2 in [5, 13] — all outside
        # the window.  Margin 0 loses every row; the computed margin
        # finds them.
        a = GeneralizedRelation.empty(T12)
        a.add_tuple(["0 + 1n", "0 + 1n"], "T2 = T1 + 9")
        case = case_over(Project(Leaf("A"), ("T1",)), A=a)
        margin = compute_margin(case)
        assert margin > 9
        assert set(eval_finite(case, 0).rows) == set()
        exact = eval_generalized(case).snapshot(case.low, case.high)
        assert exact  # all of [-4, 4]
        assert set(eval_finite(case, margin).rows) == exact

    def test_complement_windows(self):
        a = rel_1d(("0 + 2n", ""))
        case = case_over(Complement(Leaf("A")), A=a)
        finite = eval_finite(case, 0)
        assert set(finite.rows) == {(t,) for t in range(-3, 5, 2)}

    def test_row_cap_trips(self):
        a = rel_1d(("0 + 1n", ""))
        case = case_over(Leaf("A"), low=-50, high=50, A=a)
        with pytest.raises(OversizeError):
            eval_finite(case, 0, DiffConfig(row_cap=10))

    def test_select_predicate_matches_algebra(self):
        a = GeneralizedRelation.empty(T12)
        a.add_tuple(["0 + 2n", "1 + 3n"], "")
        expr = Select(Leaf("A"), "T1 <= T2 - 1 & T2 >= 0")
        case = case_over(expr, A=a)
        finite = eval_finite(case, 0)
        symbolic = eval_generalized(case)
        assert set(finite.rows) == symbolic.snapshot(case.low, case.high)


class TestRunCase:
    def test_clean_case_is_ok(self):
        a = rel_1d(("1 + 3n", ""))
        b = rel_1d(("0 + 2n", ""))
        result = run_case(case_over(Join(Leaf("A"), Leaf("B")), A=a, B=b))
        assert result.ok
        assert not result.divergences

    def test_generated_seeds_are_clean(self):
        for seed in range(40):
            result = run_case(generate_case(seed))
            assert not result.failing, result.summary()

    def test_oversize_is_a_skip_not_a_failure(self):
        a = rel_1d(("0 + 1n", ""))
        case = case_over(Leaf("A"), low=-50, high=50, A=a)
        result = run_case(case, DiffConfig(row_cap=10))
        assert result.status == "oversize"
        assert not result.failing

    def test_invalid_case_reports_error(self):
        case = case_over(Leaf("A"), A=rel_1d()).__class__(
            relations={}, expr=Leaf("A"), low=0, high=1
        )
        result = run_case(case)
        assert result.status == "error"
        assert result.failing

    def test_divergence_direction_labels(self):
        # Force a fake divergence by comparing against a case whose
        # expression evaluates fine; mutate the algebra via monkeypatch
        # in test_fuzz_shrink instead.  Here just check the ok path's
        # fields stay empty.
        result = run_case(case_over(Leaf("A"), A=rel_1d(("2", ""))))
        assert result.margin == 0
        assert result.retried is False

    def test_counts_metrics(self):
        from repro import obs

        registry = obs.get_registry()
        before = registry.counter("fuzz.cases").value
        run_case(case_over(Leaf("A"), A=rel_1d(("2", ""))))
        assert registry.counter("fuzz.cases").value == before + 1


class TestMargin:
    def test_no_project_no_margin(self):
        a = rel_1d(("0 + 2n", "T1 <= 99"))
        case = case_over(Complement(Leaf("A")), A=a)
        assert compute_margin(case) == 0

    def test_margin_grows_with_constants(self):
        small = GeneralizedRelation.empty(T12)
        small.add_tuple(["0 + 1n", "0 + 1n"], "T2 = T1 + 1")
        big = GeneralizedRelation.empty(T12)
        big.add_tuple(["0 + 1n", "0 + 1n"], "T2 = T1 + 50")
        expr = Project(Leaf("A"), ("T1",))
        m_small = compute_margin(case_over(expr, A=small))
        m_big = compute_margin(case_over(expr, A=big))
        assert m_big > m_small
        assert m_big > 50

    def test_margin_uses_only_referenced_relations(self):
        a = GeneralizedRelation.empty(T12)
        a.add_tuple(["0 + 1n", "0 + 1n"], "T2 = T1 + 2")
        noisy = GeneralizedRelation.empty(T12)
        noisy.add_tuple(["0 + 1n", "0 + 1n"], "T2 = T1 + 500")
        expr = Project(Leaf("A"), ("T1",))
        with_noise = Case(
            relations={"A": a, "B": noisy}, expr=expr, low=-4, high=4
        )
        without = case_over(expr, A=a)
        assert compute_margin(with_noise) == compute_margin(without)
