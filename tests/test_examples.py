"""Smoke tests: every example script runs cleanly and says what it should."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": ["smoke", "worker: bob"],
    "train_schedule.py": ["07:02 -> 08:20: True", "07:50: False"],
    "robot_factory.py": ["robot2", "True"],
    "airport_gates.py": ["RP999", "remaining conflicts: 0"],
    "presburger_sets.py": ["1 + 6n", "agreement: True"],
    "model_checking.py": ["G F Running(proc='C') : True", "F G !Down : True"],
    "factory_rules.py": ["robot1 ~> robot2", "t=16: robot1 -> robot2"],
}
# quickstart prints no literal "smoke"; assert on its real output instead.
EXPECTED_SNIPPETS["quickstart.py"] = ["3 + 10n", "worker: bob"]


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_SNIPPETS))
def test_example_runs(name):
    output = run_example(name)
    for snippet in EXPECTED_SNIPPETS[name]:
        assert snippet in output, f"{name}: missing {snippet!r}"
