"""Tests for the Datalog-style deductive layer."""

import pytest

from repro.core.errors import EvaluationError, ParseError, SchemaError
from repro.deductive import Program, Rule
from repro.query import Database


def robots_db() -> Database:
    db = Database()
    db.create("Perform", temporal=["t1", "t2"], data=["robot", "task"])
    p = db.relation("Perform")
    p.add_tuple(
        ["2 + 2n", "4 + 2n"], "t1 = t2 - 2 & t1 >= -1", ["robot1", "task1"]
    )
    p.add_tuple(["10n", "3 + 10n"], "t1 = t2 - 3", ["robot2", "task1"])
    return db


class TestRuleParsing:
    def test_basic(self):
        rule = Rule.parse("Busy(t, r) <- Perform(a, b, r, k) & a <= t")
        assert rule.head_name == "Busy"
        assert rule.head_vars == ("t", "r")

    def test_constants_in_head(self):
        rule = Rule.parse('Marked(t, "note") <- Tick(t)')
        assert rule.head_args[1].const == "note"
        rule = Rule.parse("AtZero(0, r) <- Robot(r)")
        assert rule.head_args[0].const == 0

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            Rule.parse("Busy(t, r)")

    def test_malformed_head(self):
        with pytest.raises(ParseError):
            Rule.parse("busy t <- Tick(t)")
        with pytest.raises(ParseError):
            Rule.parse("Busy(t,, r) <- Tick(t)")

    def test_repeated_head_var(self):
        with pytest.raises(ParseError):
            Rule.parse("Pair(t, t) <- Tick(t)")

    def test_str(self):
        rule = Rule.parse("Busy(t) <- Tick(t)")
        assert "Busy(t) <- Tick(t)" == str(rule)


class TestDeclarationAndSafety:
    def test_undeclared_head(self):
        program = Program()
        with pytest.raises(SchemaError):
            program.rule("Nope(t) <- Tick(t)")

    def test_double_declaration(self):
        program = Program()
        program.declare("P", temporal=["t"])
        with pytest.raises(SchemaError):
            program.declare("P", temporal=["t"])

    def test_unsafe_head_variable(self):
        db = robots_db()
        program = Program()
        program.declare("Ghost", temporal=["t"], data=["r"])
        program.rule('Ghost(t, r) <- Perform(a, b, r, "task1")')
        with pytest.raises(SchemaError):
            program.evaluate(db)

    def test_head_arity_mismatch(self):
        db = robots_db()
        program = Program()
        program.declare("P", temporal=["t"])
        program.rule("P(a, b) <- Perform(a, b, r, k)")
        with pytest.raises(SchemaError):
            program.evaluate(db)

    def test_sort_mismatch(self):
        db = robots_db()
        program = Program()
        program.declare("P", temporal=["t"])
        program.rule("P(r) <- Perform(a, b, r, k)")  # r is data-sorted
        with pytest.raises(SchemaError):
            program.evaluate(db)

    def test_dangling_negated_variable(self):
        db = robots_db()
        program = Program()
        program.declare("Q", data=["r"])
        program.rule(
            "Q(r) <- Perform(a, b, r, k) & ~(Perform(c, d, r, k2))"
        )
        with pytest.raises(SchemaError, match="only under negation"):
            program.evaluate(db)

    def test_idb_edb_clash(self):
        db = robots_db()
        program = Program()
        program.declare("Perform", temporal=["t"])
        program.rule("Perform(t) <- t >= 0 & t <= 0")
        with pytest.raises(SchemaError):
            program.evaluate(db)


class TestEvaluation:
    def test_projection_rule(self):
        db = robots_db()
        program = Program()
        program.declare("Robot", data=["r"])
        program.rule("Robot(r) <- Perform(a, b, r, k)")
        out = program.evaluate(db)
        robot = out.relation("Robot")
        assert robot.contains([], ["robot1"]) and robot.contains([], ["robot2"])
        assert len(list(robot.enumerate(0, 0))) == 2

    def test_interval_unfolding(self):
        """Busy(t, r): t inside some performance interval of r."""
        db = robots_db()
        program = Program()
        program.declare("Busy", temporal=["t"], data=["r"])
        program.rule("Busy(t, r) <- Perform(a, b, r, k) & a <= t & t <= b")
        busy = program.evaluate(db).relation("Busy")
        assert busy.contains([3], ["robot1"])
        assert busy.contains([1000001], ["robot1"])
        assert not busy.contains([5], ["robot2"])  # 10n..10n+3 misses 5

    def test_constant_head_argument(self):
        db = robots_db()
        program = Program()
        program.declare("Tag", temporal=["t"], data=["label"])
        program.rule('Tag(t, "start") <- Perform(t, b, r, k)')
        tag = program.evaluate(db).relation("Tag")
        assert tag.contains([2], ["start"])
        assert tag.schema.data_names == ("label",)

    def test_multiple_rules_union(self):
        db = robots_db()
        program = Program()
        program.declare("Endpoint", temporal=["t"])
        program.rule("Endpoint(t) <- Perform(t, b, r, k)")
        program.rule("Endpoint(t) <- Perform(a, t, r, k)")
        endpoint = program.evaluate(db).relation("Endpoint")
        assert endpoint.contains([2]) and endpoint.contains([4])
        assert endpoint.contains([0]) and endpoint.contains([3])

    def test_edb_unchanged(self):
        db = robots_db()
        before = db.relation("Perform").snapshot(0, 10)
        program = Program()
        program.declare("Robot", data=["r"])
        program.rule("Robot(r) <- Perform(a, b, r, k)")
        program.evaluate(db)
        assert db.relation("Perform").snapshot(0, 10) == before
        assert "Robot" not in db  # result is a new database


class TestRecursion:
    def test_transitive_closure(self):
        db = Database()
        db.create("Next", temporal=["a", "b"])
        db.relation("Next").add_tuple(
            ["4n", "4n"], "a = b - 4 & a >= 0 & a <= 12"
        )
        program = Program()
        program.declare("Reach", temporal=["a", "b"])
        program.rule("Reach(a, b) <- Next(a, b)")
        program.rule("Reach(a, c) <- Reach(a, b) & Next(b, c)")
        reach = program.evaluate(db).relation("Reach")
        expected = {
            (a, b)
            for a in range(0, 17, 4)
            for b in range(a + 4, 17, 4)
        }
        assert reach.snapshot(0, 16) == expected

    def test_semantic_fixpoint_on_periodic_relation(self):
        """Recursion over an *infinite* relation still reaches a fixpoint
        when the derived set stabilizes as a point set."""
        db = Database()
        db.create("Shift2", temporal=["a", "b"])
        # a -> a+2 for all even a (infinite!)
        db.relation("Shift2").add_tuple(["2n", "2n"], "a = b - 2")
        program = Program()
        program.declare("Even2", temporal=["a", "b"])
        program.rule("Even2(a, b) <- Shift2(a, b)")
        # composing a->a+2 with itself gives a->a+4; the union a->a+2,
        # a->a+4, ... keeps growing, so bound the hop count via
        # constraints to keep a fixpoint reachable:
        program.rule(
            "Even2(a, c) <- Even2(a, b) & Shift2(b, c) & c <= a + 6"
        )
        even2 = program.evaluate(db).relation("Even2")
        assert even2.contains([0, 2]) and even2.contains([0, 4])
        assert even2.contains([0, 6]) and not even2.contains([0, 8])
        assert even2.contains([100, 106])

    def test_divergence_guarded(self):
        db = Database()
        db.create("Seed", temporal=["t"])
        db.relation("Seed").add_tuple([0])
        program = Program()
        program.declare("Up", temporal=["t"])
        program.rule("Up(t) <- Seed(t)")
        program.rule("Up(t) <- Up(s) & t = s + 1 & t >= s")
        with pytest.raises(EvaluationError, match="fixpoint"):
            program.evaluate(db, max_iterations=5)


class TestStratifiedNegation:
    def test_idle_robots(self):
        db = robots_db()
        program = Program()
        program.declare("Robot", data=["r"])
        program.declare("Idle", temporal=["t"], data=["r"])
        program.rule("Robot(r) <- Perform(a, b, r, k)")
        program.rule(
            "Idle(t, r) <- Robot(r) & t >= 0 & t <= 5 & "
            "~(EXISTS a. EXISTS b. EXISTS k. "
            "Perform(a, b, r, k) & a <= t & t <= b)"
        )
        idle = program.evaluate(db).relation("Idle")
        # robot1 covers [2n, 2n+2] from -1 on: never idle in [0,5].
        # robot2 covers [10n, 10n+3]: idle at 4 and 5.
        assert idle.snapshot(0, 5) == {(4, "robot2"), (5, "robot2")}

    def test_stratification_order(self):
        db = robots_db()
        program = Program()
        program.declare("A", data=["r"])
        program.declare("B", data=["r"])
        program.rule("A(r) <- Perform(x, y, r, k)")
        program.rule('B(r) <- A(r) & ~(A("no-such-robot"))')
        strata = program.stratify(db.schemas())
        flat = [s for layer in strata for s in layer]
        assert flat.index("A") < flat.index("B")

    def test_negation_cycle_rejected(self):
        db = robots_db()
        program = Program()
        program.declare("P", data=["r"])
        program.declare("Q", data=["r"])
        program.rule("P(r) <- Perform(a, b, r, k) & ~Q(r)")
        program.rule("Q(r) <- Perform(a, b, r, k) & ~P(r)")
        with pytest.raises(EvaluationError, match="stratifiable"):
            program.evaluate(db)
