"""Tests for the plan rewrite passes (pushdown, reordering, CSE)."""

from repro.core.relations import GeneralizedRelation, Schema
from repro.plan import nodes as ir
from repro.plan.cost import CostModel
from repro.plan.nodes import truth_literal, universe_literal
from repro.plan.rewrite import (
    collapse_projects,
    dedup_subtrees,
    fold_constants,
    fuse_selects,
    optimize_plan,
    push_projects,
    push_selects,
    reorder_joins,
)

T1 = Schema.make(temporal=["t"])
TT = Schema.make(temporal=["t1", "t2"])


def scan(name: str = "R", schema: Schema = TT) -> ir.Scan:
    return ir.Scan(name, schema)


def stored(schema: Schema, n: int) -> GeneralizedRelation:
    rel = GeneralizedRelation.empty(schema)
    for i in range(n):
        rel.add_tuple([str(2 * i + 1)] * len(schema))
    return rel


class TestFoldConstants:
    def test_truth_seed_dropped(self):
        tree = ir.Join(truth_literal(True), scan(), labels=(("join", "x"),))
        folded, count = fold_constants(tree)
        assert count == 1
        assert isinstance(folded, ir.Scan)
        # The dropped join's provenance moved onto the survivor.
        assert folded.labels[0] == ("join", "x")

    def test_selected_universe_becomes_selection(self):
        comparison = ir.Select(universe_literal(["t1"]), "t1 >= 0")
        tree = ir.Join(scan(), comparison)
        folded, count = fold_constants(tree)
        assert count == 1
        assert isinstance(folded, ir.Select)
        assert folded.condition == "t1 >= 0"
        assert isinstance(folded.child, ir.Scan)

    def test_universe_needs_attribute_on_other_side(self):
        comparison = ir.Select(universe_literal(["z"]), "z >= 0")
        tree = ir.Join(scan(), comparison)
        folded, count = fold_constants(tree)
        assert count == 0 and folded is tree

    def test_empty_union_folds(self):
        from repro.plan.nodes import empty_literal

        tree = ir.Union(empty_literal(TT), scan())
        folded, count = fold_constants(tree)
        assert count == 1 and isinstance(folded, ir.Scan)


class TestSelectionPasses:
    def test_fuse_adjacent_selects(self):
        tree = ir.Select(ir.Select(scan(), "t1 >= 0"), "t2 <= 5")
        fused, count = fuse_selects(tree)
        assert count == 1
        assert isinstance(fused, ir.Select)
        assert fused.condition == "t2 <= 5 & t1 >= 0"
        assert isinstance(fused.child, ir.Scan)

    def test_push_select_through_union(self):
        tree = ir.Select(ir.Union(scan("A"), scan("B")), "t1 >= 0")
        pushed, count = push_selects(tree)
        assert count == 1
        assert isinstance(pushed, ir.Union)
        assert all(isinstance(c, ir.Select) for c in pushed.children)

    def test_push_select_splits_across_join(self):
        left = scan("A", Schema.make(temporal=["x"]))
        right = scan("B", Schema.make(temporal=["y"]))
        tree = ir.Select(ir.Join(left, right), "x >= 0 & y <= 3 & x <= y")
        pushed, count = push_selects(tree)
        assert count == 1
        # The cross-side atom stays in an outer selection.
        assert isinstance(pushed, ir.Select)
        assert pushed.condition == "x <= y"
        join = pushed.child
        assert isinstance(join, ir.Join)
        assert join.left.condition == "x >= 0"
        assert join.right.condition == "y <= 3"

    def test_push_select_through_rename(self):
        tree = ir.Select(
            ir.Rename(scan(), (("t1", "a"), ("t2", "b"))), "a <= b + 2"
        )
        pushed, count = push_selects(tree)
        assert count == 1
        assert isinstance(pushed, ir.Rename)
        assert pushed.child.condition == "t1 <= t2 + 2"

    def test_push_select_stops_at_complement(self):
        tree = ir.Select(ir.Complement(scan()), "t1 >= 0")
        pushed, count = push_selects(tree)
        assert count == 0 and pushed is tree

    def test_push_select_minuend_only(self):
        tree = ir.Select(ir.Subtract(scan("A"), scan("B")), "t1 >= 0")
        pushed, count = push_selects(tree)
        assert count == 1
        assert isinstance(pushed, ir.Subtract)
        assert isinstance(pushed.left, ir.Select)
        assert isinstance(pushed.right, ir.Scan)


class TestProjectionPasses:
    def test_push_project_narrows_join(self):
        left = scan("A", Schema.make(temporal=["x", "y"]))
        right = scan("B", Schema.make(temporal=["y", "z"]))
        tree = ir.Project(ir.Join(left, right), ("x",))
        pushed, count = push_projects(tree)
        assert count >= 1
        join = pushed.child
        assert isinstance(join, ir.Join)
        # Right side narrowed to the shared attribute only.
        assert join.right.schema.names == ("y",)

    def test_push_project_stops_at_subtract(self):
        tree = ir.Project(ir.Subtract(scan("A"), scan("B")), ("t1",))
        pushed, count = push_projects(tree)
        assert count == 0 and pushed is tree

    def test_collapse_chain_and_identity(self):
        tree = ir.Project(ir.Project(scan(), ("t1", "t2")), ("t1",))
        collapsed, count = collapse_projects(tree)
        assert count == 1  # the chain merged into one projection
        assert isinstance(collapsed, ir.Project)
        assert collapsed.names == ("t1",)
        assert isinstance(collapsed.child, ir.Scan)

    def test_identity_project_dropped(self):
        tree = ir.Project(scan(), ("t1", "t2"))
        collapsed, count = collapse_projects(tree)
        assert count == 1 and isinstance(collapsed, ir.Scan)


class TestReorderJoins:
    def test_small_chains_untouched(self):
        tree = ir.Join(scan("A"), scan("B", Schema.make(temporal=["t1"])))
        model = CostModel(relations={}, domain_size=0)
        out, count = reorder_joins(tree, model)
        assert count == 0 and out is tree

    def test_chain_reordered_by_size(self):
        a = scan("A", Schema.make(temporal=["x"]))
        b = scan("B", Schema.make(temporal=["x", "y"]))
        c = scan("C", Schema.make(temporal=["y"]))
        relations = {
            "A": stored(a.schema, 3),
            "B": stored(b.schema, 40),
            "C": stored(c.schema, 1),
        }
        tree = ir.Join(ir.Join(b, a), c)
        model = CostModel(relations=relations, domain_size=0)
        out, count = reorder_joins(tree, model)
        assert count == 1
        # The big relation B no longer leads the chain.
        leaves = [n for n in out.walk() if isinstance(n, ir.Scan)]
        assert leaves[0].name != "B"
        # Schema (column order) is preserved via a wrapping projection.
        assert tuple(out.schema.names) == tuple(tree.schema.names)


class TestDedup:
    def test_shared_subtrees_interned(self):
        left = ir.Select(scan(), "t1 >= 0")
        right = ir.Select(scan(), "t1 >= 0")
        assert left is not right
        out, hits = dedup_subtrees(ir.Union(left, right))
        assert hits >= 1
        assert out.left is out.right

    def test_labels_do_not_block_interning(self):
        left = ir.Select(scan(), "t1 >= 0").add_label("compare")
        right = ir.Select(scan(), "t1 >= 0")
        out, hits = dedup_subtrees(ir.Union(left, right))
        assert hits >= 1
        assert out.left is out.right


class TestPipeline:
    def test_reports_cover_every_pass(self):
        tree = ir.Join(truth_literal(True), scan())
        out, reports = optimize_plan(tree)
        names = [r.name for r in reports]
        assert names == [
            "fold-constants",
            "fuse-selects",
            "push-selects",
            "push-projects",
            "collapse-projects",
            "reorder-joins",
            "dedup-subtrees",
        ]
        assert reports[0].rewrites == 1
        assert reports[0].nodes_after < reports[0].nodes_before
        assert isinstance(out, ir.Scan)

    def test_planner_metrics_emitted(self):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        before = registry.snapshot()["counters"].get("planner.optimized", 0)
        optimize_plan(ir.Join(truth_literal(True), scan()))
        counters = registry.snapshot()["counters"]
        assert counters.get("planner.optimized", 0) == before + 1
        assert counters.get("planner.pass.fold-constants", 0) >= 1

    def test_fixture_query_pushdown_is_visible(self):
        """ISSUE acceptance: pushdown + folding visible on Even(t) & t >= 0."""
        from repro.query import Database

        db = Database()
        db.create("Even", temporal=["t"])
        db.relation("Even").add_tuple(["2n"])
        report = db.plan("Even(t) & t >= 0", optimize=True)
        # The naive plan joins against a selected universe ...
        assert any(
            isinstance(n, ir.Literal) and n.token[0] == "universe"
            for n in report.naive.walk()
        )
        # ... the optimized plan turned it into a pushed-down selection
        # sitting directly on the scan.
        selects = [
            n for n in report.plan.walk() if isinstance(n, ir.Select)
        ]
        assert len(selects) == 1
        assert isinstance(selects[0].child, ir.Scan)
        assert report.plan.size() < report.naive.size()
        assert sum(p.rewrites for p in report.passes) >= 3
