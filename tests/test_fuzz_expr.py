"""Tests for the fuzz harness's expression trees and case serialization."""

import pytest

from repro.core.errors import ReproValueError, SchemaError
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.fuzz.case import Case, case_from_dict, load_case
from repro.fuzz.expr import (
    Complement,
    Intersect,
    Join,
    Leaf,
    Product,
    Project,
    Select,
    Subtract,
    Union,
    expr_from_dict,
)

T1 = Schema.make(temporal=["T1"])
T12 = Schema.make(temporal=["T1", "T2"])
T12D = Schema.make(temporal=["T1", "T2"], data=["D1"])


def env(**schemas):
    return dict(schemas)


class TestSchemas:
    def test_leaf(self):
        assert Leaf("R").schema(env(R=T1)) == T1
        with pytest.raises(SchemaError):
            Leaf("missing").schema(env(R=T1))

    def test_set_ops_require_equal_schemas(self):
        e = env(A=T1, B=T1, C=T12)
        assert Union(Leaf("A"), Leaf("B")).schema(e) == T1
        for cls in (Union, Intersect, Subtract):
            with pytest.raises(SchemaError):
                cls(Leaf("A"), Leaf("C")).schema(e)

    def test_join_merges_shared_names(self):
        e = env(A=T12, B=Schema.make(temporal=["T2", "T3"]))
        joined = Join(Leaf("A"), Leaf("B")).schema(e)
        assert joined.names == ("T1", "T2", "T3")

    def test_join_rejects_kind_mismatch(self):
        e = env(A=T12D, B=Schema.make(temporal=["D1"]))
        with pytest.raises(SchemaError):
            Join(Leaf("A"), Leaf("B")).schema(e)

    def test_product_requires_disjoint_names(self):
        e = env(A=T1, B=Schema.make(temporal=["T2"]), C=T1)
        assert Product(Leaf("A"), Leaf("B")).schema(e).names == ("T1", "T2")
        with pytest.raises(SchemaError):
            Product(Leaf("A"), Leaf("C")).schema(e)

    def test_select_checks_attribute_names(self):
        e = env(A=T12D)
        assert Select(Leaf("A"), "T1 <= T2 + 3").schema(e) == T12D
        with pytest.raises(SchemaError):
            Select(Leaf("A"), "T9 <= 0").schema(e)
        with pytest.raises(SchemaError):
            Select(Leaf("A"), "T1 <= D1").schema(e)

    def test_project_subset_and_reorder(self):
        e = env(A=T12D)
        out = Project(Leaf("A"), ("D1", "T2")).schema(e)
        assert out.names == ("D1", "T2")
        with pytest.raises(SchemaError):
            Project(Leaf("A"), ("T1", "T1")).schema(e)
        with pytest.raises(SchemaError):
            Project(Leaf("A"), ("nope",)).schema(e)

    def test_complement_preserves_schema(self):
        assert Complement(Leaf("A")).schema(env(A=T12)) == T12


class TestStructure:
    def test_walk_size_leaves(self):
        tree = Union(Project(Leaf("A"), ("T1",)), Leaf("B"))
        assert tree.size() == 4
        assert tree.leaf_names() == {"A", "B"}
        assert [type(n).__name__ for n in tree.walk()] == [
            "Union", "Project", "Leaf", "Leaf",
        ]

    def test_with_children_rebuilds_same_op(self):
        tree = Subtract(Leaf("A"), Leaf("B"))
        rebuilt = tree.with_children([Leaf("X"), Leaf("Y")])
        assert isinstance(rebuilt, Subtract)
        assert rebuilt.leaf_names() == {"X", "Y"}

    def test_distinct_ops_are_unequal(self):
        assert Union(Leaf("A"), Leaf("B")) != Intersect(Leaf("A"), Leaf("B"))

    def test_str_is_readable(self):
        tree = Select(Complement(Leaf("R")), "T1 >= 0")
        assert str(tree) == "select[T1 >= 0](complement(R))"


class TestExprRoundTrip:
    def test_round_trip_all_node_kinds(self):
        tree = Union(
            Subtract(
                Project(Select(Leaf("A"), "T1 <= 2"), ("T1",)),
                Complement(Leaf("B")),
            ),
            Intersect(
                Leaf("B"),
                Project(Join(Leaf("A"), Product(Leaf("C"), Leaf("D"))), ("T1",)),
            ),
        )
        assert expr_from_dict(tree.to_dict()) == tree

    def test_malformed_payloads(self):
        with pytest.raises(ReproValueError):
            expr_from_dict({"op": "frobnicate"})
        with pytest.raises(ReproValueError):
            expr_from_dict({"op": "union", "left": {"op": "leaf", "name": "A"}})


class TestCase:
    def make_case(self):
        r = GeneralizedRelation.empty(T1)
        r.add_tuple(["1 + 3n"], "T1 >= -2")
        return Case(
            relations={"R": r},
            expr=Complement(Leaf("R")),
            low=-4,
            high=4,
            seed=99,
            note="hand-built",
        )

    def test_validate_and_describe(self):
        case = self.make_case()
        case.validate()
        assert case.result_schema() == T1
        assert case.total_tuples() == 1
        assert "seed=99" in case.describe()

    def test_validate_requires_data_domains(self):
        r = relation(temporal=["T1"], data=["D1"])
        r.add_tuple([2], data=["a"])
        case = Case(relations={"R": r}, expr=Leaf("R"), low=0, high=1)
        with pytest.raises(ReproValueError):
            case.validate()
        ok = Case(
            relations={"R": r},
            expr=Leaf("R"),
            low=0,
            high=1,
            data_domains={"D1": ["a", "b"]},
        )
        ok.validate()

    def test_json_round_trip(self, tmp_path):
        case = self.make_case()
        back = case_from_dict(__import__("json").loads(case.dumps()))
        assert back.expr == case.expr
        assert back.low == case.low and back.high == case.high
        assert back.seed == 99 and back.note == "hand-built"
        assert back.relations["R"].snapshot(-20, 20) == case.relations[
            "R"
        ].snapshot(-20, 20)

    def test_save_and_load(self, tmp_path):
        case = self.make_case()
        path = case.save(tmp_path / "case.json")
        loaded = load_case(path)
        assert loaded.expr == case.expr
        assert loaded.relations["R"] == case.relations["R"]

    def test_malformed_case_payload(self):
        with pytest.raises(ReproValueError):
            case_from_dict({"format": "other/9"})
        with pytest.raises(ReproValueError):
            case_from_dict({"format": "repro-fuzz-case/1"})
