"""Tests for the ``repro fuzz`` command-line entry point."""

import json

from repro.cli import main as repro_main
from repro.core.dbm import DBM
from repro.fuzz.case import load_case
from repro.fuzz.cli import fuzz_main
from repro.fuzz.gen import generate_case


class TestFuzzMain:
    def test_small_clean_run_exits_zero(self, capsys):
        assert fuzz_main(["--seed", "0", "--budget", "8"]) == 0
        out = capsys.readouterr().out
        assert "8 case(s)" in out
        assert "divergent=0" in out

    def test_dispatch_through_repro_cli(self, capsys):
        assert repro_main(["fuzz", "--seed", "1", "--budget", "3"]) == 0
        assert "3 case(s)" in capsys.readouterr().out

    def test_trace_prints_fuzz_metrics(self, capsys):
        assert fuzz_main(["--seed", "2", "--budget", "2", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "fuzz.cases" in out

    def test_window_and_max_ops_flags(self, capsys):
        code = fuzz_main(
            ["--seed", "4", "--budget", "3", "--window", "-2", "2",
             "--max-ops", "2"]
        )
        assert code == 0

    def test_replay_corpus_file(self, tmp_path, capsys):
        path = tmp_path / "case.json"
        generate_case(17).save(path)
        assert fuzz_main(["--replay", str(path)]) == 0
        assert "1 case(s)" in capsys.readouterr().out

    def test_time_limit_truncates(self, capsys):
        code = fuzz_main(
            ["--seed", "5", "--budget", "100000", "--time-limit", "0"]
        )
        assert code == 0
        assert "time limit reached" in capsys.readouterr().out

    def test_failure_writes_shrunk_repro_and_exits_one(
        self, tmp_path, monkeypatch, capsys
    ):
        # Same drill as test_fuzz_shrink, end to end through the CLI:
        # inject the off-by-one mutant, fuzz a small budget known to
        # catch it, and check a shrunk repro lands in --out.
        clean = DBM.add_upper

        def flipped(self, i, bound):
            return clean(self, i, bound + 1)

        monkeypatch.setattr(DBM, "add_upper", flipped)
        out_dir = tmp_path / "failures"
        code = fuzz_main(
            ["--seed", "0", "--budget", "40", "--out", str(out_dir),
             "--shrink-evals", "80"]
        )
        monkeypatch.setattr(DBM, "add_upper", clean)
        assert code == 1
        written = sorted(out_dir.glob("*.json"))
        assert written, "no repro files were written"
        repro = load_case(written[0])
        assert repro.note  # provenance recorded
        payload = json.loads(written[0].read_text())
        assert payload["format"] == "repro-fuzz-case/1"
        text = capsys.readouterr().out
        assert "FAIL" in text
        assert "repro written to" in text
