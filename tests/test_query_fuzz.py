"""Fuzzing the first-order query evaluator against brute-force semantics.

Random quantifier-free queries over random databases: the symbolic
result must match direct FO evaluation where quantified/free variables
range over a window.  Quantifiers over the temporal sort genuinely
range over all of Z symbolically, so the brute-force comparison
restricts to queries whose truth is window-determined:

* quantifier-free bodies (free variables compared pointwise);
* bounded existentials (witnesses, if any, lie inside the window by
  construction of the generators: all constants are small).
"""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import GeneralizedRelation, Schema
from repro.query import Database
from repro.query.ast import (
    And,
    Cmp,
    CmpOp,
    Not,
    Or,
    Pred,
    TempConst,
    TempVar,
)

WINDOW = (-7, 7)
VARS = ["t", "u"]


def random_database(rng: random.Random) -> Database:
    """Two unary relations and one binary, small periods and bounds."""
    db = Database()
    for name in ("P", "Q"):
        db.create(name, temporal=["x"])
        rel = db.relation(name)
        for _ in range(rng.randint(1, 2)):
            period = rng.choice([1, 2, 3, 4])
            offset = rng.randrange(period)
            bound = rng.randint(-5, 5)
            constraint = rng.choice(["", f"x >= {bound}", f"x <= {bound}"])
            rel.add_tuple([f"{offset} + {period}n"], constraint)
    db.create("R", temporal=["x", "y"])
    rel = db.relation("R")
    for _ in range(rng.randint(1, 2)):
        p1, p2 = rng.choice([1, 2, 3]), rng.choice([1, 2, 3])
        constraint = rng.choice(
            ["", "x <= y", f"x = y - {rng.randint(0, 3)}"]
        )
        rel.add_tuple(
            [f"{rng.randrange(p1)} + {p1}n", f"{rng.randrange(p2)} + {p2}n"],
            constraint,
        )
    return db


def random_qf_query(rng: random.Random, depth: int = 2):
    """A random quantifier-free query over variables t, u."""
    if depth == 0 or rng.random() < 0.4:
        choice = rng.random()
        if choice < 0.3:
            return Pred("P", (TempVar(rng.choice(VARS), rng.randint(-2, 2)),))
        if choice < 0.5:
            return Pred("Q", (TempVar(rng.choice(VARS)),))
        if choice < 0.75:
            return Pred(
                "R",
                (
                    TempVar("t", rng.randint(-1, 1)),
                    TempVar("u", rng.randint(-1, 1)),
                ),
            )
        left = TempVar(rng.choice(VARS), rng.randint(-2, 2))
        right = rng.choice(
            [TempVar(rng.choice(VARS)), TempConst(rng.randint(-4, 4))]
        )
        return Cmp(left, rng.choice(list(CmpOp)), right)
    connective = rng.random()
    if connective < 0.4:
        return And((random_qf_query(rng, depth - 1), random_qf_query(rng, depth - 1)))
    if connective < 0.8:
        return Or((random_qf_query(rng, depth - 1), random_qf_query(rng, depth - 1)))
    return Not(random_qf_query(rng, depth - 1))


def brute_truth(db: Database, query, env: dict[str, int]) -> bool:
    """Direct FO evaluation of a quantifier-free query."""
    if isinstance(query, Pred):
        rel = db.relation(query.name)
        point = []
        for arg in query.args:
            if isinstance(arg, TempVar):
                point.append(env[arg.name] + arg.offset)
            else:
                point.append(arg.value)
        return rel.contains(point)
    if isinstance(query, Cmp):
        def value(term):
            if isinstance(term, TempVar):
                return env[term.name] + term.offset
            return term.value

        return query.op.holds(value(query.left), value(query.right))
    if isinstance(query, And):
        return all(brute_truth(db, p, env) for p in query.parts)
    if isinstance(query, Or):
        return any(brute_truth(db, p, env) for p in query.parts)
    if isinstance(query, Not):
        return not brute_truth(db, query.body, env)
    raise TypeError(query)


class TestQuantifierFreeFuzz:
    @given(st.integers(0, 100_000))
    @settings(max_examples=120, deadline=None)
    def test_symbolic_matches_pointwise(self, seed):
        rng = random.Random(seed)
        db = random_database(rng)
        query = random_qf_query(rng)
        from repro.query.ast import free_variables

        free = sorted(free_variables(query))
        result = db.query(query)
        # The result schema's temporal order is sorted, matching `free`.
        assert tuple(result.schema.names) == tuple(free)
        for values in itertools.product(
            range(WINDOW[0], WINDOW[1] + 1), repeat=len(free)
        ):
            env = dict(zip(free, values))
            expected = brute_truth(db, query, env)
            got = (
                result.contains(values)
                if free
                else not result.is_empty()
            )
            assert got == expected, (env, str(query))


class TestBoundedExistentialFuzz:
    @given(st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_exists_one_var(self, seed):
        """∃t φ(t, u) with φ quantifier-free: compare the u-sets.

        All generator constants are <= 5 and periods <= 4, so every
        satisfiable (φ, u) pair has a witness within ±60 of u; the brute
        window accounts for that margin.
        """
        rng = random.Random(seed)
        db = random_database(rng)
        body = random_qf_query(rng)
        from repro.query.ast import Exists, Sort, free_variables

        if "t" not in free_variables(body):
            return
        query = Exists("t", Sort.TEMPORAL, body)
        result = db.query(query)
        remaining = sorted(free_variables(query))
        for values in itertools.product(
            range(-4, 5), repeat=len(remaining)
        ):
            env = dict(zip(remaining, values))
            expected = any(
                brute_truth(db, body, {**env, "t": witness})
                for witness in range(-60, 61)
            )
            got = (
                result.contains(values)
                if remaining
                else not result.is_empty()
            )
            assert got == expected, (env, str(query))
