"""Unit tests for the relation-expression IR and the engine registry."""

import pytest

from repro.core.errors import ReproTypeError, ReproValueError, SchemaError
from repro.core.relations import GeneralizedRelation, Schema
from repro.plan import nodes as ir
from repro.plan.engine import (
    Engine,
    ExecutionContext,
    NativeEngine,
    engines,
    get_engine,
    register_engine,
    resolve_engine,
)
from repro.plan.nodes import (
    empty_literal,
    singleton_literal,
    truth_literal,
    universe_literal,
)

TT = Schema.make(temporal=["t1", "t2"])
TD = Schema.make(temporal=["t"], data=["d"])


def scan(name: str = "R", schema: Schema = TT) -> ir.Scan:
    return ir.Scan(name, schema)


class TestSchemaInference:
    def test_scan_and_select(self):
        node = ir.Select(scan(), "t1 <= t2 + 3")
        assert node.schema == TT

    def test_select_rejects_unknown_attribute(self):
        node = ir.Select(scan(), "t1 <= bogus")
        with pytest.raises(SchemaError):
            node.schema

    def test_select_rejects_data_attribute(self):
        node = ir.Select(scan("S", TD), "d >= 0")
        with pytest.raises(SchemaError):
            node.schema

    def test_project_reorders(self):
        node = ir.Project(scan(), ("t2", "t1"))
        assert node.schema.names == ("t2", "t1")

    def test_rename(self):
        node = ir.Rename(scan(), (("t1", "a"), ("t2", "b")))
        assert node.schema.names == ("a", "b")
        assert all(a.temporal for a in node.schema.attributes)

    def test_join_merges(self):
        left = scan("A", Schema.make(temporal=["x", "y"]))
        right = scan("B", Schema.make(temporal=["y", "z"]))
        assert ir.Join(left, right).schema.names == ("x", "y", "z")

    def test_join_rejects_sort_conflict(self):
        left = scan("A", Schema.make(temporal=["x"]))
        right = scan("B", Schema.make(data=["x"]))
        with pytest.raises(SchemaError):
            ir.Join(left, right).schema

    def test_product_rejects_overlap(self):
        with pytest.raises(SchemaError):
            ir.Product(scan("A"), scan("B")).schema

    def test_setop_rejects_mismatch(self):
        with pytest.raises(SchemaError):
            ir.Union(scan("A"), scan("B", TD)).schema

    def test_data_nodes(self):
        assert ir.DataDomain("d").schema.data_names == ("d",)
        assert ir.DataDiag("y", "x").schema.names == ("x", "y")

    def test_unary_passthrough(self):
        base = scan()
        for node in (
            ir.Complement(base),
            ir.Guard(base),
            ir.Shift(base, "t1", 3),
        ):
            assert node.schema == TT


class TestStructure:
    def test_nodes_are_frozen(self):
        node = scan()
        with pytest.raises(AttributeError):
            node.name = "other"

    def test_children_and_walk(self):
        tree = ir.Join(ir.Select(scan("A"), "t1 >= 0"), scan("B", TD))
        assert [n.op for n in tree.walk()] == [
            "join", "select", "scan", "scan",
        ]
        assert tree.size() == 4

    def test_replace_children_arity_checked(self):
        tree = ir.Complement(scan())
        with pytest.raises(SchemaError):
            tree.replace_children((scan(), scan()))

    def test_key_ignores_labels(self):
        plain = ir.Select(scan(), "t1 >= 0")
        labeled = plain.add_label("compare", "t1 >= 0")
        assert plain.key() == labeled.key()
        assert plain != labeled

    def test_add_label_prepends(self):
        node = scan().add_label("inner").add_label("outer")
        assert [op for op, _ in node.labels] == ["outer", "inner"]

    def test_literal_identity_by_token(self):
        assert truth_literal(True) == truth_literal(True)
        assert truth_literal(True) != truth_literal(False)
        assert universe_literal(["t"]) == universe_literal(["t"])

    def test_to_dict_and_render(self):
        tree = ir.Project(
            ir.Select(scan(), "t1 >= 0").add_label("compare", "t1 >= 0"),
            ("t1",),
        )
        payload = tree.to_dict()
        assert payload["op"] == "project"
        assert payload["children"][0]["labels"] == [["compare", "t1 >= 0"]]
        text = str(tree)
        assert "project[t1]" in text and "select[t1 >= 0]" in text

    def test_literal_constructors(self):
        assert len(truth_literal(True).relation) == 1
        assert len(truth_literal(False).relation) == 0
        assert empty_literal(TT).relation.is_empty()
        single = singleton_literal("d", "v")
        assert len(single.relation) == 1
        assert single.relation.schema.data_names == ("d",)


class TestEngineRegistry:
    def test_native_is_registered(self):
        assert "native" in engines()
        assert isinstance(get_engine("native"), NativeEngine)

    def test_unknown_engine(self):
        with pytest.raises(ReproValueError, match="unknown engine"):
            get_engine("warp-drive")

    def test_register_type_checked(self):
        with pytest.raises(ReproTypeError):
            register_engine("not an engine")

    def test_resolve(self):
        native = get_engine("native")
        assert resolve_engine(None) is native
        assert resolve_engine("native") is native
        assert resolve_engine(native) is native
        with pytest.raises(ReproTypeError):
            resolve_engine(42)

    def test_custom_engine_runs_queries(self):
        calls = []

        class Recording(Engine):
            name = "recording-test"

            def run(self, plan, ctx):
                calls.append(plan.op)
                return get_engine("native").run(plan, ctx)

        register_engine(Recording())
        try:
            from repro.query import Database

            db = Database()
            db.create("Even", temporal=["t"])
            db.relation("Even").add_tuple(["2n"])
            result = db.query("Even(t)", engine="recording-test")
            assert result.contains([4]) and not result.contains([3])
            assert calls  # the custom engine was actually used
        finally:
            from repro.plan import engine as engine_mod

            engine_mod._ENGINES.pop("recording-test", None)


class TestNativeEngine:
    def test_scan_missing_relation(self):
        from repro.core.errors import EvaluationError

        ctx = ExecutionContext(relations={})
        with pytest.raises(EvaluationError, match="unknown relation"):
            get_engine("native").run(scan("Missing"), ctx)

    def test_memo_computes_shared_subtree_once(self):
        rel = GeneralizedRelation.empty(TT)
        rel.add_tuple(["1", "2"])
        shared = ir.Select(scan(), "t1 <= t2")
        tree = ir.Union(shared, shared)
        seen = []
        ctx = ExecutionContext(
            relations={"R": rel},
            memo={},
            on_result=lambda node, result: seen.append(id(node)),
        )
        out = get_engine("native").run(tree, ctx)
        assert not out.is_empty()
        # The shared select (and the scan below it) ran once, not twice.
        assert seen.count(id(shared)) == 1

    def test_on_pair_hook_fires(self):
        rel = GeneralizedRelation.empty(TT)
        rel.add_tuple(["1", "2"])
        pairs = []
        ctx = ExecutionContext(
            relations={"R": rel},
            on_pair=lambda node, l, r: pairs.append((node.op, l, r)),
        )
        get_engine("native").run(ir.Intersect(scan(), scan()), ctx)
        assert pairs == [("intersect", 1, 1)]
