"""Tests for the 3-SAT substrate and the Theorem 3.6 reduction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    Clause,
    Instance,
    Literal,
    clause,
    complement_is_nonempty,
    instance,
    instance_to_relation,
    random_3sat,
    solve,
    solve_via_complement,
)


class TestInstances:
    def test_literal(self):
        lit = Literal(0, True)
        assert lit.holds({0: True}) and not lit.holds({0: False})
        assert lit.negated() == Literal(0, False)
        assert str(lit) == "x0" and str(lit.negated()) == "~x0"

    def test_clause_builder(self):
        c = clause((0, True), (1, False))
        assert c.holds({0: False, 1: False})
        assert not c.holds({0: False, 1: True})
        assert c.variables() == {0, 1}

    def test_out_of_range_literal(self):
        with pytest.raises(ValueError):
            instance(1, [clause((3, True))])

    def test_brute_force(self):
        sat = instance(2, [clause((0, True)), clause((1, False))])
        model = sat.brute_force_satisfiable()
        assert model == {0: True, 1: False}
        unsat = instance(1, [clause((0, True)), clause((0, False))])
        assert unsat.brute_force_satisfiable() is None

    def test_random_generator_deterministic(self):
        a = random_3sat(6, 10, seed=42)
        b = random_3sat(6, 10, seed=42)
        assert a == b
        assert len(a.clauses) == 10
        for c in a.clauses:
            assert len(c.variables()) == 3

    def test_random_generator_needs_3_vars(self):
        with pytest.raises(ValueError):
            random_3sat(2, 1)


class TestDpll:
    def test_simple_sat(self):
        inst = instance(2, [clause((0, True)), clause((0, False), (1, True))])
        model = solve(inst)
        assert model is not None and inst.holds(model)

    def test_simple_unsat(self):
        inst = instance(
            2,
            [
                clause((0, True), (1, True)),
                clause((0, True), (1, False)),
                clause((0, False), (1, True)),
                clause((0, False), (1, False)),
            ],
        )
        assert solve(inst) is None

    def test_empty_instance(self):
        assert solve(instance(3, [])) is not None

    @given(st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_dpll_matches_brute_force(self, seed):
        inst = random_3sat(6, 20, seed=seed)
        model = solve(inst)
        brute = inst.brute_force_satisfiable()
        assert (model is None) == (brute is None)
        if model is not None:
            assert inst.holds(model)


class TestReduction:
    """Theorem 3.6: satisfiability == nonemptiness of complement."""

    def test_relation_shape(self):
        inst = instance(
            3, [clause((0, True), (1, False), (2, True))]
        )
        rel = instance_to_relation(inst)
        assert rel.schema.temporal_arity == 3
        assert len(rel) == 1
        # The clause tuple holds points "violating" the clause:
        # x0 < 0, x1 >= 0, x2 < 0 (literal made false).
        assert rel.contains([-1, 0, -1])
        assert not rel.contains([0, 0, -1])

    def test_satisfiable_instance(self):
        inst = instance(2, [clause((0, True)), clause((1, False))])
        model = solve_via_complement(inst)
        assert model == {0: True, 1: False}

    def test_unsatisfiable_instance(self):
        inst = instance(
            2,
            [
                clause((0, True), (1, True)),
                clause((0, True), (1, False)),
                clause((0, False), (1, True)),
                clause((0, False), (1, False)),
            ],
        )
        assert solve_via_complement(inst) is None
        assert not complement_is_nonempty(inst)

    def test_empty_instance(self):
        model = solve_via_complement(instance(3, []))
        assert model is not None

    @given(st.integers(0, 2000))
    @settings(max_examples=30, deadline=None)
    def test_reduction_agrees_with_dpll(self, seed):
        """The paper's reduction, cross-checked against classic DPLL."""
        inst = random_3sat(5, 18, seed=seed)
        via_db = solve_via_complement(inst)
        via_dpll = solve(inst)
        assert (via_db is None) == (via_dpll is None)
        if via_db is not None:
            assert inst.holds(via_db)
