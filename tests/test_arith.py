"""Unit and property tests for the integer arithmetic kernel."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arith import (
    CongruenceSolution,
    crt_pair,
    crt_system,
    extended_gcd,
    floor_div,
    lcm,
    lcm_many,
    mod_inverse,
    solve_linear_congruence,
)

nonzero = st.integers(min_value=-200, max_value=200).filter(lambda x: x != 0)
small = st.integers(min_value=-200, max_value=200)
positive = st.integers(min_value=1, max_value=200)


class TestExtendedGcd:
    def test_basic(self):
        g, x, y = extended_gcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_zero_zero(self):
        g, x, y = extended_gcd(0, 0)
        assert g == 0 and 0 * x + 0 * y == g

    def test_one_zero(self):
        g, x, y = extended_gcd(7, 0)
        assert g == 7 and 7 * x == 7

    def test_negative_inputs(self):
        g, x, y = extended_gcd(-12, 18)
        assert g == 6
        assert -12 * x + 18 * y == 6

    @given(small, small)
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestModInverse:
    def test_basic(self):
        assert mod_inverse(3, 7) == 5  # 3*5 = 15 ≡ 1 (mod 7)

    def test_not_invertible(self):
        with pytest.raises(ValueError):
            mod_inverse(4, 8)

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            mod_inverse(3, 0)

    @given(nonzero, positive)
    def test_inverse_property(self, a, m):
        if math.gcd(a, m) != 1:
            with pytest.raises(ValueError):
                mod_inverse(a, m)
        else:
            inv = mod_inverse(a, m)
            assert 0 <= inv < m
            assert (a * inv) % m == 1 % m


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12

    def test_zero(self):
        assert lcm(0, 5) == 0
        assert lcm(5, 0) == 0

    def test_negative(self):
        assert lcm(-4, 6) == 12

    def test_lcm_many(self):
        assert lcm_many([2, 3, 4]) == 12

    def test_lcm_many_skips_zero(self):
        assert lcm_many([0, 3, 0, 4]) == 12

    def test_lcm_many_empty(self):
        assert lcm_many([]) == 1
        assert lcm_many([0, 0]) == 1

    @given(nonzero, nonzero)
    def test_lcm_divisible(self, a, b):
        ell = lcm(a, b)
        assert ell % a == 0 and ell % b == 0
        assert ell == abs(a * b) // math.gcd(a, b)


class TestFloorDiv:
    def test_positive(self):
        assert floor_div(7, 2) == 3

    def test_negative_numerator(self):
        assert floor_div(-7, 2) == -4

    def test_zero_divisor(self):
        with pytest.raises(ZeroDivisionError):
            floor_div(1, 0)


class TestCongruenceSolution:
    def test_contains_periodic(self):
        sol = CongruenceSolution(residue=2, modulus=5)
        assert sol.contains(7) and sol.contains(-3)
        assert not sol.contains(3)

    def test_contains_pin(self):
        sol = CongruenceSolution(residue=4, modulus=0)
        assert sol.contains(4) and not sol.contains(9)

    def test_rejects_unreduced(self):
        with pytest.raises(ValueError):
            CongruenceSolution(residue=7, modulus=5)

    def test_rejects_negative_modulus(self):
        with pytest.raises(ValueError):
            CongruenceSolution(residue=0, modulus=-1)


class TestSolveLinearCongruence:
    def test_simple(self):
        sol = solve_linear_congruence(3, 1, 7)
        assert sol is not None
        assert (3 * sol.residue) % 7 == 1

    def test_no_solution(self):
        assert solve_linear_congruence(4, 1, 8) is None

    def test_gcd_reduction(self):
        sol = solve_linear_congruence(4, 2, 6)
        assert sol is not None
        assert sol.modulus == 3
        assert (4 * sol.residue - 2) % 6 == 0

    def test_bad_modulus(self):
        with pytest.raises(ValueError):
            solve_linear_congruence(1, 1, 0)

    @given(nonzero, small, positive)
    def test_all_residues_solve(self, a, b, m):
        sol = solve_linear_congruence(a, b, m)
        brute = [x for x in range(m) if (a * x - b) % m == 0]
        if sol is None:
            assert brute == []
        else:
            assert brute
            for x in brute:
                assert sol.contains(x)


class TestCrt:
    def test_classic(self):
        sol = crt_pair(2, 3, 3, 5)
        assert sol is not None
        assert sol.modulus == 15
        assert sol.residue % 3 == 2 and sol.residue % 5 == 3

    def test_incompatible(self):
        assert crt_pair(0, 2, 1, 2) is None

    def test_non_coprime_compatible(self):
        sol = crt_pair(2, 4, 0, 2)
        assert sol is not None
        assert sol.modulus == 4 and sol.residue == 2

    def test_pin_vs_periodic(self):
        sol = crt_pair(7, 0, 1, 3)
        assert sol is not None and sol.modulus == 0 and sol.residue == 7
        assert crt_pair(8, 0, 1, 3) is None

    def test_pin_vs_pin(self):
        assert crt_pair(5, 0, 5, 0) == CongruenceSolution(5, 0)
        assert crt_pair(5, 0, 6, 0) is None

    def test_system_empty(self):
        sol = crt_system([])
        assert sol is not None and sol.contains(42)

    def test_system_three(self):
        sol = crt_system([(1, 2), (2, 3), (3, 5)])
        assert sol is not None
        for r, m in [(1, 2), (2, 3), (3, 5)]:
            assert sol.residue % m == r

    @given(small, st.integers(0, 30), small, st.integers(0, 30))
    def test_pair_matches_brute_force(self, r1, m1, r2, m2):
        sol = crt_pair(r1 % m1 if m1 else r1, m1, r2 % m2 if m2 else r2, m2)
        span = range(-60, 61)

        def in1(x):
            return x % m1 == r1 % m1 if m1 else x == r1

        def in2(x):
            return x % m2 == r2 % m2 if m2 else x == r2

        brute = {x for x in span if in1(x) and in2(x)}
        if sol is None:
            assert not brute
        else:
            assert brute == {x for x in span if sol.contains(x)}
