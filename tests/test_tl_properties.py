"""Property tests for temporal logic against reference semantics.

Reference strategy: random *eventually-constant* models (all events
inside a bounded window).  For such models the semantics of every
operator is computable by hand on a slightly wider window, because
beyond the event horizon all atoms are constantly false.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import relation
from repro.tl import (
    Model,
    Next,
    always,
    atom,
    conj,
    disj,
    eventually,
    negate,
    since,
    until,
)

EVENT_WINDOW = (-8, 8)
CHECK_WINDOW = (-14, 14)


def random_model(rng: random.Random) -> tuple[Model, dict[str, set[int]]]:
    """A model with bounded event sets p, q; returns it plus the truth."""
    truth: dict[str, set[int]] = {}
    relations = {}
    for name in ("p", "q"):
        points = {
            rng.randint(*EVENT_WINDOW)
            for _ in range(rng.randint(0, 6))
        }
        truth[name] = points
        rel = relation(temporal=["t"])
        for x in points:
            rel.add_tuple([x])
        relations[name] = rel
    return Model(relations), truth


def reference_sat(formula, truth: dict[str, set[int]], t: int) -> bool:
    """Direct semantics for bounded models (events within EVENT_WINDOW)."""
    from repro.tl import (
        Always,
        And,
        Atom,
        Eventually,
        Not,
        Or,
        Previous,
        Since,
        Until,
    )

    horizon_hi = EVENT_WINDOW[1] + 2
    horizon_lo = EVENT_WINDOW[0] - 2

    def sat(f, t):
        if isinstance(f, Atom):
            return t in truth[f.name]
        if isinstance(f, Not):
            return not sat(f.body, t)
        if isinstance(f, And):
            return all(sat(p, t) for p in f.parts)
        if isinstance(f, Or):
            return any(sat(p, t) for p in f.parts)
        if isinstance(f, Next):
            return sat(f.body, t + 1)
        if isinstance(f, Previous):
            return sat(f.body, t - 1)
        if isinstance(f, Eventually):
            # beyond horizon_hi, all atoms false forever: quantify over
            # [t, horizon_hi] plus one representative point past it.
            points = list(range(t, max(t, horizon_hi) + 1))
            return any(sat(f.body, u) for u in points)
        if isinstance(f, Always):
            points = list(range(t, max(t, horizon_hi) + 1))
            return all(sat(f.body, u) for u in points)
        if isinstance(f, Until):
            for u in range(t, max(t, horizon_hi) + 1):
                if sat(f.release, u) and all(
                    sat(f.hold, v) for v in range(t, u)
                ):
                    return True
            return False
        if isinstance(f, Since):
            for u in range(min(t, horizon_lo) - 1, t + 1):
                if sat(f.release, u) and all(
                    sat(f.hold, v) for v in range(u + 1, t + 1)
                ):
                    return True
            return False
        raise TypeError(f)

    return sat(formula, t)


def random_formula(rng: random.Random, depth: int = 2):
    if depth == 0 or rng.random() < 0.35:
        return atom(rng.choice(["p", "q"]))
    choice = rng.random()
    sub = random_formula(rng, depth - 1)
    if choice < 0.15:
        return negate(sub)
    if choice < 0.3:
        return conj(sub, random_formula(rng, depth - 1))
    if choice < 0.45:
        return disj(sub, random_formula(rng, depth - 1))
    if choice < 0.6:
        return Next(sub)
    if choice < 0.72:
        return eventually(sub)
    if choice < 0.84:
        return always(sub)
    if choice < 0.92:
        return until(sub, random_formula(rng, depth - 1))
    return since(sub, random_formula(rng, depth - 1))


class TestAgainstReferenceSemantics:
    @given(st.integers(0, 50_000))
    @settings(max_examples=80, deadline=None)
    def test_satisfaction_sets_match(self, seed):
        """Caveat: the reference only handles the reflexive semantics
        used by the checker; both sides are checked point by point."""
        rng = random.Random(seed)
        model, truth = random_model(rng)
        formula = random_formula(rng)
        sat_set = model.sat(formula)
        for t in range(CHECK_WINDOW[0], CHECK_WINDOW[1] + 1):
            expected = reference_sat(formula, truth, t)
            got = sat_set.contains([t])
            assert got == expected, (t, str(formula))

    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_until_unfolding_law(self, seed):
        """φ U ψ  ==  ψ ∨ (φ ∧ X(φ U ψ)) — the classic fixpoint law."""
        from repro.core import algebra

        rng = random.Random(seed)
        model, _truth = random_model(rng)
        phi = random_formula(rng, 1)
        psi = random_formula(rng, 1)
        left = model.sat(until(phi, psi))
        right = model.sat(
            disj(psi, conj(phi, Next(until(phi, psi))))
        )
        assert algebra.equivalent(left, right)

    @given(st.integers(0, 50_000))
    @settings(max_examples=40, deadline=None)
    def test_always_dual(self, seed):
        """G φ == ¬F¬φ on random formulas and models."""
        from repro.core import algebra

        rng = random.Random(seed)
        model, _truth = random_model(rng)
        phi = random_formula(rng, 1)
        left = model.sat(always(phi))
        right = model.sat(negate(eventually(negate(phi))))
        assert algebra.equivalent(left, right)
