"""MVCC semantics: snapshot isolation and group-commit equivalence.

Three families:

* snapshot pinning — a reader holding a snapshot taken before (or
  during) a group commit sees exactly the pre-commit catalog,
  cross-checked point-for-point against the finite-window oracle;
* group-commit equivalence — committing N transactions as one group
  produces the same committed catalog as committing them one at a
  time (hypothesis-driven over random mutation batches, including
  batches that abort);
* version tokens — monotone, and stable for pinned snapshots.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.finite import FiniteRelation
from repro.core.relations import GeneralizedRelation, Schema
from repro.query.catalog import VersionedCatalog, apply_mutations
from repro.query.database import Database

WINDOW = (0, 60)


def _points(relation: GeneralizedRelation) -> set[tuple]:
    return set(FiniteRelation.materialize(relation, *WINDOW).rows)


def _insert(name: str, offset: int, period: int = 7) -> dict:
    return {
        "op": "insert",
        "name": name,
        "lrps": [f"{offset} + {period}n"],
        "constraints": "t >= 0",
        "data": [],
    }


def _create(name: str) -> dict:
    return {"op": "create", "name": name, "temporal": ["t"], "data": []}


class TestSnapshotPinning:
    def test_snapshot_pinned_before_group_commit_sees_old_state(
        self, tmp_path
    ):
        db = Database.open(str(tmp_path / "db"))
        db.create("Ev", temporal=["t"])
        db.relation("Ev").add_tuple(["0 + 10n"], "t >= 0", [])
        db.commit()

        pinned = db.snapshot()
        oracle = _points(pinned.relation("Ev"))

        core = db._core
        results = core.commit_mutations(
            [[_insert("Ev", 3)], [_insert("Ev", 5)], [_create("New")]]
        )
        assert all(r.ok for r in results)

        # the pin still shows exactly the pre-commit catalog ...
        assert pinned.names == ("Ev",)
        assert _points(pinned.relation("Ev")) == oracle
        assert pinned.ask("EXISTS t. Ev(t) & t >= 10")
        assert not pinned.ask("EXISTS t. Ev(t) & t = 3")
        # ... while a fresh snapshot shows the committed batch
        fresh = db.snapshot()
        assert fresh.names == ("Ev", "New")
        assert _points(fresh.relation("Ev")) > oracle
        db.close()

    def test_snapshot_pinned_mid_commit_is_never_torn(self, tmp_path):
        # Every transaction inserts into BOTH relations; a torn read
        # would catch a state where only one of the pair landed.
        db = Database.open(str(tmp_path / "db"))
        db.create("A", temporal=["t"])
        db.create("B", temporal=["t"])
        db.commit()
        core = db._core

        stop = threading.Event()
        failures: list[str] = []

        def writer() -> None:
            for i in range(25):
                core.commit_mutations(
                    [[_insert("A", 100 + i, 1000),
                      _insert("B", 100 + i, 1000)]]
                )
            stop.set()

        thread = threading.Thread(target=writer)
        thread.start()
        last_version = -1
        while not stop.is_set():
            snap = db.snapshot()
            a = len(snap.relation("A"))
            b = len(snap.relation("B"))
            if a != b:
                failures.append(f"torn read: |A|={a} |B|={b}")
            if snap.version < last_version:
                failures.append("version went backwards")
            last_version = snap.version
        thread.join()
        db.close()
        assert not failures, failures

    def test_working_mutations_invisible_to_snapshots(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        db.create("Ev", temporal=["t"])
        db.commit()
        snap = db.snapshot()
        db.relation("Ev").add_tuple(["4n"], "t >= 0", [])  # uncommitted
        assert _points(snap.relation("Ev")) == set()
        assert _points(db.snapshot().relation("Ev")) == set()
        db.commit()
        assert _points(db.snapshot().relation("Ev")) != set()
        assert _points(snap.relation("Ev")) == set()
        db.close()


# Abstract mutation programs for the equivalence property: op codes
# over two relation names, translated to JSON-shaped mutations.  Some
# batches are invalid (insert/drop on a missing relation) — they must
# abort identically in both commit modes.
_name = st.sampled_from(["A", "B"])
_mutation = st.one_of(
    st.tuples(st.just("create"), _name),
    st.tuples(st.just("insert"), _name, st.integers(0, 9),
              st.sampled_from([3, 5, 8])),
    st.tuples(st.just("drop"), _name),
)
_batches = st.lists(
    st.lists(_mutation, min_size=1, max_size=4), min_size=1, max_size=6
)


def _translate(op) -> dict:
    if op[0] == "create":
        return _create(op[1])
    if op[0] == "insert":
        return _insert(op[1], op[2], op[3])
    return {"op": "drop", "name": op[1]}


class TestGroupCommitEquivalence:
    @given(_batches)
    @settings(max_examples=60, deadline=None)
    def test_group_equals_sequential(self, programs):
        batches = [[_translate(op) for op in batch] for batch in programs]

        grouped = VersionedCatalog()
        group_results = grouped.commit_mutations(batches)

        sequential = VersionedCatalog()
        seq_results = [
            sequential.commit_mutations([batch])[0] for batch in batches
        ]

        # same per-transaction outcomes (which aborted, what changed)
        assert [r.ok for r in group_results] == [r.ok for r in seq_results]
        assert [r.records for r in group_results] == [
            r.records for r in seq_results
        ]
        # same committed catalog, relation by relation, point by point
        g, s = grouped.current(), sequential.current()
        assert g.names == s.names
        for name in g.names:
            assert g.relation(name) == s.relation(name)
            assert _points(g.relation(name)) == _points(s.relation(name))
        assert g.version == s.version

    def test_group_equals_sequential_durably(self, tmp_path):
        batches = [
            [_create("A"), _insert("A", 1)],
            [_insert("A", 2), _insert("A", 4)],
            [_insert("Missing", 9)],  # aborts alone
            [_create("B"), _insert("B", 0, 5)],
            [{"op": "drop", "name": "A"}],
        ]
        with Database.open(str(tmp_path / "grp")) as grp:
            results = grp._core.commit_mutations(batches)
        with Database.open(str(tmp_path / "seq")) as seq:
            seq_results = [
                seq._core.commit_mutations([b])[0] for b in batches
            ]
        assert [r.ok for r in results] == [r.ok for r in seq_results]
        # both stores recover to the same catalog
        with Database.open(str(tmp_path / "grp"), create=False) as grp:
            with Database.open(str(tmp_path / "seq"), create=False) as seq:
                assert grp.names == seq.names
                for name in grp.names:
                    assert _points(grp.relation(name)) == _points(
                        seq.relation(name)
                    )
                assert grp.version == seq.version


class TestVersionTokens:
    def test_versions_are_monotone_per_commit(self, tmp_path):
        db = Database.open(str(tmp_path / "db"))
        assert db.version == 0
        db.create("Ev", temporal=["t"])
        db.commit()
        v1 = db.version
        db.relation("Ev").add_tuple(["2n"], "t >= 0", [])
        db.commit()
        assert db.version > v1
        db.commit()  # no-op: no new version
        assert db.version == v1 + 1
        db.close()

    def test_group_assigns_one_version_per_transaction(self):
        core = VersionedCatalog()
        results = core.commit_mutations(
            [[_create("A")], [_insert("A", 1)], [_insert("A", 1)],
             [_insert("A", 2)]]
        )
        versions = [r.version for r in results if r.ok]
        # the third txn is a no-op (duplicate tuple) and reads as its
        # predecessor's version; the rest strictly increase
        assert versions == [1, 2, 2, 3]
        assert core.version == 3

    def test_recovered_version_token_continues(self, tmp_path):
        root = str(tmp_path / "db")
        with Database.open(root) as db:
            db.create("Ev", temporal=["t"])
            db.commit()
            before = db.version
        with Database.open(root, create=False) as db:
            assert db.version == before
            db.relation("Ev").add_tuple(["9n"], "t >= 0", [])
            db.commit()
            assert db.version > before

    def test_apply_mutations_is_pure(self):
        schema = Schema.make(("t",), ())
        base = {"Ev": GeneralizedRelation.empty(schema)}
        out = apply_mutations(base, [_insert("Ev", 3)])
        assert len(base["Ev"]) == 0
        assert len(out["Ev"]) == 1
        assert out["Ev"] is not base["Ev"]
