"""Tests for ``repro.optimize`` — exact MINIMIZE/MAXIMIZE queries.

The exactness contract is checked three ways, mirroring the optimizer
benchmark (``repro.optimize.bench``): hand-built tuples with known
optima, property tests (``optimize(tuple)`` == min/max over a finite
enumeration window, hypothesis-generated and seed-replayed), and the
scheduling scenario pack against its finite-window oracle.  The
end-to-end surfaces — directive parsing, ``Database.query``, EXPLAIN
composition, the shell, and the wire protocol — ride the same fixtures.
"""

import random
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.cli import Session
from repro.core.errors import EvaluationError, ParseError, ReproValueError
from repro.core.relations import Schema, relation
from repro.fuzz.case import load_case
from repro.intervals import oracle_optimum, run_scenario, scenario_pack
from repro.optimize import (
    Objective,
    optimize_relation,
    optimize_tuple,
    parse_objective,
)
from repro.query import Database
from repro.testing import generalized_tuples, seeded_relation, seeded_tuple

# The parity window: every seeded/hypothesis structure is small (offsets
# within +-8, periods <= 6, DBM constants within +-8), so any finite
# optimum is attained well inside [-128, 128].
WINDOW = 128


def objective_value(point, i, j=None):
    return point[i] if j is None else point[i] - point[j]


def assert_parity(gtuple, sense, i, j=None):
    """One verdict vs enumeration: the bench's parity check, asserted."""
    result = optimize_tuple(gtuple, sense, i, j=j)
    values = [
        objective_value(p, i, j) for p in gtuple.enumerate(-WINDOW, WINDOW)
    ]
    if result.status == "empty":
        assert not values, "verdict 'empty' but the window has points"
    elif result.status == "optimal":
        assert values, "verdict 'optimal' but the window is empty"
        best = min(values) if sense == "min" else max(values)
        assert result.value == best
        assert result.witness is not None
        assert gtuple.contains(result.witness)
        assert objective_value(result.witness, i, j) == result.value
    else:
        assert result.status == "unbounded"
        cert = result.certificate
        assert cert is not None
        assert gtuple.contains(cert.point)
        previous = objective_value(cert.point, i, j)
        for steps in (1, 2, 3):
            point = cert.shifted(steps)
            assert gtuple.contains(point)
            value = objective_value(point, i, j)
            if sense == "min":
                assert value < previous
            else:
                assert value > previous
            previous = value
    return result


def single_tuple(lrps, constraints=""):
    names = [f"t{k}" for k in range(len(lrps))]
    rel = relation(temporal=names)
    rel.add_tuple(lrps, constraints)
    (gtuple,) = rel
    return gtuple


# ----------------------------------------------------------------------
# the per-tuple core
# ----------------------------------------------------------------------


class TestOptimizeTuple:
    def test_min_of_bounded_periodic(self):
        gtuple = single_tuple(["2 + 6n"], "t0 >= 3")
        result = optimize_tuple(gtuple, "min", 0)
        assert result.status == "optimal"
        assert result.value == 8
        assert result.witness == (8,)

    def test_max_of_same_tuple_is_unbounded(self):
        gtuple = single_tuple(["2 + 6n"], "t0 >= 3")
        result = optimize_tuple(gtuple, "max", 0)
        assert result.status == "unbounded"
        cert = result.certificate
        assert cert.direction == 1
        assert cert.period % 6 == 0
        assert gtuple.contains(cert.shifted(5))

    def test_singleton(self):
        gtuple = single_tuple(["5"])
        assert optimize_tuple(gtuple, "min", 0).value == 5
        assert optimize_tuple(gtuple, "max", 0).value == 5

    def test_empty_tuple(self):
        gtuple = single_tuple(["n"], "t0 >= 5 & t0 <= 3")
        assert optimize_tuple(gtuple, "min", 0).status == "empty"

    def test_difference_pinned_by_equality(self):
        gtuple = single_tuple(["2 + 60n", "80 + 60n"], "t0 = t1 - 78")
        for sense in ("min", "max"):
            result = optimize_tuple(gtuple, sense, 1, j=0)
            assert result.status == "optimal"
            assert result.value == 78

    def test_difference_over_free_pair_is_unbounded(self):
        gtuple = single_tuple(["n", "n"])
        result = optimize_tuple(gtuple, "max", 0, j=1)
        assert result.status == "unbounded"
        assert gtuple.contains(result.certificate.shifted(4))

    def test_difference_window(self):
        # t1 in [t0, t0 + 5] on a period-4 / period-8 grid: the
        # realizable differences are a subset of [0, 5].
        gtuple = single_tuple(["4n", "8n + 1"], "t1 >= t0 & t1 <= t0 + 5")
        assert_parity(gtuple, "min", 1, 0)
        assert_parity(gtuple, "max", 1, 0)

    def test_rejects_bad_sense_and_coordinates(self):
        gtuple = single_tuple(["n"])
        with pytest.raises(ReproValueError):
            optimize_tuple(gtuple, "sup", 0)
        with pytest.raises(ReproValueError):
            optimize_tuple(gtuple, "min", 3)
        two = single_tuple(["n", "n"])
        with pytest.raises(ReproValueError):
            optimize_tuple(two, "min", 0, j=0)


# ----------------------------------------------------------------------
# relation-level aggregation
# ----------------------------------------------------------------------


class TestOptimizeRelation:
    def trains(self):
        rel = relation(temporal=["dep", "arr"], data=["service"])
        rel.add_tuple(["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"])
        rel.add_tuple(["46 + 60n", "110 + 60n"], "dep = arr - 64", ["express"])
        return rel

    def test_argmin_provenance(self):
        result = optimize_relation(self.trains(), Objective("arr", "dep"), "min")
        assert result.status == "optimal"
        assert result.value == 64
        assert result.argopt.data == ("express",)
        assert result.tuples_examined == 2

    def test_argmax_provenance(self):
        result = optimize_relation(self.trains(), Objective("arr", "dep"), "max")
        assert result.value == 78
        assert result.argopt.data == ("slow",)

    def test_any_unbounded_tuple_wins(self):
        rel = relation(temporal=["t"])
        rel.add_tuple(["5"])
        rel.add_tuple(["3n"], "t >= 0")
        result = optimize_relation(rel, Objective("t"), "max")
        assert result.status == "unbounded"
        assert result.infinity == "+inf"
        # The certificate walks inside the reported argopt tuple.
        assert result.argopt.contains(result.certificate.shifted(2))

    def test_empty_tuples_are_skipped(self):
        rel = relation(temporal=["t"])
        rel.add_tuple(["n"], "t >= 5 & t <= 3")
        rel.add_tuple(["7"])
        result = optimize_relation(rel, Objective("t"), "min")
        assert result.status == "optimal"
        assert result.value == 7

    def test_empty_relation(self):
        rel = relation(temporal=["t"])
        result = optimize_relation(rel, Objective("t"), "min")
        assert result.status == "empty"
        assert result.value is None
        assert "empty" in str(result)

    def test_argopt_restriction_pins_the_objective(self):
        rel = relation(temporal=["t"])
        rel.add_tuple(["2 + 6n"], "t >= 3")
        result = optimize_relation(rel, Objective("t"), "min")
        face = result.argopt_restriction()
        assert face.contains([8])
        assert not face.contains([14])

    def test_argopt_restriction_of_unbounded_is_empty(self):
        rel = relation(temporal=["t"])
        rel.add_tuple(["2 + 6n"])
        result = optimize_relation(rel, Objective("t"), "max")
        assert len(result.argopt_restriction()) == 0


# ----------------------------------------------------------------------
# exactness properties: optimize == enumeration over a finite window
# ----------------------------------------------------------------------


class TestParityProperties:
    @settings(max_examples=60, deadline=None)
    @given(generalized_tuples(temporal_arity=2))
    def test_hypothesis_single_and_difference(self, gtuple):
        for sense in ("min", "max"):
            assert_parity(gtuple, sense, 0)
            assert_parity(gtuple, sense, 0, 1)

    def test_seeded_corpus_replay(self):
        rng = random.Random(0xBEEF)
        statuses = set()
        for _ in range(150):
            gtuple = seeded_tuple(rng, temporal_arity=2)
            for sense, i, j in (
                ("min", 0, None),
                ("max", 0, None),
                ("min", 0, 1),
                ("max", 1, 0),
            ):
                statuses.add(assert_parity(gtuple, sense, i, j).status)
        # The corpus must actually exercise every verdict, including
        # the unbounded and empty edge cases.
        assert statuses == {"optimal", "unbounded", "empty"}

    def test_seeded_relation_aggregation(self):
        rng = random.Random(0xA11)
        schema = Schema.make(temporal=["a", "b"])
        for _ in range(40):
            rel = seeded_relation(rng, temporal_arity=2, schema=schema)
            for sense in ("min", "max"):
                result = optimize_relation(rel, Objective("a"), sense)
                values = [p[0] for p in rel.enumerate(-WINDOW, WINDOW)]
                if result.status == "empty":
                    assert not values
                elif result.status == "optimal":
                    best = min(values) if sense == "min" else max(values)
                    assert result.value == best
                else:
                    assert result.argopt.contains(
                        result.certificate.shifted(3)
                    )

    def test_regression_corpus_relations(self):
        # The shrunk fuzz corpus pins algebra bugs; replay its base
        # relations through the optimizer leg too.
        corpus = sorted(
            (Path(__file__).parent / "corpus").glob("*.json")
        )
        assert corpus
        for path in corpus:
            case = load_case(path)
            for rel in case.relations.values():
                arity = len(rel.schema.temporal_names)
                for gtuple in rel:
                    for i in range(arity):
                        assert_parity(gtuple, "min", i)
                        assert_parity(gtuple, "max", i)


# ----------------------------------------------------------------------
# the scheduling scenario pack vs its oracle
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scenario", scenario_pack(), ids=lambda s: s.name)
class TestSchedulingScenarios:
    def test_matches_oracle_and_expectation(self, scenario):
        result = run_scenario(scenario)
        if scenario.expect_unbounded:
            assert result.status == "unbounded"
            assert result.certificate is not None
            assert oracle_optimum(scenario) is None
        else:
            assert result.status == "optimal"
            assert result.value == scenario.expected
            assert result.value == oracle_optimum(scenario)
            assert result.witness is not None

    def test_invariant_under_plan_rewrites(self, scenario):
        # The optimizer leg: the same directive through the planner's
        # rewrite passes must reach the identical verdict.
        base = run_scenario(scenario)
        rewritten = scenario.build().query(scenario.query, optimize=True)
        assert rewritten.status == base.status
        assert rewritten.value == base.value


# ----------------------------------------------------------------------
# the directive surfaces: parsing, Database.query, EXPLAIN, CLI, serve
# ----------------------------------------------------------------------


class TestObjectiveGrammar:
    def test_parse_objective_splits_prefix(self):
        objective, rest = parse_objective("arr - dep : Train(dep, arr)")
        assert objective == Objective("arr", "dep")
        assert rest.strip() == "Train(dep, arr)"

    def test_zero_objective_rejected(self):
        with pytest.raises(ParseError):
            Objective.parse("t - t")
        with pytest.raises(ParseError):
            parse_objective("t - t : Tick(t)")

    def test_missing_colon_rejected(self):
        with pytest.raises(ParseError):
            parse_objective("t Tick(t)")


class TestDirectiveSurfaces:
    @pytest.fixture
    def db(self):
        db = Database()
        db.create("Event", temporal=["t"])
        db.relation("Event").add_tuple(["2 + 6n"], "t >= 0")
        return db

    def test_query_dispatches_directives(self, db):
        result = db.query("MINIMIZE t : Event(t) & t >= 3")
        assert (result.status, result.value, result.witness) == (
            "optimal", 8, (8,),
        )
        assert db.query("MAXIMIZE t : Event(t)").infinity == "+inf"

    def test_crt_join_of_periodic_tuples(self, db):
        # {2 + 6n} meets {5 + 9n} exactly on {14 + 18n} (CRT): the
        # minimum over t >= 0 is 14, the maximum has period-18 descent.
        db.create("Other", temporal=["t"])
        db.relation("Other").add_tuple(["5 + 9n"])
        q = "Event(t) & Other(t) & t >= 0"
        low = db.optimize(f"MINIMIZE t : {q}")
        assert (low.value, low.witness) == (14, (14,))
        high = db.optimize(f"MAXIMIZE t : {q}")
        assert high.status == "unbounded"
        assert high.certificate.period == 18

    def test_objective_must_be_free_in_query(self, db):
        with pytest.raises(EvaluationError):
            db.optimize("MINIMIZE z : Event(t)")

    def test_explain_minimize_composes(self, db):
        plan = str(db.query("EXPLAIN MINIMIZE t : Event(t) & t >= 3"))
        assert "optimize" in plan and "min t" in plan
        assert "scan" in plan

    def test_explain_analyze_maximize_composes(self, db):
        trace = db.query("EXPLAIN ANALYZE MAXIMIZE t : Event(t)")
        assert "query.optimize" in trace.flamegraph()

    def test_keyword_prefix_is_not_a_directive(self, db):
        # A relation whose name starts with a directive keyword still
        # parses as a plain query.
        db.create("MINIMIZER", temporal=["t"])
        db.relation("MINIMIZER").add_tuple(["4"])
        assert db.query("MINIMIZER(t)").contains([4])

    def test_metrics_count_optimize_queries(self, db):
        from repro.obs import metrics

        before = metrics().counter("optimize.queries").value
        db.optimize("MINIMIZE t : Event(t) & t >= 3")
        assert metrics().counter("optimize.queries").value == before + 1


class TestCliEndToEnd:
    @pytest.fixture
    def session(self):
        s = Session()
        s.execute("create Event(t:T)")
        s.execute("insert Event [2 + 6n] : t >= 0")
        return s

    def test_minimize_command(self, session):
        out = session.execute("minimize t : Event(t) & t >= 3")
        assert "min t = 8" in out
        assert "witness: (8,)" in out

    def test_maximize_via_query_directive(self, session):
        out = session.execute("query MAXIMIZE t : Event(t)")
        assert "+inf" in out
        assert "certificate" in out

    def test_explain_minimize(self, session):
        out = session.execute("query EXPLAIN MINIMIZE t : Event(t) & t >= 3")
        assert "optimize" in out and "min t" in out

    def test_malformed_objective_is_a_clean_error(self, session):
        out = session.execute("minimize Event(t)")
        assert out.startswith("error:")


class TestServeEndToEnd:
    def test_optimize_over_the_wire(self):
        from repro.serve import ReproServer, SyncClient

        with ReproServer() as srv, SyncClient(port=srv.port) as client:
            client.commit([
                {"op": "create", "name": "Event",
                 "temporal": ["t"], "data": []},
                {"op": "insert", "name": "Event", "lrps": ["2 + 6n"],
                 "constraints": "t >= 0", "data": []},
            ])
            low = client.optimize("MINIMIZE t : Event(t) & t >= 3")
            assert low["status"] == "optimal"
            assert low["value"] == 8
            assert low["witness"] == [8]
            high = client.optimize("MAXIMIZE t : Event(t)")
            assert high["value"] == "+inf"
            cert = high["certificate"]
            assert cert["period"] == 6 and cert["direction"] == 1
