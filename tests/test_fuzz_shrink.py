"""Tests for the delta-debugging shrinker, including the mutant drill.

The centerpiece re-enacts the harness's reason to exist: inject a bug
into the algebra (an off-by-one in ``DBM.add_upper``, the kind of
bound-flip a refactor could introduce), let the fuzzer find a
divergence, shrink it, and verify the shrunk case is a minimal,
replayable repro — failing on the mutant, passing on HEAD.
"""

import json

import pytest

from repro.core.dbm import DBM
from repro.core.relations import GeneralizedRelation, Schema
from repro.fuzz.case import Case, case_from_dict
from repro.fuzz.diff import run_case
from repro.fuzz.expr import Complement, Leaf, Subtract, Union
from repro.fuzz.gen import generate_case
from repro.fuzz.shrink import same_failure, shrink_case

T1 = Schema.make(temporal=["T1"])


@pytest.fixture
def mutant_add_upper(monkeypatch):
    """Install ``X <= b+1`` in place of ``X <= b`` for the test body."""
    clean = DBM.add_upper

    def flipped(self, i, bound):
        return clean(self, i, bound + 1)

    def install():
        monkeypatch.setattr(DBM, "add_upper", flipped)

    def uninstall():
        monkeypatch.setattr(DBM, "add_upper", clean)

    return install, uninstall


class TestMutantDrill:
    def find_divergent(self, install, uninstall, max_seeds=120):
        for seed in range(max_seeds):
            case = generate_case(seed)  # generated with the clean algebra
            install()
            try:
                result = run_case(case)
            finally:
                uninstall()
            if result.status == "divergent":
                return case, result
        pytest.fail("mutant was not detected within the seed budget")

    def test_mutant_is_found_shrunk_and_replayable(self, mutant_add_upper):
        install, uninstall = mutant_add_upper
        case, result = self.find_divergent(install, uninstall)

        # Shrink under the mutant (the failure must keep reproducing).
        install()
        try:
            shrunk = shrink_case(case, same_failure(result))
        finally:
            uninstall()
        assert shrunk.case.total_tuples() <= 3
        assert shrunk.case.expr.size() <= case.expr.size()

        # The repro replays through its JSON form: divergent on the
        # mutant, clean on HEAD.
        replayed = case_from_dict(json.loads(shrunk.case.dumps()))
        install()
        try:
            on_mutant = run_case(replayed)
        finally:
            uninstall()
        assert on_mutant.status == "divergent"
        on_head = run_case(replayed)
        assert on_head.status == "ok"


class TestShrinkMechanics:
    def failing_if(self, predicate):
        """Adapt a plain case predicate, counting evaluations."""
        calls = []

        def failing(candidate):
            calls.append(candidate)
            return predicate(candidate)

        return failing, calls

    def two_relation_case(self):
        a = GeneralizedRelation.empty(T1)
        a.add_tuple(["0 + 2n"], "T1 >= -4")
        a.add_tuple(["1 + 3n"], "")
        a.add_tuple(["5"], "")
        b = GeneralizedRelation.empty(T1)
        b.add_tuple(["0 + 3n"], "")
        return Case(
            relations={"A": a, "B": b},
            expr=Union(Subtract(Leaf("A"), Leaf("B")), Leaf("B")),
            low=-4,
            high=4,
        )

    def test_shrinks_to_single_tuple_when_one_suffices(self):
        case = self.two_relation_case()

        # "Failure" = relation A still contains the point 5.
        def tuple_5_present(candidate):
            rel = candidate.relations.get("A")
            return rel is not None and rel.contains([5])

        failing, _ = self.failing_if(tuple_5_present)
        shrunk = shrink_case(case, failing)
        assert shrunk.reduced
        assert shrunk.case.relations["A"].contains([5])
        assert shrunk.case.total_tuples() == 1
        assert shrunk.case.expr == Leaf("A")

    def test_expression_shrinks_toward_subtree(self):
        case = self.two_relation_case()

        def union_still_there(candidate):
            return "B" in candidate.expr.leaf_names()

        failing, _ = self.failing_if(union_still_there)
        shrunk = shrink_case(case, failing)
        assert shrunk.case.expr == Leaf("B")
        assert set(shrunk.case.relations) == {"B"}

    def test_budget_is_respected(self):
        case = self.two_relation_case()
        failing, calls = self.failing_if(lambda c: True)
        shrink_case(case, failing, max_evals=5)
        assert len(calls) <= 5

    def test_constraints_and_lrps_simplify(self):
        a = GeneralizedRelation.empty(T1)
        a.add_tuple(["4 + 5n"], "T1 >= -4 & T1 <= 99")
        case = Case(
            relations={"A": a}, expr=Complement(Leaf("A")), low=-4, high=4
        )

        def nonempty_complement(candidate):
            rel = candidate.relations.get("A")
            if rel is None or not len(rel):
                return False
            return bool(run_case(candidate).ok)

        shrunk = shrink_case(case, nonempty_complement)
        gtuple = shrunk.case.relations["A"].tuples[0]
        assert len(list(gtuple.dbm.iter_bounds())) == 0
        assert gtuple.lrps[0].offset == 0

    def test_crashing_candidates_are_rejected(self):
        case = self.two_relation_case()

        def sometimes_crashes(candidate):
            if candidate.total_tuples() < 4:
                raise RuntimeError("boom")
            return True

        shrunk = shrink_case(case, sometimes_crashes)
        # Nothing could be removed without crashing the predicate, so
        # the case comes back intact.
        assert shrunk.case.total_tuples() == 4
