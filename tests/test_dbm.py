"""Unit and property tests for difference-bound matrices."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbm import DBM, add_bound, min_bound


def brute_solutions(dbm: DBM, low: int, high: int) -> set[tuple[int, ...]]:
    """All integer points of the DBM in the window, by exhaustion."""
    return {
        point
        for point in itertools.product(range(low, high + 1), repeat=dbm.size)
        if dbm.satisfied_by(point)
    }


@st.composite
def small_dbms(draw, max_arity=3):
    arity = draw(st.integers(1, max_arity))
    dbm = DBM(arity)
    n = draw(st.integers(0, 5))
    for _ in range(n):
        const = draw(st.integers(-5, 5))
        kind = draw(st.integers(0, 2))
        i = draw(st.integers(0, arity - 1))
        if kind == 0 and arity >= 2:
            j = draw(st.integers(0, arity - 1))
            if i != j:
                dbm.add_difference(i, j, const)
        elif kind == 1:
            dbm.add_upper(i, const)
        else:
            dbm.add_lower(i, const)
    return dbm


class TestBoundHelpers:
    def test_min_bound(self):
        assert min_bound(None, 3) == 3
        assert min_bound(3, None) == 3
        assert min_bound(2, 5) == 2
        assert min_bound(None, None) is None

    def test_add_bound(self):
        assert add_bound(2, 3) == 5
        assert add_bound(None, 3) is None
        assert add_bound(3, None) is None


class TestConstruction:
    def test_empty_satisfiable(self):
        assert DBM(3).is_satisfiable()

    def test_zero_size(self):
        dbm = DBM(0)
        assert dbm.is_satisfiable()
        assert dbm.satisfied_by(())

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DBM(-1)

    def test_out_of_range_variable(self):
        dbm = DBM(2)
        with pytest.raises(IndexError):
            dbm.add_upper(2, 0)

    def test_strongest_conjunct_kept(self):
        """Appendix A: X1 <= X2+4 ∧ X1 <= X2-5 reduces to X1 <= X2-5."""
        dbm = DBM(2)
        dbm.add_difference(0, 1, 4)
        dbm.add_difference(0, 1, -5)
        assert dbm.bound(0, 1) == -5

    def test_self_difference_contradiction(self):
        dbm = DBM(1)
        dbm.add_difference(0, 0, -1)
        assert not dbm.is_satisfiable()


class TestSatisfiability:
    def test_simple_window(self):
        dbm = DBM(1)
        dbm.add_lower(0, 2)
        dbm.add_upper(0, 5)
        assert dbm.is_satisfiable()
        assert dbm.satisfied_by([3])
        assert not dbm.satisfied_by([6])

    def test_empty_window(self):
        dbm = DBM(1)
        dbm.add_lower(0, 6)
        dbm.add_upper(0, 5)
        assert not dbm.is_satisfiable()

    def test_negative_cycle(self):
        dbm = DBM(2)
        dbm.add_difference(0, 1, -1)  # X0 < X1
        dbm.add_difference(1, 0, -1)  # X1 < X0
        assert not dbm.is_satisfiable()

    def test_equality_chain(self):
        dbm = DBM(3)
        dbm.add_equality(0, 1, 2)
        dbm.add_equality(1, 2, 3)
        dbm.add_value(2, 0)
        assert dbm.is_satisfiable()
        assert dbm.satisfied_by([5, 3, 0])
        assert not dbm.satisfied_by([4, 3, 0])

    @given(small_dbms())
    @settings(max_examples=200, deadline=None)
    def test_satisfiability_matches_brute_force(self, dbm):
        # Bounds are within [-5, 5]; any satisfiable system of such
        # difference constraints has a solution with coordinates in
        # [-15, 15] (chains of length <= 3 with offsets <= 5 each, from
        # a variable pinned near the origin).
        has_point = bool(brute_solutions(dbm, -15, 15))
        assert dbm.copy().close() == has_point


class TestSolution:
    def test_bounded(self):
        dbm = DBM(2)
        dbm.add_lower(0, 3)
        dbm.add_difference(1, 0, -2)  # X1 <= X0 - 2
        sol = dbm.solution()
        assert sol is not None and dbm.satisfied_by(sol)

    def test_unbounded_above(self):
        dbm = DBM(1)
        dbm.add_lower(0, 100)
        sol = dbm.solution()
        assert sol is not None and sol[0] >= 100

    def test_unsatisfiable(self):
        dbm = DBM(1)
        dbm.add_upper(0, 0)
        dbm.add_lower(0, 1)
        assert dbm.solution() is None

    @given(small_dbms())
    @settings(max_examples=200, deadline=None)
    def test_solution_always_satisfies(self, dbm):
        sol = dbm.solution()
        if sol is None:
            assert not dbm.copy().close()
        else:
            assert dbm.satisfied_by(sol)


class TestProjection:
    def test_project_drops_variable(self):
        dbm = DBM(2)
        dbm.add_difference(0, 1, -1)  # X0 <= X1 - 1
        dbm.add_upper(1, 10)
        projected = dbm.project([0])
        assert projected.size == 1
        assert projected.upper(0) == 9

    def test_project_reorders(self):
        dbm = DBM(2)
        dbm.add_upper(0, 1)
        dbm.add_upper(1, 2)
        projected = dbm.project([1, 0])
        assert projected.upper(0) == 2
        assert projected.upper(1) == 1

    def test_project_unsat_stays_unsat(self):
        dbm = DBM(2)
        dbm.add_upper(0, 0)
        dbm.add_lower(0, 1)
        assert not dbm.project([1]).is_satisfiable()

    @given(small_dbms(max_arity=3), st.integers(0, 2))
    @settings(max_examples=150, deadline=None)
    def test_projection_is_exact_over_z(self, dbm, drop):
        """Shortest-path projection equals pointwise projection over Z.

        This is the free-integer-variable case that Theorem 3.1 reduces
        projection to after normalization.
        """
        if drop >= dbm.size:
            return
        keep = [i for i in range(dbm.size) if i != drop]
        projected = dbm.copy().project(keep)
        window = (-16, 16)
        full = brute_solutions(dbm, *window)
        expected = {tuple(p[i] for i in keep) for p in full}
        # Compare only points well inside the window: projections of
        # points outside it may be missing from `expected`.
        inner = (-8, 8)
        got = {
            p
            for p in brute_solutions(projected, *inner)
        }
        expected_inner = {
            p
            for p in expected
            if all(inner[0] <= v <= inner[1] for v in p)
        }
        assert expected_inner <= got
        # Soundness needs care at window edges; restrict both ways.
        for p in got:
            # every projected point must have a preimage over Z
            probe = dbm.copy()
            for pos, value in zip(keep, p):
                probe.add_value(pos, value)
            assert probe.close(), f"projected point {p} has no preimage"


class TestTransformations:
    def test_intersect(self):
        a = DBM(1)
        a.add_upper(0, 5)
        b = DBM(1)
        b.add_lower(0, 3)
        meet = a.intersect(b)
        assert meet.satisfied_by([4])
        assert not meet.satisfied_by([2]) and not meet.satisfied_by([6])

    def test_intersect_size_mismatch(self):
        with pytest.raises(ValueError):
            DBM(1).intersect(DBM(2))

    def test_extend(self):
        dbm = DBM(1)
        dbm.add_value(0, 7)
        bigger = dbm.extend(2)
        assert bigger.size == 3
        assert bigger.satisfied_by([7, 100, -100])

    def test_shift_variable(self):
        dbm = DBM(2)
        dbm.add_difference(0, 1, 0)  # X0 <= X1
        dbm.add_upper(0, 5)
        shifted = dbm.shift_variable(0, 10)
        # new X0 = old X0 + 10: satisfied by (15, 5)
        assert shifted.satisfied_by([15, 5])
        assert not shifted.satisfied_by([16, 5])

    def test_scale_down_up(self):
        dbm = DBM(1)
        dbm.add_upper(0, 12)
        dbm.add_lower(0, -8)
        scaled = dbm.scale_down(4)
        assert scaled.upper(0) == 3 and scaled.lower(0) == -2
        restored = scaled.scale_up(4)
        assert restored.upper(0) == 12

    def test_scale_down_rejects_non_multiple(self):
        dbm = DBM(1)
        dbm.add_upper(0, 5)
        with pytest.raises(ValueError):
            dbm.scale_down(4)

    def test_permute(self):
        dbm = DBM(2)
        dbm.add_upper(0, 1)
        out = dbm.permute([1, 0])
        assert out.upper(1) == 1 and out.upper(0) is None


class TestEquivalenceImplication:
    def test_canonical_equality(self):
        a = DBM(2)
        a.add_difference(0, 1, 0)
        a.add_difference(1, 0, 0)
        b = DBM(2)
        b.add_equality(0, 1, 0)
        assert a.equivalent(b)
        assert a == b
        assert hash(a) == hash(b)

    def test_unsat_all_equivalent(self):
        a = DBM(1)
        a.add_upper(0, 0)
        a.add_lower(0, 1)
        b = DBM(1)
        b.add_upper(0, -5)
        b.add_lower(0, 5)
        assert a.equivalent(b)

    def test_implies(self):
        tight = DBM(1)
        tight.add_upper(0, 3)
        loose = DBM(1)
        loose.add_upper(0, 10)
        assert tight.implies(loose)
        assert not loose.implies(tight)

    def test_unsat_implies_anything(self):
        bottom = DBM(1)
        bottom.add_upper(0, 0)
        bottom.add_lower(0, 1)
        other = DBM(1)
        other.add_upper(0, -100)
        assert bottom.implies(other)

    @given(small_dbms(max_arity=2), small_dbms(max_arity=2))
    @settings(max_examples=150, deadline=None)
    def test_implies_matches_brute_force(self, a, b):
        if a.size != b.size:
            with pytest.raises(ValueError):
                a.implies(b)
            return
        window = (-15, 15)
        sa = brute_solutions(a, *window)
        sb = brute_solutions(b, *window)
        if a.implies(b):
            assert sa <= sb

    def test_repr(self):
        dbm = DBM(1)
        dbm.add_upper(0, 2)
        assert "X0 - 0 <= 2" in repr(dbm)
        assert repr(DBM(1)) == "DBM(1: true)"
