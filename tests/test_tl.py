"""Tests for the temporal-logic layer."""

import pytest

from repro.core import algebra
from repro.core.errors import EvaluationError
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.tl import (
    Model,
    Next,
    Previous,
    always,
    atom,
    conj,
    disj,
    eventually,
    eventually_always,
    infinitely_often,
    negate,
    since,
    until,
)


def periodic_model() -> Model:
    """green at 6n and 6n+1; red at 6n+3; forever in both directions."""
    green = relation(temporal=["t"])
    green.add_tuple(["6n"])
    green.add_tuple(["1 + 6n"])
    red = relation(temporal=["t"])
    red.add_tuple(["3 + 6n"])
    return Model({"green": green, "red": red})


def finite_model() -> Model:
    """A single burst: p at {10, 11, 12} only."""
    p = relation(temporal=["t"])
    p.add_tuple(["n"], "t >= 10 & t <= 12")
    return Model({"p": p})


class TestAtoms:
    def test_atom_membership(self):
        m = periodic_model()
        sat = m.sat(atom("green"))
        assert sat.contains([6]) and sat.contains([7])
        assert not sat.contains([8])
        assert sat.contains([-6])

    def test_atom_with_data_selection(self):
        light = GeneralizedRelation.empty(
            Schema.make(temporal=["t"], data=["color"])
        )
        light.add_tuple(["4n"], data=["green"])
        light.add_tuple(["2 + 4n"], data=["red"])
        m = Model({"light": light})
        sat = m.sat(atom("light", color="green"))
        assert sat.contains([4]) and not sat.contains([2])

    def test_atom_needs_unique_column(self):
        wide = relation(temporal=["a", "b"])
        m = Model({"wide": wide})
        with pytest.raises(EvaluationError):
            m.sat(atom("wide"))
        # explicit column selection works
        from repro.tl import Atom

        m.sat(Atom(name="wide", column="a"))

    def test_unknown_relation(self):
        with pytest.raises(EvaluationError):
            periodic_model().sat(atom("blue"))


class TestBooleansAndNext:
    def test_negation(self):
        m = periodic_model()
        sat = m.sat(negate(atom("green")))
        assert sat.contains([2]) and not sat.contains([6])

    def test_conj_disj(self):
        m = periodic_model()
        never = m.sat(conj(atom("green"), atom("red")))
        assert never.is_empty()
        either = m.sat(disj(atom("green"), atom("red")))
        assert either.contains([3]) and either.contains([6])
        assert not either.contains([2])

    def test_next_previous(self):
        m = periodic_model()
        assert m.holds_at(Next(atom("green")), 5)      # 6 is green
        assert not m.holds_at(Next(atom("green")), 1)  # 2 is not
        assert m.holds_at(Previous(atom("green")), 7)  # 6 is green
        assert m.holds_at(Previous(atom("green")), 2)  # 1 is green

    def test_next_previous_inverse(self):
        m = periodic_model()
        sat = m.sat(Next(Previous(atom("green"))))
        assert algebra.equivalent(sat, m.sat(atom("green")))


class TestFutureOperators:
    def test_eventually_periodic_is_everything(self):
        m = periodic_model()
        assert m.holds_everywhere(eventually(atom("green")))

    def test_eventually_finite_burst(self):
        m = finite_model()
        sat = m.sat(eventually(atom("p")))
        # F p holds exactly up to the last occurrence.
        for t in (-100, 0, 10, 12):
            assert sat.contains([t]), t
        assert not sat.contains([13])

    def test_always_finite_burst(self):
        m = finite_model()
        assert m.sat(always(atom("p"))).is_empty()
        # G(¬p) holds exactly after the burst.
        sat = m.sat(always(negate(atom("p"))))
        assert sat.contains([13]) and not sat.contains([12])
        assert not sat.contains([0])

    def test_always_periodic(self):
        m = periodic_model()
        assert m.sat(always(atom("green"))).is_empty()
        assert m.holds_everywhere(always(disj(
            atom("green"), negate(atom("green")))))

    def test_infinitely_often(self):
        m = periodic_model()
        assert m.holds_everywhere(infinitely_often(atom("green")))
        fin = finite_model()
        assert fin.sat(infinitely_often(atom("p"))).is_empty()

    def test_eventually_always(self):
        fin = finite_model()
        # FG(¬p): eventually the burst is over, from everywhere.
        assert fin.holds_everywhere(eventually_always(negate(atom("p"))))
        assert fin.sat(eventually_always(atom("p"))).is_empty()


class TestUntilSince:
    def test_until_basic(self):
        m = finite_model()
        # (¬p) U p: p eventually occurs, ¬p strictly before it.
        sat = m.sat(until(negate(atom("p")), atom("p")))
        assert sat.contains([0]) and sat.contains([10]) and sat.contains([12])
        assert not sat.contains([13])

    def test_until_requires_hold(self):
        # q at 0; p at 5; r blocks at 3: (¬r) U p fails from t <= 3.
        p = relation(temporal=["t"])
        p.add_tuple([5])
        r = relation(temporal=["t"])
        r.add_tuple([3])
        m = Model({"p": p, "r": r})
        sat = m.sat(until(negate(atom("r")), atom("p")))
        assert sat.contains([4]) and sat.contains([5])
        assert not sat.contains([3]) and not sat.contains([0])

    def test_until_release_now(self):
        """φ U ψ holds wherever ψ holds (zero-step until)."""
        m = periodic_model()
        sat = m.sat(until(negate(atom("green")), atom("green")))
        green = m.sat(atom("green"))
        inter = algebra.intersect(sat, green)
        assert algebra.equivalent(inter, green)

    def test_true_until_is_eventually(self):
        m = finite_model()
        true_formula = disj(atom("p"), negate(atom("p")))
        sat_until = m.sat(until(true_formula, atom("p")))
        sat_f = m.sat(eventually(atom("p")))
        assert algebra.equivalent(sat_until, sat_f)

    def test_since_mirrors_until(self):
        m = finite_model()
        sat = m.sat(since(negate(atom("p")), atom("p")))
        # p S at t: p occurred at some u <= t with ¬p in (u, t].
        assert sat.contains([12]) and sat.contains([13]) and sat.contains([100])
        assert not sat.contains([9])


class TestDualities:
    def test_g_is_not_f_not(self):
        m = periodic_model()
        g = m.sat(always(atom("green")))
        fnf = algebra.complement(
            m.sat(eventually(negate(atom("green"))))
        )
        assert algebra.equivalent(g, fnf)

    def test_f_idempotent(self):
        m = finite_model()
        once = m.sat(eventually(atom("p")))
        twice = m.sat(eventually(eventually(atom("p"))))
        assert algebra.equivalent(once, twice)

    def test_holds_somewhere(self):
        m = periodic_model()
        assert m.holds_somewhere(conj(atom("green"), Next(atom("green"))))
        assert not m.holds_somewhere(conj(atom("green"), atom("red")))
