"""Differential and paper-example tests for projection (Section 3.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra
from repro.core.errors import SchemaError
from repro.core.relations import GeneralizedRelation, Schema, relation

from tests.helpers import random_relation

WINDOW = (-9, 9)


class TestFigure2:
    """Figure 2: real-relaxation projection is unsound over Z."""

    def figure2_relation(self):
        r = relation(temporal=["X1", "X2"])
        r.add_tuple(
            ["4n + 3", "8n + 1"], "X1 >= X2 & X1 <= X2 + 5 & X2 >= 2"
        )
        return r

    def test_true_projection(self):
        proj = algebra.project(self.figure2_relation(), ["X1"])
        points = sorted(x for (x,) in proj.snapshot(0, 40))
        assert points == [11, 19, 27, 35]

    def test_spurious_points_excluded(self):
        """3, 7, 15, 23 are in the real projection but not over Z."""
        proj = algebra.project(self.figure2_relation(), ["X1"])
        for spurious in (3, 7, 15, 23):
            assert not proj.contains([spurious])

    def test_real_relaxation_would_include_them(self):
        """Confirm the paper's point: the naive DBM projection (valid
        for free integer/real variables, wrong on lattices) admits the
        spurious points."""
        r = self.figure2_relation()
        (gtuple,) = r.tuples
        naive = gtuple.dbm.project([0])  # drop X2 without normalizing
        for spurious in (3, 7, 15, 23):
            # lattice-compatible with 4n+3, accepted by naive constraints
            assert gtuple.lrps[0].contains(spurious)
            assert naive.satisfied_by([spurious])


class TestProjectBasics:
    def test_reorder_only(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["2n", "3n"], "a <= b")
        out = algebra.project(r, ["b", "a"])
        assert out.schema.names == ("b", "a")
        assert out.contains([6, 2])
        assert not out.contains([2, 6])

    def test_drop_unconstrained_column(self):
        r = relation(temporal=["a", "b"])
        r.add_tuple(["2n", "3n"])
        out = algebra.project(r, ["a"])
        assert out.contains([2]) and not out.contains([1])

    def test_drop_data_column(self):
        schema = Schema.make(temporal=["t"], data=["who", "what"])
        r = GeneralizedRelation.empty(schema)
        r.add_tuple(["2n"], data=["r1", "t1"])
        out = algebra.project(r, ["t", "what"])
        assert out.schema.data_names == ("what",)
        assert out.contains([2], ["t1"])

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            algebra.project(relation(temporal=["a"]), ["zzz"])

    def test_duplicate_names(self):
        with pytest.raises(SchemaError):
            algebra.project(relation(temporal=["a"]), ["a", "a"])

    def test_project_to_empty_schema(self):
        r = relation(temporal=["a"])
        r.add_tuple(["2n"])
        out = algebra.project(r, [])
        assert len(out.schema) == 0
        assert not out.is_empty()

    def test_project_empty_relation_to_empty_schema(self):
        out = algebra.project(relation(temporal=["a"]), [])
        assert out.is_empty()


class TestPartialNormalization:
    def test_unconnected_columns_not_split(self):
        """Dropping an unconstrained column must not explode the others."""
        r = relation(temporal=["a", "b", "c"])
        r.add_tuple(["7n", "11n", "13n + 1"], "a <= 3")
        out = algebra.project(r, ["a", "b"])
        # b and c were never connected to each other or to a, so the
        # result is a single tuple with b's lrp untouched.
        assert len(out) == 1
        (t,) = out.tuples
        assert t.lrps[1].period == 11

    def test_cluster_limited_split(self):
        r = relation(temporal=["a", "b", "c"])
        r.add_tuple(["2n", "3n", "5n"], "a <= b")
        out = algebra.project(r, ["b", "c"])
        # cluster = {a, b} with lcm 6: a splits 3-ways, b 2-ways; c never.
        assert all(t.lrps[1].period == 5 for t in out.tuples)


class TestProjectionDifferential:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_project_first_of_two(self, seed):
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["X1", "X2"]), 2)
        out = algebra.project(r, ["X1"])
        wide = (-30, 30)
        expected_wide = {a for (a, b) in r.snapshot(*wide)}
        got = {a for (a,) in out.snapshot(*WINDOW)}
        expected = {a for a in expected_wide if WINDOW[0] <= a <= WINDOW[1]}
        # Exactness within the inner window: the wide enumeration covers
        # every preimage whose X2 lies within ±30 of the window; random
        # constraint constants are <= 6 so that margin suffices.
        assert got == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_project_middle_of_three(self, seed):
        rng = random.Random(seed)
        r = random_relation(
            rng, Schema.make(temporal=["X1", "X2", "X3"]), 2
        )
        out = algebra.project(r, ["X1", "X3"])
        wide = (-25, 25)
        inner = (-6, 6)
        expected = {
            (a, c)
            for (a, b, c) in r.snapshot(*wide)
            if inner[0] <= a <= inner[1] and inner[0] <= c <= inner[1]
        }
        got = out.snapshot(*inner)
        assert got == expected

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_every_projected_point_has_integer_preimage(self, seed):
        """Soundness half of Theorem 3.1, checked symbolically."""
        rng = random.Random(seed)
        r = random_relation(rng, Schema.make(temporal=["X1", "X2"]), 2)
        out = algebra.project(r, ["X1"])
        for (x,) in out.snapshot(*WINDOW):
            probe = algebra.select(r, f"X1 = {x}")
            assert not probe.is_empty(), f"{x} has no preimage"
