"""The redesigned plan API: Evaluator/Database/api kwargs, env vars, CLI."""

import warnings

import pytest

import repro.api as api
from repro.perf import config as perf_config
from repro.plan.report import PlanReport
from repro.query import Database
from repro.query.explain import PlanNode as LegacyPlanNode


@pytest.fixture(autouse=True)
def restore_perf_config():
    yield
    perf_config.reset_config()


def ticks_db() -> Database:
    db = Database()
    db.create("Even", temporal=["t"])
    db.relation("Even").add_tuple(["2n"])
    return db


FIXTURE_QUERY = "Even(t) & t >= 0"


class TestKeywordSurface:
    def test_engine_and_optimize_are_keyword_only(self):
        from repro.query.evaluator import Evaluator

        with pytest.raises(TypeError):
            Evaluator({}, None, 4000, 4096, None, "native")

    def test_database_query_kwargs(self):
        db = ticks_db()
        res_naive = db.query(FIXTURE_QUERY, optimize=False)
        res_opt = db.query(FIXTURE_QUERY, engine="native", optimize=True)
        assert res_naive.snapshot(-10, 10) == res_opt.snapshot(-10, 10)

    def test_database_ask_kwargs(self):
        db = ticks_db()
        assert db.ask("EXISTS t. Even(t) & t >= 0", optimize=True)

    def test_unknown_engine_rejected(self):
        from repro.core.errors import ReproValueError

        db = ticks_db()
        with pytest.raises(ReproValueError, match="unknown engine"):
            db.query(FIXTURE_QUERY, engine="warp-drive")


class TestEnvAndConfig:
    def test_optimize_env_parsing(self, monkeypatch):
        for raw, expected in (
            ("1", True),
            ("true", True),
            ("on", True),
            ("", False),
            ("0", False),
            ("false", False),
            ("no", False),
            ("off", False),
        ):
            monkeypatch.setenv("REPRO_OPTIMIZE", raw)
            assert perf_config._from_env().optimize is expected

    def test_engine_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "Native")
        assert perf_config._from_env().engine == "native"
        monkeypatch.delenv("REPRO_ENGINE")
        assert perf_config._from_env().engine == "native"

    def test_configure_optimize_drives_evaluation(self):
        db = ticks_db()
        perf_config.configure(optimize=True)
        report = db.explain(FIXTURE_QUERY)
        assert isinstance(report, PlanReport)
        assert report.optimized

    def test_explicit_kwarg_overrides_config(self):
        db = ticks_db()
        perf_config.configure(optimize=True)
        legacy = db.explain(FIXTURE_QUERY, optimize=False)
        assert isinstance(legacy, LegacyPlanNode)


class TestExplainSurfaces:
    def test_default_explain_keeps_legacy_shape(self):
        db = ticks_db()
        # The default follows the config: optimizer off ⇒ legacy shape.
        with perf_config.overrides(optimize=False):
            plan = db.explain(FIXTURE_QUERY)
        assert isinstance(plan, LegacyPlanNode)
        assert plan.operator == "join"

    def test_optimized_explain_returns_report(self):
        db = ticks_db()
        report = db.explain(FIXTURE_QUERY, optimize=True)
        assert isinstance(report, PlanReport)
        assert report.optimized and report.engine == "native"
        # EXPLAIN ANALYZE semantics: observed sizes attached per node.
        assert report.annotations
        assert set(report.annotations.values()) == {1}
        text = str(report)
        assert "passes:" in text and "push-selects" in text

    def test_database_plan_is_static(self):
        db = ticks_db()
        report = db.plan(FIXTURE_QUERY, optimize=True)
        assert isinstance(report, PlanReport)
        assert report.annotations is None
        assert report.naive.size() > report.plan.size()

    def test_explain_directive_with_optimizer(self):
        db = ticks_db()
        result = db.query(f"EXPLAIN {FIXTURE_QUERY}", optimize=True)
        assert isinstance(result, PlanReport)

    def test_report_to_dict_roundtrips(self):
        db = ticks_db()
        payload = db.explain(FIXTURE_QUERY, optimize=True).to_dict()
        assert payload["optimized"] is True
        assert payload["plan"]["op"]
        assert payload["naive"]["op"]
        assert [p["name"] for p in payload["passes"]][0] == "fold-constants"

        def sizes(node):
            yield node.get("out_tuples")
            for child in node.get("children", ()):
                yield from sizes(child)

        assert all(s == 1 for s in sizes(payload["plan"]))

    def test_trace_still_works_optimized(self):
        db = ticks_db()
        trace = db.trace(FIXTURE_QUERY, optimize=True)
        result = db.query(FIXTURE_QUERY, optimize=False)
        assert trace.result.snapshot(-10, 10) == result.snapshot(-10, 10)
        assert "query.evaluate" in trace.flamegraph()


class TestApiFacade:
    def test_api_plan_and_explain(self):
        db = ticks_db()
        static = api.plan(db, FIXTURE_QUERY, optimize=True)
        executed = api.explain(db, FIXTURE_QUERY, optimize=True)
        assert isinstance(static, api.PlanReport)
        assert static.annotations is None
        assert executed.annotations
        assert static.plan.key() == executed.plan.key()

    def test_api_plan_node_is_ir(self):
        from repro.plan.nodes import PlanNode as IRNode

        assert api.PlanNode is IRNode

    def test_api_engine_registry_exports(self):
        assert "native" in api.engines()
        assert isinstance(api.get_engine("native"), api.NativeEngine)
        assert issubclass(api.NativeEngine, api.Engine)

    def test_deprecated_module_explain_warns_once(self):
        import importlib

        # `repro.query.explain` the attribute is the deprecated function
        # (the package re-exports it); fetch the module explicitly.
        explain_mod = importlib.import_module("repro.query.explain")

        explain_mod._EXPLAIN_WARNED = False
        db = ticks_db()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = explain_mod.explain(db, "Even(t)")
            explain_mod.explain(db, "Even(t)")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        # The shim still produces the legacy output shape.
        assert isinstance(first, LegacyPlanNode)


class TestCli:
    def run_cli(self, *argv) -> str:
        import contextlib
        import io

        from repro.cli import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(list(argv))
        assert code == 0
        return out.getvalue()

    COMMANDS = (
        "-c", "create Even(t:T)",
        "-c", "insert Even [2n] :",
    )

    def test_plan_command(self):
        out = self.run_cli(
            "--no-optimize",  # pin: the env may set REPRO_OPTIMIZE=1
            *self.COMMANDS,
            "-c", f"plan {FIXTURE_QUERY}",
            "-c", "quit",
        )
        assert "plan [naive, engine=native]" in out

    def test_optimize_flag(self):
        out = self.run_cli(
            "--optimize",
            *self.COMMANDS,
            "-c", f"plan {FIXTURE_QUERY}",
            "-c", f"explain {FIXTURE_QUERY}",
            "-c", "quit",
        )
        assert "plan [optimized, engine=native]" in out
        assert "push-selects" in out
        assert "tuple(s)" in out  # explain annotates observed sizes

    def test_no_optimize_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPTIMIZE", "1")
        perf_config.reset_config()
        out = self.run_cli(
            "--no-optimize",
            *self.COMMANDS,
            "-c", f"plan {FIXTURE_QUERY}",
            "-c", "quit",
        )
        assert "plan [naive, engine=native]" in out

    def test_unknown_engine_flag_fails_fast(self):
        from repro.core.errors import ReproValueError

        with pytest.raises(ReproValueError, match="unknown engine"):
            self.run_cli("--engine", "warp-drive", "-c", "quit")

    def test_perf_shows_planner_config(self):
        out = self.run_cli("--optimize", "-c", "perf", "-c", "quit")
        assert "optimize=on" in out and "engine=native" in out
