"""Tests for the derived Allen composition table."""

import itertools

import pytest

from repro.intervals import ALLEN_INVERSES, ALLEN_TEMPLATES, holds
from repro.intervals.composition import (
    compose,
    composition_table,
    feasible_relations,
)


def brute_compose(r1: str, r2: str, span: int = 6) -> frozenset[str]:
    """Composition by enumerating small proper intervals."""
    out = set()
    intervals = [
        (s, e) for s in range(span) for e in range(s + 1, span + 1)
    ]
    for a in intervals:
        for b in intervals:
            if not holds(r1, a, b):
                continue
            for c in intervals:
                if holds(r2, b, c):
                    out.add(next(
                        name for name in ALLEN_TEMPLATES if holds(name, a, c)
                    ))
    return frozenset(out)


class TestKnownEntries:
    def test_before_before(self):
        assert compose("before", "before") == frozenset({"before"})

    def test_meets_meets(self):
        assert compose("meets", "meets") == frozenset({"before"})

    def test_equals_is_identity(self):
        for name in ALLEN_TEMPLATES:
            assert compose("equals", name) == frozenset({name})
            assert compose(name, "equals") == frozenset({name})

    def test_during_during(self):
        assert compose("during", "during") == frozenset({"during"})

    def test_before_after_is_universal(self):
        # A before B and B after C leaves A vs C fully unconstrained.
        assert compose("before", "after") == frozenset(ALLEN_TEMPLATES)

    def test_overlaps_overlaps(self):
        assert compose("overlaps", "overlaps") == frozenset(
            {"before", "meets", "overlaps"}
        )

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            compose("nearby", "before")
        with pytest.raises(KeyError):
            compose("before", "nearby")


class TestDerivedTableSoundAndComplete:
    @pytest.mark.parametrize("r1", sorted(ALLEN_TEMPLATES))
    def test_row_matches_brute_force(self, r1):
        """Each derived row equals enumeration over small intervals.

        A span of 6 suffices: every Allen configuration over three
        intervals is realizable with endpoints in [0, 6] (at most six
        distinct endpoint values are ever needed).
        """
        for r2 in ALLEN_TEMPLATES:
            assert compose(r1, r2) == brute_compose(r1, r2), (r1, r2)

    def test_table_shape(self):
        table = composition_table()
        assert len(table) == 13 * 13
        assert all(entries for entries in table.values())

    def test_inverse_symmetry(self):
        """compose(r1, r2)⁻¹ == compose(r2⁻¹, r1⁻¹)."""
        for r1, r2 in itertools.product(sorted(ALLEN_TEMPLATES), repeat=2):
            lhs = {ALLEN_INVERSES[r] for r in compose(r1, r2)}
            rhs = compose(ALLEN_INVERSES[r2], ALLEN_INVERSES[r1])
            assert lhs == rhs, (r1, r2)


class TestNetworkInference:
    def test_three_interval_chain(self):
        out = feasible_relations(
            known=[(("a1", "a2"), "meets", ("b1", "b2")),
                   (("b1", "b2"), "meets", ("c1", "c2"))],
            query=(("a1", "a2"), ("c1", "c2")),
            intervals=[("a1", "a2"), ("b1", "b2"), ("c1", "c2")],
        )
        assert out == {"before"}

    def test_network_tighter_than_pairwise_composition(self):
        """A third constraint can prune relations pairwise composition
        would allow."""
        intervals = [("a1", "a2"), ("b1", "b2"), ("c1", "c2")]
        loose = feasible_relations(
            known=[(intervals[0], "overlaps", intervals[1]),
                   (intervals[1], "overlaps", intervals[2])],
            query=(intervals[0], intervals[2]),
            intervals=intervals,
        )
        assert loose == {"before", "meets", "overlaps"}
        tight = feasible_relations(
            known=[(intervals[0], "overlaps", intervals[1]),
                   (intervals[1], "overlaps", intervals[2]),
                   (intervals[0], "meets", intervals[2])],
            query=(intervals[0], intervals[2]),
            intervals=intervals,
        )
        assert tight == {"meets"}

    def test_inconsistent_network(self):
        intervals = [("a1", "a2"), ("b1", "b2")]
        out = feasible_relations(
            known=[(intervals[0], "before", intervals[1]),
                   (intervals[1], "before", intervals[0])],
            query=(intervals[0], intervals[1]),
            intervals=intervals,
        )
        assert out == set()
