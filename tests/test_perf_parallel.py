"""Tests for the optional process-parallel fan-out.

The fan-out must be a pure throughput knob: for any worker count the
algebra returns the same tuples in the same order as the serial path.
Worker functions must be module-level so they pickle across the pool
boundary.
"""

from __future__ import annotations

import random

import pytest

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema
from repro.perf import parallel
from repro.perf.config import overrides, reset_config
from repro.query import parse_query
from repro.query.evaluator import Evaluator
from tests.helpers import random_relation

SCHEMA2 = Schema.make(temporal=["A", "B"])


def _square_chunk(payloads, extra):
    """Module-level worker: square each payload and add ``extra``."""
    return [p * p + extra for p in payloads]


def _pair_chunk(payloads, _extra):
    """Worker returning several results per payload (list flattening)."""
    out = []
    for p in payloads:
        out.extend([p, -p])
    return out


class TestRunChunked:
    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    @pytest.mark.parametrize("n", [0, 1, 2, 7, 40])
    def test_matches_serial_for_any_worker_count(self, workers, n):
        payloads = list(range(n))
        expected = _square_chunk(payloads, 10)
        assert parallel.run_chunked(_square_chunk, payloads, 10, workers) == (
            expected
        )

    def test_preserves_order_with_multiple_results_per_payload(self):
        payloads = list(range(17))
        expected = _pair_chunk(payloads, None)
        got = parallel.run_chunked(_pair_chunk, payloads, None, 2)
        assert got == expected

    def test_unpicklable_worker_falls_back_to_serial(self):
        # a closure cannot cross the process boundary; the fan-out must
        # catch the failure and still return the right answer serially
        bump = 3
        worker = lambda payloads, extra: [p + bump for p in payloads]  # noqa: E731
        assert parallel.run_chunked(worker, list(range(30)), None, 2) == [
            p + 3 for p in range(30)
        ]


def _keylist(relation: GeneralizedRelation) -> list:
    return [t.canonical_key() for t in relation]


class TestSharedMemoryTransport:
    def test_round_trips_tuples_through_shared_memory(self):
        rng = random.Random(77)
        tuples = list(random_relation(rng, SCHEMA2, 4))
        payloads = [(t1, t2) for t1 in tuples for t2 in tuples[:2]]
        extra = tuples[:3]
        shared = parallel._encode_shared(payloads, extra)
        assert shared is not None
        shm, encoded_payloads, encoded_extra = shared
        try:
            assert len(encoded_payloads) == len(payloads)
            assert isinstance(encoded_extra, parallel._SharedExtra)
            rebuilt = parallel._materialize(shm.name)
            for original, (i1, i2) in zip(payloads, encoded_payloads):
                for t, idx in zip(original, (i1, i2)):
                    copy = rebuilt[idx]
                    assert copy.canonical_key() == t.canonical_key()
                    assert copy.dbm._closed == t.dbm._closed
        finally:
            parallel._materialized.clear()
            shm.close()
            shm.unlink()

    def test_non_tuple_payloads_are_not_shared(self):
        assert parallel._encode_shared([1, 2, 3], None) is None

    def test_cost_gate_keeps_small_workloads_serial(self):
        """Below ``parallel_min_cost`` the fan-out must not engage."""
        from repro.perf.config import PERF_COUNTERS, reset_counters

        rng = random.Random(5)
        r1 = random_relation(rng, SCHEMA2, 3)
        r2 = random_relation(rng, SCHEMA2, 3)
        with overrides(workers=4, parallel_threshold=1):
            reset_counters()
            algebra.intersect(r1, r2)
            assert PERF_COUNTERS["parallel_fanout"] == 0
            assert PERF_COUNTERS["parallel_fallback"] == 0


class TestParallelAlgebraDeterminism:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("workers", [2, 4])
    def test_intersect_join_subtract_identical_to_serial(self, seed, workers):
        """Same tuples in the same order, independent of worker count."""
        rng = random.Random(4000 + seed)
        r1 = random_relation(rng, SCHEMA2, 3)
        r2 = random_relation(rng, SCHEMA2, 3)
        with overrides(workers=0):
            serial = (
                algebra.intersect(r1, r2),
                algebra.join(r1, r2),
                algebra.subtract(r1, r2),
            )
        # parallel_min_cost=0 forces fan-out (and its shared-memory tuple
        # transport) even though these tiny workloads would normally stay
        # serial under the cost-aware gate.
        with overrides(
            workers=workers, parallel_threshold=1, parallel_min_cost=0
        ):
            fanned = (
                algebra.intersect(r1, r2),
                algebra.join(r1, r2),
                algebra.subtract(r1, r2),
            )
        for serial_rel, fanned_rel in zip(serial, fanned):
            assert _keylist(fanned_rel) == _keylist(serial_rel)


class TestEvaluatorWorkers:
    def _relations(self) -> dict[str, GeneralizedRelation]:
        rng = random.Random(99)
        return {"R": random_relation(rng, SCHEMA2, 4)}

    @pytest.mark.parametrize("workers", [1, 2])
    def test_evaluator_workers_matches_default(self, workers):
        relations = self._relations()
        query = parse_query(
            "EXISTS b. R(a, b) & a >= 0",
            {name: rel.schema for name, rel in relations.items()},
        )
        plain = Evaluator(relations).evaluate(query)
        fanned = Evaluator(relations, workers=workers).evaluate(query)
        assert _keylist(fanned) == _keylist(plain)
        assert fanned.schema == plain.schema


class TestCLIFlags:
    def test_workers_and_no_cache_flags(self, capsys):
        from repro.cli import main

        try:
            code = main(
                [
                    "--workers",
                    "2",
                    "--no-cache",
                    "-c",
                    "create P(t:T)",
                    "-c",
                    "insert P [3 + 5n]",
                    "-c",
                    "perf",
                    "-c",
                    "quit",
                ]
            )
        finally:
            reset_config()
        out = capsys.readouterr().out
        assert code == 0
        assert "workers=2" in out
        assert "cache=off" in out
