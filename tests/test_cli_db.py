"""Tests for the ``repro db`` CLI subcommand and durable shell session."""

import pytest

from repro.cli import Session, main
from repro.query.database import Database


def run_cli(*argv) -> int:
    return main(list(argv))


class TestDbSubcommand:
    def test_init_creates_empty_store(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        assert run_cli("db", "init", path) == 0
        assert "initialized" in capsys.readouterr().out
        with Database.open(path, create=False) as db:
            assert db.names == ()

    def test_open_commit_reopen(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        assert (
            run_cli(
                "db",
                "open",
                path,
                "-c",
                "create Ev(t:T)",
                "-c",
                "insert Ev [5n] : t >= 0",
                "-c",
                "commit",
            )
            == 0
        )
        assert "committed 1 record(s)" in capsys.readouterr().out
        assert run_cli("db", "open", path, "-c", "window Ev 0 20") == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["0", "5", "10", "15", "20"]

    def test_uncommitted_shell_work_is_lost(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        run_cli("db", "open", path, "-c", "create Gone(t:T)")  # no commit
        capsys.readouterr()
        run_cli("db", "open", path, "-c", "list")
        assert "(no relations)" in capsys.readouterr().out

    def test_compact_subcommand(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        run_cli(
            "db", "open", path,
            "-c", "create Ev(t:T)",
            "-c", "insert Ev [3n]",
            "-c", "commit",
        )
        capsys.readouterr()
        assert run_cli("db", "compact", path) == 0
        assert "compacted into snapshot-" in capsys.readouterr().out
        with Database.open(path, create=False) as db:
            assert db.storage.info()["wal_bytes"] == 0
            assert sorted(db.relation("Ev").enumerate(0, 6)) == [
                (0,), (3,), (6,)
            ]

    def test_info_subcommand(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        run_cli(
            "db", "open", path,
            "-c", "create Train(dep:T, arr:T)",
            "-c", "insert Train [2 + 60n, 80 + 60n] : dep = arr - 78",
            "-c", "commit",
        )
        capsys.readouterr()
        assert run_cli("db", "info", path) == 0
        out = capsys.readouterr().out
        assert "format 1" in out
        assert "Train: 1 generalized tuple(s)" in out

    def test_compact_missing_database_errors(self, tmp_path, capsys):
        assert run_cli("db", "compact", str(tmp_path / "nope")) == 1
        out = capsys.readouterr().out
        assert out.startswith("error: no database at")

    def test_shell_compact_command(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        run_cli(
            "db", "open", path,
            "-c", "create Ev(t:T)",
            "-c", "insert Ev [2n]",
            "-c", "commit",
            "-c", "compact",
        )
        assert "compacted into" in capsys.readouterr().out


class TestDbDiagnostics:
    """``repro db`` on broken roots: one clean line, never a traceback."""

    def test_info_missing_root(self, tmp_path, capsys):
        assert run_cli("db", "info", str(tmp_path / "nope")) == 1
        out = capsys.readouterr().out
        assert out.startswith("error: no database at")
        assert "Traceback" not in out

    def test_info_truncated_manifest(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        run_cli("db", "init", path)
        capsys.readouterr()
        manifest = tmp_path / "db" / "MANIFEST"
        manifest.write_bytes(manifest.read_bytes()[:5])
        assert run_cli("db", "info", path) == 1
        out = capsys.readouterr().out
        assert out.startswith("error:")
        assert "corrupt" in out

    def test_info_empty_manifest(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        run_cli("db", "init", path)
        capsys.readouterr()
        (tmp_path / "db" / "MANIFEST").write_bytes(b"")
        assert run_cli("db", "info", path) == 1
        assert capsys.readouterr().out.startswith("error:")

    def test_info_locked_root(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        with Database.open(path):
            capsys.readouterr()
            assert run_cli("db", "info", path) == 1
            assert "locked by another" in capsys.readouterr().out

    def test_open_missing_parent_still_initializes(self, tmp_path, capsys):
        # `db open` (create semantics) on a fresh path is not an error
        path = str(tmp_path / "fresh")
        assert run_cli("db", "open", path, "-c", "list") == 0
        assert "(no relations)" in capsys.readouterr().out


class TestSessionDurabilityCommands:
    def test_commit_without_store_is_an_error(self):
        session = Session()
        out = session.execute("commit")
        assert "error" in out and "durable" in out

    def test_compact_without_store_is_an_error(self):
        session = Session()
        assert "error" in session.execute("compact")

    def test_drop_command(self):
        session = Session()
        session.execute("create Ev(t:T)")
        assert session.execute("drop Ev") == "dropped Ev"
        assert "(no relations)" in session.execute("list")
        assert "error" in session.execute("drop Ev")
        assert "error: usage" in session.execute("drop")

    def test_nothing_to_commit(self, tmp_path):
        with Database.open(str(tmp_path / "db")) as db:
            session = Session(db=db)
            assert session.execute("commit") == "nothing to commit"

    def test_help_mentions_durability_commands(self):
        text = Session().execute("help")
        assert "commit" in text and "compact" in text and "drop" in text
