"""Tests for the attribute-name constraint layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.constraints import (
    Op,
    VarConstAtom,
    VarVarAtom,
    atoms_to_dbm,
    dbm_to_atoms,
    parse_atom,
    parse_atoms,
)
from repro.core.dbm import DBM
from repro.core.errors import ConstraintError, ParseError


class TestParseAtom:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("X1 <= X2 + 4", VarVarAtom("X1", Op.LE, "X2", 4)),
            ("X1 = X2 - 2", VarVarAtom("X1", Op.EQ, "X2", -2)),
            ("X1 >= X2", VarVarAtom("X1", Op.GE, "X2", 0)),
            ("X1 < X2 + 1", VarVarAtom("X1", Op.LT, "X2", 1)),
            ("X2 >= 2", VarConstAtom("X2", Op.GE, 2)),
            ("X1 = -7", VarConstAtom("X1", Op.EQ, -7)),
            ("dep = arr - 78", VarVarAtom("dep", Op.EQ, "arr", -78)),
            ("X1>X2", VarVarAtom("X1", Op.GT, "X2", 0)),
        ],
    )
    def test_accepts(self, text, expected):
        assert parse_atom(text) == expected

    @pytest.mark.parametrize("text", ["", "X1", "X1 + X2 <= 3", "<= 4", "X1 <= X2 + X3"])
    def test_rejects(self, text):
        with pytest.raises(ParseError):
            parse_atom(text)

    def test_atom_str_round_trip(self):
        for text in ["X1 <= X2 + 4", "X1 = X2 - 2", "X2 >= 2", "X1 = 7"]:
            atom = parse_atom(text)
            assert parse_atom(str(atom)) == atom


class TestParseAtoms:
    def test_ampersand(self):
        atoms = parse_atoms("X1 <= X2 & X2 >= 0")
        assert len(atoms) == 2

    def test_comma_and_word(self):
        assert len(parse_atoms("X1 <= X2, X2 >= 0")) == 2
        assert len(parse_atoms("X1 <= X2 and X2 >= 0")) == 2

    def test_unicode_wedge(self):
        assert len(parse_atoms("X1 <= X2 ∧ X2 >= 0")) == 2

    def test_empty_and_true(self):
        assert parse_atoms("") == []
        assert parse_atoms("  TRUE ") == []


class TestAtomsToDbm:
    def test_var_var_forms(self):
        names = ["X1", "X2"]
        dbm = atoms_to_dbm(parse_atoms("X1 <= X2 + 4"), names)
        assert dbm.satisfied_by([5, 1]) and not dbm.satisfied_by([6, 1])
        dbm = atoms_to_dbm(parse_atoms("X1 > X2"), names)
        assert dbm.satisfied_by([2, 1]) and not dbm.satisfied_by([1, 1])
        dbm = atoms_to_dbm(parse_atoms("X1 = X2 - 2"), names)
        assert dbm.satisfied_by([3, 5]) and not dbm.satisfied_by([3, 6])

    def test_var_const_forms(self):
        names = ["X1"]
        assert atoms_to_dbm(parse_atoms("X1 < 3"), names).satisfied_by([2])
        assert not atoms_to_dbm(parse_atoms("X1 < 3"), names).satisfied_by([3])
        assert atoms_to_dbm(parse_atoms("X1 > -1"), names).satisfied_by([0])
        assert atoms_to_dbm(parse_atoms("X1 = 5"), names).satisfied_by([5])

    def test_unknown_attribute(self):
        with pytest.raises(ConstraintError):
            atoms_to_dbm(parse_atoms("X9 <= 3"), ["X1"])
        with pytest.raises(ConstraintError):
            atoms_to_dbm(parse_atoms("X1 <= X9"), ["X1"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConstraintError):
            atoms_to_dbm([], ["X1", "X1"])

    def test_self_comparison_tautology(self):
        dbm = atoms_to_dbm(parse_atoms("X1 <= X1 + 1"), ["X1"])
        assert dbm.is_satisfiable()

    def test_self_comparison_contradiction(self):
        dbm = atoms_to_dbm(parse_atoms("X1 = X1 + 1"), ["X1"])
        assert not dbm.is_satisfiable()

    def test_self_comparison_strict(self):
        assert not atoms_to_dbm(parse_atoms("X1 < X1"), ["X1"]).is_satisfiable()
        assert atoms_to_dbm(parse_atoms("X1 > X1 - 1"), ["X1"]).is_satisfiable()


class TestDbmToAtoms:
    def test_round_trip_semantics(self):
        names = ["X1", "X2"]
        source = parse_atoms("X1 <= X2 + 4 & X2 >= 2 & X1 = 5")
        dbm = atoms_to_dbm(source, names)
        rendered = dbm_to_atoms(dbm, names)
        back = atoms_to_dbm(rendered, names)
        assert dbm.equivalent(back)

    def test_equality_merging(self):
        names = ["X1", "X2"]
        dbm = atoms_to_dbm(parse_atoms("X1 = X2 - 2"), names)
        rendered = dbm_to_atoms(dbm, names)
        assert VarVarAtom("X1", Op.EQ, "X2", -2) in rendered

    def test_value_pin_merging(self):
        dbm = atoms_to_dbm(parse_atoms("X1 = 7"), ["X1"])
        rendered = dbm_to_atoms(dbm, ["X1"])
        assert rendered == [VarConstAtom("X1", Op.EQ, 7)]

    def test_size_mismatch(self):
        with pytest.raises(ConstraintError):
            dbm_to_atoms(DBM(2), ["X1"])

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.integers(0, 2),
                st.integers(-6, 6),
            ),
            max_size=5,
        )
    )
    def test_random_round_trip(self, triples):
        names = ["A", "B", "C"]
        dbm = DBM(3)
        for i, j, bound in triples:
            if i == j:
                dbm.add_upper(i, bound)
            else:
                dbm.add_difference(i, j, bound)
        rendered = dbm_to_atoms(dbm, names)
        back = atoms_to_dbm(rendered, names)
        assert dbm.copy().equivalent(back)


class TestOpFlipped:
    def test_all(self):
        assert Op.LE.flipped() is Op.GE
        assert Op.GE.flipped() is Op.LE
        assert Op.LT.flipped() is Op.GT
        assert Op.GT.flipped() is Op.LT
        assert Op.EQ.flipped() is Op.EQ
