"""Tests for the ``repro deduce`` CLI subcommand.

The contract: evaluate or install Datalog programs from the shell,
with operator errors — unstratifiable programs, IDB/EDB name clashes,
missing files — reported as one clean ``error: ...`` line and exit
status 1, never a traceback (the ``repro db`` convention).
"""

import pytest

from repro.cli import main
from repro.query.database import Database

PROGRAM = (
    "declare Busy(t:T, robot:D)\n"
    "Busy(t, r) <- EXISTS a. EXISTS b. "
    "(Perform(a, b, r) & a <= t & t <= b)\n"
)

FACTS = (
    "relation Perform(t1:T, t2:T, robot:D)\n"
    '[2 + 10n, 5 + 10n] : t1 = t2 - 3 | "r1"\n'
)


def run_cli(*argv) -> int:
    return main(list(argv))


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.dl"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.tdb"
    path.write_text(FACTS)
    return str(path)


class TestEvaluate:
    def test_data_file_evaluation(self, program_file, facts_file, capsys):
        assert run_cli("deduce", program_file, "--data", facts_file) == 0
        out = capsys.readouterr().out
        assert "relation Busy(t:T, robot:D)" in out
        assert "r1" in out

    def test_naive_strategy_agrees(
        self, program_file, facts_file, capsys
    ):
        run_cli("deduce", program_file, "--data", facts_file)
        fast = capsys.readouterr().out
        run_cli(
            "deduce", program_file, "--data", facts_file,
            "--strategy", "naive",
        )
        assert capsys.readouterr().out == fast

    def test_durable_db_evaluation(self, tmp_path, program_file, capsys):
        root = str(tmp_path / "db")
        with Database.open(root) as db:
            db.create("Perform", temporal=["t1", "t2"], data=["robot"])
            db.relation("Perform").add_tuple(
                ["2 + 10n", "5 + 10n"], "t1 = t2 - 3", ["r1"]
            )
            db.commit()
        assert run_cli("deduce", program_file, "--db", root) == 0
        assert "Busy" in capsys.readouterr().out


class TestInstall:
    def test_install_materializes_views(
        self, tmp_path, program_file, capsys
    ):
        root = str(tmp_path / "db")
        with Database.open(root) as db:
            db.create("Perform", temporal=["t1", "t2"], data=["robot"])
            db.relation("Perform").add_tuple(
                ["2 + 10n", "5 + 10n"], "t1 = t2 - 3", ["r1"]
            )
            db.commit()
        assert (
            run_cli("deduce", program_file, "--db", root, "--install") == 0
        )
        out = capsys.readouterr().out
        assert "installed Busy" in out and "watermark" in out
        with Database.open(root, create=False) as db:
            assert "Busy" in db.names

    def test_install_requires_db(self, program_file, capsys):
        with pytest.raises(SystemExit):
            run_cli("deduce", program_file, "--install")


class TestCleanErrors:
    def test_unstratifiable_program(self, tmp_path, facts_file, capsys):
        path = tmp_path / "bad.dl"
        path.write_text(
            "declare P(t:T)\n"
            "declare Q(t:T)\n"
            "P(t) <- EXISTS a. EXISTS b. "
            '(Perform(a, b, "r1") & a <= t & t <= b) & ~Q(t)\n'
            "Q(t) <- EXISTS a. EXISTS b. "
            '(Perform(a, b, "r1") & a <= t & t <= b) & ~P(t)\n'
        )
        assert run_cli("deduce", str(path), "--data", facts_file) == 1
        out = capsys.readouterr().out
        assert out.startswith("error: ")
        assert "not stratifiable" in out
        assert "Traceback" not in out

    def test_idb_edb_clash(self, tmp_path, facts_file, capsys):
        path = tmp_path / "clash.dl"
        path.write_text(
            "declare Perform(t:T, r:D)\nPerform(t, r) <- Other(t, r)\n"
        )
        assert run_cli("deduce", str(path), "--data", facts_file) == 1
        out = capsys.readouterr().out
        assert out.startswith("error: ")
        assert "clashes" in out

    def test_missing_program_file(self, capsys):
        assert run_cli("deduce", "no-such-file.dl") == 1
        assert capsys.readouterr().out.startswith("error: ")

    def test_missing_db_root(self, program_file, capsys):
        assert (
            run_cli("deduce", program_file, "--db", "no-such-root") == 1
        )
        assert capsys.readouterr().out.startswith("error: ")
