"""Tests for Allen relations and calendar helpers."""

import itertools

import pytest

from repro.core import algebra
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.intervals import (
    ALLEN_INVERSES,
    ALLEN_TEMPLATES,
    MINUTES_PER_DAY,
    MINUTES_PER_HOUR,
    RecurringTrip,
    allen_atoms,
    at_time,
    classify,
    daily,
    every,
    fmt_time,
    holds,
    hourly,
    liege_brussels_schedule,
    pairs_related,
    proper,
    schedule_relation,
    weekly,
)


def proper_intervals(lo, hi):
    for s in range(lo, hi):
        for e in range(s + 1, hi + 1):
            yield (s, e)


class TestAllenRelations:
    def test_thirteen_relations(self):
        assert len(ALLEN_TEMPLATES) == 13
        assert set(ALLEN_INVERSES) == set(ALLEN_TEMPLATES)

    def test_exhaustive_and_exclusive(self):
        """Every pair of proper intervals satisfies exactly one relation."""
        for a in proper_intervals(0, 5):
            for b in proper_intervals(0, 5):
                matching = [
                    name for name in ALLEN_TEMPLATES if holds(name, a, b)
                ]
                assert len(matching) == 1, (a, b, matching)

    def test_inverses(self):
        for a in proper_intervals(0, 5):
            for b in proper_intervals(0, 5):
                name = classify(a, b)
                assert classify(b, a) == ALLEN_INVERSES[name]

    def test_classify_rejects_improper(self):
        with pytest.raises(ValueError):
            classify((3, 3), (0, 1))

    def test_unknown_relation_rejected(self):
        with pytest.raises(KeyError):
            holds("nearby", (0, 1), (2, 3))
        with pytest.raises(KeyError):
            allen_atoms("nearby", ("a", "b"), ("c", "d"))

    def test_examples(self):
        assert holds("before", (0, 1), (2, 3))
        assert holds("meets", (0, 2), (2, 4))
        assert holds("overlaps", (0, 3), (2, 5))
        assert holds("during", (2, 3), (0, 5))
        assert holds("starts", (0, 2), (0, 5))
        assert holds("finishes", (3, 5), (0, 5))
        assert holds("equals", (1, 4), (1, 4))


class TestSymbolicAllen:
    def make_intervals(self, lrp_start, duration, name_prefix):
        r = relation(temporal=[f"{name_prefix}s", f"{name_prefix}e"])
        r.add_tuple(
            [lrp_start, f"{duration} + {lrp_start}"]
            if isinstance(lrp_start, str)
            else [lrp_start, lrp_start + duration],
            f"{name_prefix}s = {name_prefix}e - {duration}",
        )
        return r

    def test_pairs_related_on_periodic_intervals(self):
        # A: intervals [10n, 10n+3]; B: intervals [10n+5, 10n+6].
        a = relation(temporal=["as_", "ae"])
        a.add_tuple(["10n", "3 + 10n"], "as_ = ae - 3")
        b = relation(temporal=["bs", "be"])
        b.add_tuple(["5 + 10n", "6 + 10n"], "bs = be - 1")
        out = pairs_related(a, b, "before", ("as_", "ae"), ("bs", "be"))
        # [0,3] before [5,6]: yes
        assert out.contains([0, 3, 5, 6])
        # [10,13] before [5,6]: no
        assert not out.contains([10, 13, 5, 6])

    def test_pairs_related_differential(self):
        a = relation(temporal=["as_", "ae"])
        a.add_tuple(["4n", "2 + 4n"], "as_ = ae - 2")
        b = relation(temporal=["bs", "be"])
        b.add_tuple(["3n", "1 + 3n"], "bs = be - 1")
        window = (-8, 8)
        a_pts = a.snapshot(*window)
        b_pts = b.snapshot(*window)
        for name in ALLEN_TEMPLATES:
            out = pairs_related(a, b, name, ("as_", "ae"), ("bs", "be"))
            expected = {
                (s1, e1, s2, e2)
                for (s1, e1) in a_pts
                for (s2, e2) in b_pts
                if holds(name, (s1, e1), (s2, e2))
            }
            assert out.snapshot(*window) == expected, name

    def test_proper_atoms(self):
        r = relation(temporal=["s", "e"])
        r.add_tuple(["n", "n"])
        out = algebra.select(r, proper(("s", "e")))
        assert out.contains([0, 1]) and not out.contains([1, 1])


class TestCalendar:
    def test_at_time(self):
        assert at_time(0, 0) == 0
        assert at_time(7, 2) == 422
        assert at_time(7, 2, day=1) == 422 + MINUTES_PER_DAY

    def test_at_time_validation(self):
        with pytest.raises(ValueError):
            at_time(24, 0)
        with pytest.raises(ValueError):
            at_time(0, 60)

    def test_fmt_time(self):
        assert fmt_time(at_time(7, 2)) == "07:02"
        assert fmt_time(at_time(23, 59, day=2)) == "d+2 23:59"
        assert fmt_time(at_time(1, 0, day=-1)) == "d-1 01:00"

    def test_hourly(self):
        lrp = hourly(2)
        assert lrp.contains(at_time(7, 2)) and lrp.contains(at_time(8, 2))
        assert not lrp.contains(at_time(7, 3))
        with pytest.raises(ValueError):
            hourly(60)

    def test_daily_weekly(self):
        assert daily(9, 30).contains(at_time(9, 30, day=5))
        assert not daily(9, 30).contains(at_time(9, 31))
        lrp = weekly(2, 9)
        assert lrp.contains(at_time(9, 0, day=2))
        assert lrp.contains(at_time(9, 0, day=9))
        assert not lrp.contains(at_time(9, 0, day=3))
        with pytest.raises(ValueError):
            weekly(7, 0)

    def test_every(self):
        lrp = every(15, first=5)
        assert lrp.contains(5) and lrp.contains(20) and not lrp.contains(21)
        with pytest.raises(ValueError):
            every(0)


class TestSchedules:
    def test_trip_validation(self):
        with pytest.raises(ValueError):
            RecurringTrip(hourly(0), 0, "bad")

    def test_example_2_4(self):
        """Example 2.4: the schedule denotes the paper's concrete trains
        and avoids the cross-pairing the point-based encoding allows."""
        trains = liege_brussels_schedule()
        # the 7:02 slow train arrives 8:20
        assert trains.contains(
            [at_time(7, 2), at_time(8, 20)], ["slow"]
        )
        # the 7:46 express arrives 8:50
        assert trains.contains(
            [at_time(7, 46), at_time(8, 50)], ["express"]
        )
        # the paper's spurious pairing — leaving 7:46, arriving 7:50 —
        # must NOT be in the relation (nor any cross pairing).
        assert not trains.contains(
            [at_time(7, 46), at_time(7, 50)], ["express"]
        )
        assert not trains.contains(
            [at_time(7, 2), at_time(8, 50)], ["slow"]
        )

    def test_schedule_relation_custom_attrs(self):
        rel = schedule_relation(
            [RecurringTrip(every(30), 10, "shuttle")],
            departure_attr="d",
            arrival_attr="a",
            label_attr="line",
        )
        assert rel.schema.names == ("d", "a", "line")
        assert rel.contains([30, 40], ["shuttle"])
        assert not rel.contains([30, 70], ["shuttle"])

    def test_infinite_horizon(self):
        trains = liege_brussels_schedule()
        year_away = at_time(7, 2, day=365)
        assert trains.contains([year_away, year_away + 78], ["slow"])
