"""Round-trip property tests: persist → reopen → window equality.

The durability contract is semantic, not structural: after commit and
recovery the reopened relations must denote exactly the same infinite
point sets as the in-memory originals.  Windows larger than the lcm of
the periods in play make the finite check exercise genuinely periodic
behaviour.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.query.database import Database
from repro.testing import generalized_relations, seeded_relation

WINDOW = (-40, 100)

persistable_relations = generalized_relations(
    temporal_arity=2,
    data_choices=((), ),
    max_tuples=3,
    max_period=6,
)

tagged_relations = generalized_relations(
    temporal_arity=1,
    data_choices=(("a",), ("b",), (None,)),
    max_tuples=3,
    max_period=5,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(relation=persistable_relations)
def test_persist_reopen_window_equality(tmp_path_factory, relation):
    path = str(tmp_path_factory.mktemp("prop") / "db")
    with Database.open(path) as db:
        db.register("R", relation)
        db.commit()
    with Database.open(path) as again:
        assert again.relation("R").snapshot(*WINDOW) == relation.snapshot(
            *WINDOW
        )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(relation=tagged_relations, compact=st.booleans())
def test_persist_with_data_and_compaction(
    tmp_path_factory, relation, compact
):
    path = str(tmp_path_factory.mktemp("prop") / "db")
    with Database.open(path) as db:
        db.register("Tagged", relation)
        db.commit()
        if compact:
            db.compact()
    with Database.open(path) as again:
        assert again.relation("Tagged").snapshot(
            *WINDOW
        ) == relation.snapshot(*WINDOW)


def test_seeded_catalogs_round_trip_through_every_path(tmp_path):
    """Deterministic sweep: commits, compaction, drops, reopen chains.

    Each seed drives a different catalog through the full lifecycle —
    commit, reopen, mutate, commit, compact, reopen — checking window
    equality after every recovery.
    """
    for seed in range(8):
        rng = random.Random(seed)
        path = str(tmp_path / f"db{seed}")
        db = Database.open(path)
        expected = {}
        for i in range(rng.randint(1, 4)):
            name = f"R{i}"
            relation = seeded_relation(
                rng,
                temporal_arity=rng.randint(1, 3),
                max_tuples=4,
                max_period=6,
            )
            db.register(name, relation)
            expected[name] = relation.snapshot(*WINDOW)
        db.commit()
        db.close()

        db = Database.open(path)
        assert {
            name: db.relation(name).snapshot(*WINDOW) for name in db.names
        } == expected

        # mutate: drop one (maybe), add one, commit, compact
        if expected and rng.random() < 0.5:
            victim = sorted(expected)[0]
            db.drop(victim)
            del expected[victim]
        extra = seeded_relation(rng, temporal_arity=2, max_tuples=3)
        db.register("Extra", extra)
        expected["Extra"] = extra.snapshot(*WINDOW)
        db.commit()
        db.compact()
        db.close()

        db = Database.open(path)
        assert {
            name: db.relation(name).snapshot(*WINDOW) for name in db.names
        } == expected
        db.close()


def test_enumerate_equality_is_exact_not_just_nonempty(tmp_path):
    """A regression guard: the window check compares full point sets."""
    path = str(tmp_path / "db")
    with Database.open(path) as db:
        db.create("P", temporal=["t"])
        db.relation("P").add_tuple(["1 + 4n"], "t >= -7")
        db.commit()
        original = sorted(db.relation("P").enumerate(-20, 20))
    with Database.open(path) as again:
        assert sorted(again.relation("P").enumerate(-20, 20)) == original
        assert original  # the window is genuinely populated
