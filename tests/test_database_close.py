"""Regression tests for use-after-close on ``Database``.

The bug: after ``close()`` a persistent database's methods either
raised ``AttributeError`` from the half-torn-down engine (``commit``,
``compact``) or silently operated on the stale in-memory catalog
(``query``, ``relation``, ``create``).  Every entry point must now
raise a clean ``StorageError``.
"""

import pytest

from repro.core.errors import StorageError
from repro.query.database import Database


@pytest.fixture
def closed_db(tmp_path):
    db = Database.open(str(tmp_path / "db"))
    db.create("Ev", temporal=["t"])
    db.relation("Ev").add_tuple(["5n"], "t >= 0", [])
    db.commit()
    db.close()
    return db


class TestUseAfterClose:
    @pytest.mark.parametrize(
        "call",
        [
            lambda db: db.commit(),
            lambda db: db.compact(),
            lambda db: db.query("EXISTS t. Ev(t)"),
            lambda db: db.ask("EXISTS t. Ev(t)"),
            lambda db: db.parse("EXISTS t. Ev(t)"),
            lambda db: db.relation("Ev"),
            lambda db: db.create("New", temporal=["t"]),
            lambda db: db.drop("Ev"),
            lambda db: db.register("X", None),
            lambda db: db.snapshot(),
        ],
        ids=[
            "commit",
            "compact",
            "query",
            "ask",
            "parse",
            "relation",
            "create",
            "drop",
            "register",
            "snapshot",
        ],
    )
    def test_closed_database_raises_storage_error(self, closed_db, call):
        with pytest.raises(StorageError, match="closed"):
            call(closed_db)

    def test_close_is_idempotent(self, closed_db):
        closed_db.close()
        closed_db.close()

    def test_context_manager_exit_closes(self, tmp_path):
        with Database.open(str(tmp_path / "db")) as db:
            db.create("Ev", temporal=["t"])
            db.commit()
        with pytest.raises(StorageError, match="closed"):
            db.query("EXISTS t. Ev(t)")

    def test_reopen_after_close_works(self, closed_db, tmp_path):
        with Database.open(str(tmp_path / "db"), create=False) as db:
            assert db.names == ("Ev",)
            assert db.ask("EXISTS t. Ev(t) & t >= 10")

    def test_in_memory_database_close_is_a_noop(self):
        db = Database()
        db.create("Ev", temporal=["t"])
        db.close()
        # still fully usable: close() only applies to persistent stores
        db.relation("Ev").add_tuple(["3n"], "t >= 0", [])
        assert db.ask("EXISTS t. Ev(t)")
        assert db.snapshot().names == ("Ev",)

    def test_error_message_says_how_to_recover(self, closed_db):
        with pytest.raises(StorageError, match="Database.open"):
            closed_db.commit()
