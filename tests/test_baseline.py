"""Tests for the finite-horizon baseline engine."""

import pytest

from repro.baseline import FiniteRelation
from repro.core.relations import GeneralizedRelation, Schema, relation
from repro.intervals import liege_brussels_schedule


def ticks() -> FiniteRelation:
    r = relation(temporal=["t"])
    r.add_tuple(["2n"])
    return FiniteRelation.materialize(r, 0, 10)


class TestMaterialize:
    def test_materializes_window(self):
        f = ticks()
        assert len(f) == 6
        assert f.contains((4,)) and not f.contains((3,))

    def test_storage_grows_with_horizon(self):
        """The paper's Section 1 point: finite storage is O(horizon)."""
        r = relation(temporal=["t"])
        r.add_tuple(["2n"])
        sizes = [
            FiniteRelation.materialize(r, 0, h).storage_cells()
            for h in (10, 100, 1000)
        ]
        assert sizes[1] > 5 * sizes[0] and sizes[2] > 5 * sizes[1]

    def test_mixed_schema(self):
        trains = liege_brussels_schedule()
        f = FiniteRelation.materialize(trains, 0, 200)
        assert f.contains((2, 80, "slow"))

    def test_arity_check(self):
        f = ticks()
        with pytest.raises(ValueError):
            f.add((1, 2))


class TestAlgebra:
    def test_set_ops(self):
        a = FiniteRelation(Schema.make(temporal=["t"]), [(0,), (2,), (4,)])
        b = FiniteRelation(Schema.make(temporal=["t"]), [(4,), (6,)])
        assert (4,) in a.union(b).rows and len(a.union(b)) == 4
        assert a.intersect(b).rows == {(4,)}
        assert a.subtract(b).rows == {(0,), (2,)}

    def test_schema_mismatch(self):
        a = FiniteRelation(Schema.make(temporal=["t"]))
        b = FiniteRelation(Schema.make(temporal=["u"]))
        with pytest.raises(ValueError):
            a.union(b)

    def test_select_project(self):
        a = FiniteRelation(
            Schema.make(temporal=["t", "u"]), [(1, 2), (3, 1)]
        )
        assert a.select(lambda row: row[0] < row[1]).rows == {(1, 2)}
        assert a.project(["u"]).rows == {(2,), (1,)}
        assert a.project(["u", "t"]).rows == {(2, 1), (1, 3)}

    def test_product_and_join(self):
        a = FiniteRelation(Schema.make(temporal=["t"]), [(1,), (2,)])
        b = FiniteRelation(Schema.make(temporal=["u"]), [(9,)])
        assert a.product(b).rows == {(1, 9), (2, 9)}
        with pytest.raises(ValueError):
            a.product(a)
        c = FiniteRelation(
            Schema.make(temporal=["t", "v"]), [(1, 7), (5, 8)]
        )
        assert a.join(c).rows == {(1, 7)}

    def test_complement_needs_domains(self):
        a = FiniteRelation(Schema.make(temporal=["t"]), [(1,)])
        comp = a.complement({"t": [0, 1, 2]})
        assert comp.rows == {(0,), (2,)}
        with pytest.raises(ValueError):
            a.complement({})


class TestAgreementWithGeneralized:
    def test_join_matches_generalized(self):
        r1 = relation(temporal=["a", "b"])
        r1.add_tuple(["2n", "2n"], "a = b - 2")
        r2 = relation(temporal=["b", "c"])
        r2.add_tuple(["4n", "4n"], "b = c - 4")
        window = (-8, 8)
        finite = FiniteRelation.materialize(r1, *window).join(
            FiniteRelation.materialize(r2, *window)
        )
        symbolic = r1.join(r2)
        assert finite.rows == symbolic.snapshot(*window)
