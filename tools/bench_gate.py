#!/usr/bin/env python3
"""Gate a ``BENCH_perf.json`` report on speedups and output parity.

Usage::

    python tools/bench_gate.py [BENCH_perf.json] [--opt BENCH_opt.json]

Fails (exit 1) when any workload reports ``speedup < 1.0`` or
``parallel_speedup < 1.0`` — the optimization layer must never be slower
than the naive path it replaces — or when any variant's output diverged
from the naive reference (``all_outputs_match`` false).  The
``fig2_projection`` workload additionally carries the batched-kernel
target of ``>= 2.0x`` recorded in the report's ``required_speedup``.

The gate also runs a live **planner smoke check** (``--no-smoke`` to
skip): the logical rewrite passes (``docs/planner.md``) must produce a
visibly smaller plan on the pushdown fixture *and* the same result as
the naive pipeline.  Selection/projection pushdown touches the same
projection-heavy shape ``fig2_projection`` measures, so the smoke check
plus that workload's floor guard the planner against perf regressions.
"""

from __future__ import annotations

import json
import pathlib
import sys

#: Per-workload floors beyond the global >= 1.0 requirement.
TARGETS = {"fig2_projection": 2.0}


def gate(report: dict) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    workloads = report.get("workloads", {})
    if not workloads:
        return ["report has no workloads"]
    for name, entry in sorted(workloads.items()):
        for field in ("speedup", "parallel_speedup"):
            value = entry.get(field)
            if value is None:
                failures.append(f"{name}: {field} missing")
            elif value < 1.0:
                failures.append(
                    f"{name}: {field} {value} regressed below 1.0x"
                )
        target = TARGETS.get(name)
        speedup = entry.get("speedup")
        if target is not None and speedup is not None and speedup < target:
            failures.append(
                f"{name}: speedup {speedup} below the {target}x target"
            )
        for field in ("optimized_matches_naive", "parallel_matches_naive"):
            if not entry.get(field):
                failures.append(f"{name}: {field} is false")
    summary = report.get("summary", {})
    if not summary.get("all_outputs_match"):
        failures.append("summary: all_outputs_match is false")
    return failures


def planner_smoke() -> list[str]:
    """Run the logical planner on the pushdown fixture and check it.

    Three assertions: the rewrite passes fired, the optimized plan is
    strictly smaller than the naive lowering (the pushdown actually
    happened), and the optimized result equals the naive one on a
    comparison window.  Returns failure messages (empty = ok).
    """
    try:
        from repro.query import Database
    except ImportError:  # running from a checkout without install
        sys.path.insert(
            0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
        )
        from repro.query import Database

    fixture = "Even(t) & t >= 0"
    failures: list[str] = []
    db = Database()
    db.create("Even", temporal=["t"])
    db.relation("Even").add_tuple(["2n"])
    report = db.plan(fixture, optimize=True)
    if sum(p.rewrites for p in report.passes) < 3:
        failures.append(
            f"planner: fewer than 3 rewrites on {fixture!r} "
            f"({[f'{p.name}:{p.rewrites}' for p in report.passes]})"
        )
    if report.plan.size() >= report.naive.size():
        failures.append(
            f"planner: no plan shrink on {fixture!r} "
            f"({report.naive.size()} -> {report.plan.size()} nodes)"
        )
    naive = db.query(fixture, optimize=False)
    optimized = db.query(fixture, optimize=True)
    if optimized.snapshot(-64, 64) != naive.snapshot(-64, 64):
        failures.append(f"planner: optimized != naive on {fixture!r}")
    return failures


def gate_opt(report: dict) -> list[str]:
    """Gate a ``BENCH_opt.json`` optimizer report (``--opt PATH``).

    The optimizer makes exactness claims, so the gate is strict: every
    scheduling scenario must agree with its oracle, the random-corpus
    parity sweep must have zero failures, and ``summary.ok`` must hold.
    """
    failures: list[str] = []
    scenarios = report.get("scenarios", [])
    if not scenarios:
        failures.append("opt: report has no scenarios")
    for row in scenarios:
        if not row.get("ok"):
            failures.append(
                f"opt scenario {row.get('name')}: {row.get('status')} "
                f"{row.get('value')} disagreed with oracle "
                f"{row.get('oracle')} / expected {row.get('expected')}"
            )
    corpus = report.get("corpus", {})
    parity_failures = corpus.get("parity_failures")
    if parity_failures != 0:
        failures.append(
            f"opt corpus: {parity_failures} parity failures in "
            f"{corpus.get('parity_checks')} checks"
        )
    if not report.get("summary", {}).get("ok"):
        failures.append("opt summary: ok is false")
    return failures


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    smoke = "--no-smoke" not in args
    args = [a for a in args if a != "--no-smoke"]
    opt_path = None
    if "--opt" in args:
        index = args.index("--opt")
        try:
            opt_path = args[index + 1]
        except IndexError:
            print("FAIL: --opt needs a BENCH_opt.json path")
            return 1
        del args[index : index + 2]
    path = args[0] if args else "BENCH_perf.json"
    with open(path) as handle:
        report = json.load(handle)
    failures = gate(report)
    if smoke:
        failures += planner_smoke()
    if opt_path is not None:
        with open(opt_path) as handle:
            failures += gate_opt(json.load(handle))
    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        return 1
    names = ", ".join(sorted(report["workloads"]))
    suffix = ", planner smoke ok" if smoke else ""
    if opt_path is not None:
        suffix += ", opt gate ok"
    print(f"bench gate ok ({names}{suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
