#!/usr/bin/env python3
"""Gate a ``BENCH_perf.json`` report on speedups and output parity.

Usage::

    python tools/bench_gate.py [BENCH_perf.json]

Fails (exit 1) when any workload reports ``speedup < 1.0`` or
``parallel_speedup < 1.0`` — the optimization layer must never be slower
than the naive path it replaces — or when any variant's output diverged
from the naive reference (``all_outputs_match`` false).  The
``fig2_projection`` workload additionally carries the batched-kernel
target of ``>= 2.0x`` recorded in the report's ``required_speedup``.
"""

from __future__ import annotations

import json
import sys

#: Per-workload floors beyond the global >= 1.0 requirement.
TARGETS = {"fig2_projection": 2.0}


def gate(report: dict) -> list[str]:
    """Return a list of failure messages (empty = gate passes)."""
    failures: list[str] = []
    workloads = report.get("workloads", {})
    if not workloads:
        return ["report has no workloads"]
    for name, entry in sorted(workloads.items()):
        for field in ("speedup", "parallel_speedup"):
            value = entry.get(field)
            if value is None:
                failures.append(f"{name}: {field} missing")
            elif value < 1.0:
                failures.append(
                    f"{name}: {field} {value} regressed below 1.0x"
                )
        target = TARGETS.get(name)
        speedup = entry.get("speedup")
        if target is not None and speedup is not None and speedup < target:
            failures.append(
                f"{name}: speedup {speedup} below the {target}x target"
            )
        for field in ("optimized_matches_naive", "parallel_matches_naive"):
            if not entry.get(field):
                failures.append(f"{name}: {field} is false")
    summary = report.get("summary", {})
    if not summary.get("all_outputs_match"):
        failures.append("summary: all_outputs_match is false")
    return failures


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    path = args[0] if args else "BENCH_perf.json"
    with open(path) as handle:
        report = json.load(handle)
    failures = gate(report)
    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        return 1
    names = ", ".join(sorted(report["workloads"]))
    print(f"bench gate ok ({names})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
