#!/usr/bin/env python
"""Documentation gates: link integrity, docstrings, runnable examples.

Run as ``make docs-check`` (CI runs it in the test job).  Two checks:

1. **Link check** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file that exists in the repository
   (external ``http(s)``/``mailto`` targets and pure ``#anchors`` are
   skipped; a ``file.md#anchor`` link is checked for the file part).
2. **Docstring coverage** — every name exported by the stable
   :mod:`repro.api` facade must carry a docstring, and so must every
   public method of every exported class: the public surface has to be
   self-describing.

With ``--examples`` (run as ``make docs-examples``; CI's
``docs-examples`` job) the script instead executes the documentation:

3. **Executable examples** — every fenced ``python`` block runs in a
   per-file cumulative namespace (so a page can build on its earlier
   snippets) inside a scratch working directory, and every fenced
   ``repro-shell`` block is replayed through the CLI
   :class:`~repro.cli.Session`: lines starting with ``itql> `` are
   commands, the lines after each command are the expected output
   (compared verbatim; a line of ``...`` matches any remaining output
   of that command).  Any exception, assertion failure, or output
   drift fails the gate.  A ``<!-- docs-check: skip -->`` comment
   before a fence marks the next block as non-runnable (pseudocode,
   shell transcripts of long benchmarks, and so on).

Exit status 0 when the selected gates pass; 1 with a per-violation
report otherwise.
"""

from __future__ import annotations

import contextlib
import inspect
import io
import os
import pathlib
import re
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for this repo's plain markdown
#: (no reference-style links, no angle-bracket targets).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[pathlib.Path]:
    """The markdown set the link gate covers."""
    return [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))


def _display(path: pathlib.Path) -> str:
    """Repo-relative where possible, absolute otherwise."""
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def check_links() -> list[str]:
    """Every relative link target must exist.  Returns violations."""
    errors = []
    for path in iter_doc_files():
        text = path.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{_display(path)}: broken link -> {target}")
    return errors


def _missing_doc(obj) -> bool:
    doc = inspect.getdoc(obj)
    return not (doc and doc.strip())


def check_docstrings() -> list[str]:
    """Every ``repro.api`` export (and its public methods) has a doc."""
    sys.path.insert(0, str(ROOT / "src"))
    try:
        import repro.api as api
    finally:
        sys.path.pop(0)
    errors = []
    if _missing_doc(api):
        errors.append("repro.api: module docstring missing")
    for name in api.__all__:
        obj = getattr(api, name, None)
        if obj is None:
            errors.append(f"repro.api.{name}: exported but not defined")
            continue
        if _missing_doc(obj):
            errors.append(f"repro.api.{name}: docstring missing")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                member = getattr(obj, attr_name)
                if not callable(member) and not isinstance(
                    attr, (property, classmethod, staticmethod)
                ):
                    continue
                if _missing_doc(member):
                    errors.append(
                        f"repro.api.{name}.{attr_name}: docstring missing"
                    )
    return errors


# ----------------------------------------------------------------------
# executable examples (--examples)
# ----------------------------------------------------------------------

#: Marks the next fenced block in the file as non-runnable.
SKIP_MARKER = "<!-- docs-check: skip -->"

#: Fence languages the example gate executes.
RUNNABLE_LANGS = ("python", "repro-shell")

#: The CLI prompt that introduces a command in a ``repro-shell`` block.
PROMPT = "itql> "


class Block:
    """One fenced code block: language, dedented code, source line."""

    __slots__ = ("lang", "code", "line", "skipped")

    def __init__(self, lang: str, code: str, line: int, skipped: bool):
        self.lang = lang
        self.code = code
        self.line = line
        self.skipped = skipped


def extract_blocks(text: str) -> list[Block]:
    """Parse fenced code blocks (with skip markers) out of markdown.

    Fences may be indented (inside lists); the indent is stripped from
    the code.  A :data:`SKIP_MARKER` comment anywhere before a fence
    marks that next fence as skipped.
    """
    blocks: list[Block] = []
    skip_next = False
    in_fence = False
    lang = ""
    indent = 0
    start = 0
    code_lines: list[str] = []
    for number, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not in_fence:
            if stripped == SKIP_MARKER:
                skip_next = True
            elif stripped.startswith("```") and stripped != "```":
                in_fence = True
                lang = stripped[3:].strip()
                indent = len(line) - len(line.lstrip())
                start = number
                code_lines = []
            elif stripped == "```":
                # A language-less opening fence: treat as non-runnable.
                in_fence = True
                lang = ""
                indent = len(line) - len(line.lstrip())
                start = number
                code_lines = []
        elif stripped == "```":
            in_fence = False
            blocks.append(
                Block(lang, "\n".join(code_lines), start, skip_next)
            )
            skip_next = False
        else:
            code_lines.append(
                line[indent:] if line[:indent].isspace() or not line[:indent]
                else line
            )
    return blocks


def _run_python_block(
    path: pathlib.Path, block: Block, namespace: dict
) -> list[str]:
    """Execute one ``python`` block in the page's shared namespace."""
    try:
        code = compile(
            block.code, f"{_display(path)}:{block.line}", "exec"
        )
        with contextlib.redirect_stdout(io.StringIO()):
            exec(code, namespace)  # noqa: S102 — the docs are ours
    except Exception as exc:  # noqa: BLE001 — report, don't crash
        return [
            f"{_display(path)}:{block.line}: python example failed: "
            f"{type(exc).__name__}: {exc}"
        ]
    return []


def _shell_steps(block: Block) -> list[tuple[str, list[str]]]:
    """Split a ``repro-shell`` block into (command, expected lines)."""
    steps: list[tuple[str, list[str]]] = []
    for line in block.code.splitlines():
        if line.startswith(PROMPT):
            steps.append((line[len(PROMPT):].strip(), []))
        elif steps and line.strip():
            steps[-1][1].append(line.rstrip())
    return steps


def _output_matches(expected: list[str], actual: list[str]) -> bool:
    """Compare expected transcript lines; ``...`` matches any tail."""
    for position, want in enumerate(expected):
        if want.strip() == "...":
            return True
        if position >= len(actual) or actual[position].rstrip() != want:
            return False
    return len(actual) == len(expected)


def _run_shell_block(
    path: pathlib.Path, block: Block, session
) -> list[str]:
    """Replay one ``repro-shell`` block through a CLI session."""
    errors = []
    for command, expected in _shell_steps(block):
        response = session.execute(command)
        actual = [
            line.rstrip() for line in response.splitlines() if line.strip()
        ]
        if expected and not _output_matches(expected, actual):
            want = "\n      ".join(expected)
            got = "\n      ".join(actual) or "(no output)"
            errors.append(
                f"{_display(path)}:{block.line}: shell example drifted "
                f"on {command!r}:\n    expected:\n      {want}\n"
                f"    got:\n      {got}"
            )
    return errors


def check_examples() -> tuple[list[str], int, int]:
    """Run every fenced example; returns (errors, ran, skipped)."""
    sys.path.insert(0, str(ROOT / "src"))
    try:
        from repro.cli import Session
    finally:
        sys.path.pop(0)
    errors: list[str] = []
    ran = skipped = 0
    original_cwd = os.getcwd()
    for path in iter_doc_files():
        blocks = [
            b for b in extract_blocks(path.read_text())
            if b.lang in RUNNABLE_LANGS
        ]
        if not blocks:
            continue
        namespace: dict = {"__name__": "__docs__"}
        session = Session()
        with tempfile.TemporaryDirectory(prefix="docs-check-") as scratch:
            os.chdir(scratch)
            try:
                for block in blocks:
                    if block.skipped:
                        skipped += 1
                        continue
                    ran += 1
                    if block.lang == "python":
                        errors += _run_python_block(path, block, namespace)
                    else:
                        errors += _run_shell_block(path, block, session)
            finally:
                os.chdir(original_cwd)
    return errors, ran, skipped


def main(argv: list[str] | None = None) -> int:
    """Run the selected gates; print violations; exit nonzero on any."""
    args = sys.argv[1:] if argv is None else argv
    if "--examples" in args:
        errors, ran, skipped = check_examples()
        for error in errors:
            print(f"docs-check: {error}")
        if errors:
            print(
                f"docs-check: FAILED ({len(errors)} broken example(s) "
                f"out of {ran} run)"
            )
            return 1
        print(
            f"docs-check: OK — {ran} fenced example(s) executed "
            f"({skipped} marked skip)"
        )
        return 0
    link_errors = check_links()
    doc_errors = check_docstrings()
    for error in link_errors + doc_errors:
        print(f"docs-check: {error}")
    checked = len(iter_doc_files())
    if link_errors or doc_errors:
        print(
            f"docs-check: FAILED ({len(link_errors)} broken link(s), "
            f"{len(doc_errors)} docstring gap(s))"
        )
        return 1
    print(
        f"docs-check: OK — {checked} markdown file(s) link-clean, "
        "public API fully documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
