#!/usr/bin/env python
"""Documentation gates: markdown link integrity + API docstring coverage.

Run as ``make docs-check`` (CI runs it in the test job).  Two checks:

1. **Link check** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file that exists in the repository
   (external ``http(s)``/``mailto`` targets and pure ``#anchors`` are
   skipped; a ``file.md#anchor`` link is checked for the file part).
2. **Docstring coverage** — every name exported by the stable
   :mod:`repro.api` facade must carry a docstring, and so must every
   public method of every exported class: the public surface has to be
   self-describing.

Exit status 0 when both gates pass; 1 with a per-violation report
otherwise.
"""

from __future__ import annotations

import inspect
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for this repo's plain markdown
#: (no reference-style links, no angle-bracket targets).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def iter_doc_files() -> list[pathlib.Path]:
    """The markdown set the link gate covers."""
    return [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))


def _display(path: pathlib.Path) -> str:
    """Repo-relative where possible, absolute otherwise."""
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def check_links() -> list[str]:
    """Every relative link target must exist.  Returns violations."""
    errors = []
    for path in iter_doc_files():
        text = path.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{_display(path)}: broken link -> {target}")
    return errors


def _missing_doc(obj) -> bool:
    doc = inspect.getdoc(obj)
    return not (doc and doc.strip())


def check_docstrings() -> list[str]:
    """Every ``repro.api`` export (and its public methods) has a doc."""
    sys.path.insert(0, str(ROOT / "src"))
    try:
        import repro.api as api
    finally:
        sys.path.pop(0)
    errors = []
    if _missing_doc(api):
        errors.append("repro.api: module docstring missing")
    for name in api.__all__:
        obj = getattr(api, name, None)
        if obj is None:
            errors.append(f"repro.api.{name}: exported but not defined")
            continue
        if _missing_doc(obj):
            errors.append(f"repro.api.{name}: docstring missing")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                member = getattr(obj, attr_name)
                if not callable(member) and not isinstance(
                    attr, (property, classmethod, staticmethod)
                ):
                    continue
                if _missing_doc(member):
                    errors.append(
                        f"repro.api.{name}.{attr_name}: docstring missing"
                    )
    return errors


def main() -> int:
    """Run both gates; print violations; exit nonzero on any."""
    link_errors = check_links()
    doc_errors = check_docstrings()
    for error in link_errors + doc_errors:
        print(f"docs-check: {error}")
    checked = len(iter_doc_files())
    if link_errors or doc_errors:
        print(
            f"docs-check: FAILED ({len(link_errors)} broken link(s), "
            f"{len(doc_errors)} docstring gap(s))"
        )
        return 1
    print(
        f"docs-check: OK — {checked} markdown file(s) link-clean, "
        "public API fully documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
