PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint bench bench-smoke reports clean

test:
	$(PYTHON) -m pytest -x -q

# Static checks; skips gracefully where ruff is not installed (the
# library itself has no dependencies).  CI always runs it.
lint:
	@$(PYTHON) -m ruff --version >/dev/null 2>&1 \
		&& $(PYTHON) -m ruff check src tests benchmarks \
		|| echo "ruff not installed; skipping lint (CI runs it)"

# Full-size before/after benchmark of the optimization layer; writes
# BENCH_perf.json (see docs/performance.md for the format).
bench:
	$(PYTHON) -m repro.perf.bench

# Small sizes for CI smoke runs.
bench-smoke:
	$(PYTHON) -m repro.perf.bench --smoke

# Regenerate every paper artifact report (tables, figures, theorems).
reports:
	$(PYTHON) benchmarks/run_all_reports.py REPORTS.md

clean:
	rm -rf .pytest_cache .benchmarks
	find . -type d -name __pycache__ -prune -exec rm -rf {} \;
