PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-optimized lint docs-check docs-examples bench bench-smoke serve-bench serve-bench-smoke stream-bench stream-bench-smoke opt-bench opt-bench-smoke fuzz reports clean

test:
	$(PYTHON) -m pytest -x -q

# The optimizer-on leg: the whole suite with the logical planner's
# rewrite passes enabled (see docs/planner.md).  CI runs it as its own
# job; any divergence from the naive pipeline is a planner bug.
test-optimized:
	REPRO_OPTIMIZE=1 $(PYTHON) -m pytest -x -q

# Static checks; skips gracefully where ruff is not installed (the
# library itself has no dependencies).  CI always runs it.
lint:
	@$(PYTHON) -m ruff --version >/dev/null 2>&1 \
		&& $(PYTHON) -m ruff check src tests benchmarks \
		|| echo "ruff not installed; skipping lint (CI runs it)"

# Documentation gates: markdown links must resolve and every repro.api
# export (and its public methods) must carry a docstring.
docs-check:
	$(PYTHON) tools/docs_check.py

# Executable documentation: extract every fenced python/repro-shell
# block from docs/*.md and README.md and run it against a scratch
# database; drift between docs and code fails the build.
docs-examples:
	$(PYTHON) tools/docs_check.py --examples

# Full-size before/after benchmark of the optimization layer; writes
# BENCH_perf.json (see docs/performance.md for the format).
bench:
	$(PYTHON) -m repro.perf.bench

# Small sizes for CI smoke runs.
bench-smoke:
	$(PYTHON) -m repro.perf.bench --smoke

# Serving-layer load generator: sequential vs group commits/s, served
# query latency, the readers-never-block check and the single-writer
# lock check; writes BENCH_serve.json (see docs/serving.md).
serve-bench:
	$(PYTHON) -m repro.serve.bench

serve-bench-smoke:
	$(PYTHON) -m repro.serve.bench --smoke

# Streaming-ingest benchmark: tuples/s through the append path and
# incremental view refresh vs full recomputation (gated at >= 2x);
# writes BENCH_stream.json (see docs/deductive.md).
stream-bench:
	$(PYTHON) -m repro.deductive.bench

stream-bench-smoke:
	$(PYTHON) -m repro.deductive.bench --smoke

# Optimizer benchmark: MINIMIZE/MAXIMIZE exactness on the scheduling
# scenario pack + random-corpus oracle parity and tuples/s; writes
# BENCH_opt.json (see docs/optimization.md).
opt-bench:
	$(PYTHON) -m repro.optimize.bench

opt-bench-smoke:
	$(PYTHON) -m repro.optimize.bench --smoke

# Differential fuzzing against the finite-window oracle; shrunk repros
# of any failure land in fuzz-failures/ (see docs/fuzzing.md).
FUZZ_SEED ?= 0
FUZZ_BUDGET ?= 500
fuzz:
	$(PYTHON) -m repro.cli fuzz --seed $(FUZZ_SEED) --budget $(FUZZ_BUDGET)

# Regenerate every paper artifact report (tables, figures, theorems).
reports:
	$(PYTHON) benchmarks/run_all_reports.py REPORTS.md

clean:
	rm -rf .pytest_cache .benchmarks
	find . -type d -name __pycache__ -prune -exec rm -rf {} \;
