"""Empirical complexity analysis: power-law fits for the benchmarks.

Tables 2 and 3 of the paper state asymptotic bounds; the benchmark
harness validates their *shape* by timing each operation over a sweep of
input sizes and fitting a power law ``t = a * n^b`` by least squares on
the log-log points.  The fitted exponent ``b`` is then compared with the
paper's stated degree.
"""

from __future__ import annotations

import math
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from repro.core.errors import ReproValueError


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y = a * x^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def __str__(self) -> str:
        return (
            f"~ n^{self.exponent:.2f} "
            f"(R² = {self.r_squared:.3f})"
        )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = log a + b log x``.

    Zero or negative measurements are clamped to a tiny epsilon so that
    fast, timer-resolution-limited runs do not break the fit.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ReproValueError("need at least two (x, y) points")
    eps = 1e-9
    lx = [math.log(max(x, eps)) for x in xs]
    ly = [math.log(max(y, eps)) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    if sxx == 0:
        raise ReproValueError("x values must not all be equal")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(lx, ly)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(
        exponent=slope,
        coefficient=math.exp(intercept),
        r_squared=r_squared,
    )


def time_callable(
    fn: Callable[[], object], repeat: int = 3, number: int = 1
) -> float:
    """Best-of-``repeat`` wall time of calling ``fn`` ``number`` times."""
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = (time.perf_counter() - start) / number
        best = min(best, elapsed)
    return best


def sweep(
    sizes: Sequence[int],
    make_input: Callable[[int], object],
    operation: Callable[[object], object],
    repeat: int = 3,
) -> list[tuple[int, float]]:
    """Time ``operation`` over inputs built per size; returns (size, seconds)."""
    out: list[tuple[int, float]] = []
    for size in sizes:
        prepared = make_input(size)
        out.append(
            (size, time_callable(lambda: operation(prepared), repeat=repeat))
        )
    return out


def format_complexity_row(
    name: str,
    claimed: str,
    fit: PowerLawFit,
    verdict: str | None = None,
) -> str:
    """One aligned row of a Tables 2/3-style report."""
    verdict = verdict if verdict is not None else ""
    return f"{name:<24} {claimed:<16} measured {fit!s:<28} {verdict}"
