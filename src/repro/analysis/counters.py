"""Operation counters: machine-independent cost accounting.

Wall-clock timings are noisy; the benchmarks corroborate them with
simple structural counts — how many tuples an operation produced, how
many pairwise tuple combinations it examined — which track the paper's
complexity parameters (N tuples, m columns) directly.

All counters are re-homed in the unified
:class:`repro.obs.metrics.MetricsRegistry` — :func:`metrics_registry`
/ :func:`metrics_snapshot` below are the one accounting API shared by
benchmarks, the CLI and tests.  The narrower helpers
(:func:`perf_counters` / :func:`reset_perf_counters` /
:func:`perf_cache_stats`) remain as focused views of the optimization
layer's hit/miss/skip instrumentation (closure cache, incremental
closures, prefilter rejections, parallel fan-outs).  Note that
counters bumped inside worker processes stay in those processes; with
``workers > 1`` the perf counters describe only the serial fraction.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.relations import GeneralizedRelation


def metrics_registry():
    """The process-global :class:`repro.obs.metrics.MetricsRegistry`."""
    from repro.obs.metrics import get_registry

    return get_registry()


def metrics_snapshot() -> dict[str, dict]:
    """One snapshot of *everything* the engine counts.

    Counters (operation + optimization-layer counts), gauges (cache
    populations), histograms (span wall times from trace runs) — the
    union of every accounting source, keyed by metric name.
    """
    return metrics_registry().snapshot()


def perf_counters() -> dict[str, int]:
    """A snapshot of the optimization layer's hit/miss/skip counters."""
    from repro.perf.config import counters_snapshot

    return counters_snapshot()


def reset_perf_counters() -> None:
    """Zero the optimization layer's counters."""
    from repro.perf.config import reset_counters

    reset_counters()


def perf_cache_stats() -> dict[str, dict[str, int]]:
    """Statistics of the interning caches that currently exist."""
    from repro.perf.cache import cache_stats

    return cache_stats()


@dataclass
class CostReport:
    """Structural cost of one algebra computation."""

    input_tuples: int
    output_tuples: int
    schema_width: int
    counters: Counter = field(default_factory=Counter)

    def __str__(self) -> str:
        extra = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        base = (
            f"in={self.input_tuples} out={self.output_tuples} "
            f"m={self.schema_width}"
        )
        return f"{base} {extra}" if extra else base


def measure_binary(
    operation,
    r1: GeneralizedRelation,
    r2: GeneralizedRelation,
) -> tuple[GeneralizedRelation, CostReport]:
    """Run a binary algebra operation and report structural cost."""
    result = operation(r1, r2)
    report = CostReport(
        input_tuples=len(r1) + len(r2),
        output_tuples=len(result),
        schema_width=len(result.schema),
        counters=Counter(pairs_examined=len(r1) * len(r2)),
    )
    return result, report


def measure_unary(
    operation,
    relation: GeneralizedRelation,
) -> tuple[GeneralizedRelation, CostReport]:
    """Run a unary algebra operation and report structural cost."""
    result = operation(relation)
    report = CostReport(
        input_tuples=len(relation),
        output_tuples=len(result),
        schema_width=len(result.schema),
    )
    return result, report


class TallyCounter:
    """A tiny named-counter registry for ad-hoc instrumentation."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named counter."""
        self.counts[name] += amount

    def reset(self) -> None:
        """Zero all counters."""
        self.counts.clear()

    @contextmanager
    def counting(self, name: str):
        """Context manager: bump ``name`` once on exit."""
        try:
            yield self
        finally:
            self.bump(name)

    def __getitem__(self, name: str) -> int:
        return self.counts[name]

    def __str__(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
