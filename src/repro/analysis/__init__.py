"""Empirical complexity analysis helpers for the benchmark harness."""

from repro.analysis.complexity import (
    PowerLawFit,
    fit_power_law,
    format_complexity_row,
    sweep,
    time_callable,
)
from repro.analysis.counters import CostReport, TallyCounter, measure_binary, measure_unary

__all__ = [
    "CostReport",
    "PowerLawFit",
    "TallyCounter",
    "fit_power_law",
    "format_complexity_row",
    "measure_binary",
    "measure_unary",
    "sweep",
    "time_callable",
]
