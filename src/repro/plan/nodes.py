"""The relation-expression IR: immutable plan nodes over the algebra.

A plan is a tree of frozen dataclasses — one leaf kind per way a
relation can enter a query (a stored relation, a constant relation, the
active data domain) and one operation node per generalized-algebra
operator (select, project, join, union, intersect, subtract,
complement, product, rename, shift).  The planner
(:mod:`repro.query.planner`) builds plans from the query AST, the
rewrite passes (:mod:`repro.plan.rewrite`) transform them, and an
engine (:mod:`repro.plan.engine`) executes them.

Design invariants:

* **Immutability** — nodes are frozen and hashable; rewrites build new
  trees and never mutate, so plans can be shared, interned and cached.
* **Schema inference** — ``node.schema`` is computed (and cached)
  structurally, mirroring :mod:`repro.core.algebra`'s schema rules
  exactly; the planner and the rewrite passes never need to execute
  anything to know a subtree's schema.
* **Provenance labels** — ``node.labels`` carries the ``query.*``
  span names of the calculus nodes a plan node implements, so an
  engine can reproduce the evaluator's legacy trace shape and EXPLAIN
  ANALYZE can attribute runtime counters back to query syntax.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field, fields, replace
from functools import cached_property
from typing import Any, ClassVar

from repro.core.constraints import parse_atoms
from repro.core.errors import SchemaError
from repro.core.relations import GeneralizedRelation, Schema

#: ``(operator, detail)`` provenance pairs; outermost first.
Labels = tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class PlanNode:
    """Base class for relation-expression plan nodes.

    Every node is a frozen dataclass: structural equality and hashing
    come from the fields, ``schema`` is inferred (and cached) from the
    children, and ``labels`` records which query-AST nodes this plan
    node implements (empty for nodes introduced by lowering or by a
    rewrite pass).
    """

    #: Operator name, e.g. ``"join"``; set per subclass.
    op: ClassVar[str] = "?"

    labels: Labels = field(default=(), kw_only=True)

    # -- structure -----------------------------------------------------

    @property
    def children(self) -> tuple[PlanNode, ...]:
        """Child plan nodes, left to right."""
        return tuple(
            getattr(self, f.name)
            for f in fields(self)
            if f.metadata.get("child")
        )

    def replace_children(self, children: tuple[PlanNode, ...]) -> PlanNode:
        """Rebuild this node with replacement children (same arity)."""
        names = [f.name for f in fields(self) if f.metadata.get("child")]
        if len(names) != len(children):
            raise SchemaError(
                f"{type(self).__name__} takes {len(names)} children, "
                f"got {len(children)}"
            )
        return replace(self, **dict(zip(names, children)))

    def walk(self) -> Iterator[PlanNode]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def size(self) -> int:
        """Total node count of the subtree."""
        return sum(1 for _ in self.walk())

    # -- provenance labels ---------------------------------------------

    def with_labels(self, labels: Labels) -> PlanNode:
        """This node with ``labels`` replacing the current labels."""
        if labels == self.labels:
            return self
        return replace(self, labels=labels)

    def add_label(self, operator: str, detail: str = "") -> PlanNode:
        """Prepend one provenance label (it becomes the outermost span)."""
        return self.with_labels(((operator, detail),) + self.labels)

    # -- schema inference ----------------------------------------------

    @cached_property
    def schema(self) -> Schema:
        """The result schema, inferred structurally (cached)."""
        return self._infer_schema()

    def _infer_schema(self) -> Schema:
        raise NotImplementedError  # pragma: no cover - abstract

    # -- identity ------------------------------------------------------

    def key(self) -> tuple:
        """Structural identity ignoring labels (for interning/CSE).

        Two nodes with the same key compute the same relation; their
        provenance labels may differ.
        """
        parts: list[Any] = [self.op]
        for f in fields(self):
            if f.name == "labels" or not f.compare:
                continue
            value = getattr(self, f.name)
            if f.metadata.get("child"):
                parts.append(value.key())
            else:
                parts.append(value)
        return tuple(parts)

    # -- rendering -----------------------------------------------------

    def detail(self) -> str:
        """One-line parameter text for rendering (may be empty)."""
        return ""

    def describe(self) -> str:
        """``op[detail]`` — one node as text."""
        detail = self.detail()
        return f"{self.op}[{detail}]" if detail else self.op

    def render(self, indent: int = 0) -> list[str]:
        """The subtree as indented text lines."""
        pad = "  " * indent
        origin = ""
        if self.labels:
            origin = "  ← " + ", ".join(
                op if not detail else f"{op}: {detail}"
                for op, detail in self.labels
            )
        lines = [f"{pad}{self.describe()}  :: {self.schema}{origin}"]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready structural dump of the subtree."""
        out: dict[str, Any] = {"op": self.op}
        detail = self.detail()
        if detail:
            out["detail"] = detail
        out["schema"] = str(self.schema)
        if self.labels:
            out["labels"] = [list(pair) for pair in self.labels]
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __str__(self) -> str:
        return "\n".join(self.render())


def _child(**extra) -> Any:
    """A dataclass field marking a child plan node."""
    return field(metadata={"child": True}, **extra)


# ----------------------------------------------------------------------
# leaves
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scan(PlanNode):
    """A stored relation, looked up by name at execution time."""

    op: ClassVar[str] = "scan"

    name: str
    scan_schema: Schema

    def _infer_schema(self) -> Schema:
        return self.scan_schema

    def detail(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(PlanNode):
    """A constant relation, materialized at plan time.

    ``token`` is the value's structural identity (the relation itself
    is excluded from equality/hashing): ``("truth", bool)`` for the
    0-ary truth values, ``("universe", names...)`` / ``("empty",
    names...)`` for per-variable universes and contradictions, and
    ``("singleton", name, value)`` for one-value data relations.
    """

    op: ClassVar[str] = "literal"

    token: tuple[Hashable, ...]
    relation: GeneralizedRelation = field(compare=False, repr=False)

    def _infer_schema(self) -> Schema:
        return self.relation.schema

    def detail(self) -> str:
        kind = self.token[0]
        rest = self.token[1:]
        if kind == "truth":
            return "⊤" if rest[0] else "⊥"
        return f"{kind}({', '.join(repr(p) for p in rest)})"


@dataclass(frozen=True)
class DataDomain(PlanNode):
    """The active data domain as a unary data relation (built at run time)."""

    op: ClassVar[str] = "data-domain"

    name: str

    def _infer_schema(self) -> Schema:
        return Schema.make(data=[self.name])

    def detail(self) -> str:
        return self.name


@dataclass(frozen=True)
class DataDiag(PlanNode):
    """The diagonal ``{(v, v)}`` over the active data domain."""

    op: ClassVar[str] = "data-diag"

    left: str
    right: str

    def _infer_schema(self) -> Schema:
        return Schema.make(data=sorted([self.left, self.right]))

    def detail(self) -> str:
        return f"{self.left} = {self.right}"


# ----------------------------------------------------------------------
# unary operations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Guard(PlanNode):
    """Pass the child through iff the active data domain is nonempty.

    Implements the vacuous data-sort quantifier: ``EXISTS d. φ`` with
    ``d`` not free in ``φ`` is ``φ`` when the domain has a witness and
    empty otherwise — a runtime fact, so it stays a plan node rather
    than folding away.
    """

    op: ClassVar[str] = "guard"

    child: PlanNode = _child()

    def _infer_schema(self) -> Schema:
        return self.child.schema

    def detail(self) -> str:
        return "data domain nonempty"


@dataclass(frozen=True)
class Select(PlanNode):
    """Selection by a restricted-constraint condition string."""

    op: ClassVar[str] = "select"

    child: PlanNode = _child()
    condition: str = ""

    def _infer_schema(self) -> Schema:
        schema = self.child.schema
        temporal = set(schema.temporal_names)
        for atom in parse_atoms(self.condition):
            names = [atom.left]
            right = getattr(atom, "right", None)
            if right is not None:
                names.append(right)
            for name in names:
                if name not in temporal:
                    raise SchemaError(
                        f"selection references non-temporal or unknown "
                        f"attribute {name!r}"
                    )
        return schema

    def detail(self) -> str:
        return self.condition


@dataclass(frozen=True)
class SelectData(PlanNode):
    """Selection of one data attribute equal to a constant."""

    op: ClassVar[str] = "select-data"

    child: PlanNode = _child()
    name: str = ""
    value: Hashable = None

    def _infer_schema(self) -> Schema:
        schema = self.child.schema
        if self.name not in schema.data_names:
            raise SchemaError(
                f"select-data references non-data attribute {self.name!r}"
            )
        return schema

    def detail(self) -> str:
        return f"{self.name} = {self.value!r}"


@dataclass(frozen=True)
class SelectDataEqual(PlanNode):
    """Selection of two data attributes being equal."""

    op: ClassVar[str] = "select-data-eq"

    child: PlanNode = _child()
    left: str = ""
    right: str = ""

    def _infer_schema(self) -> Schema:
        schema = self.child.schema
        for name in (self.left, self.right):
            if name not in schema.data_names:
                raise SchemaError(
                    f"select-data-eq references non-data attribute {name!r}"
                )
        return schema

    def detail(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Project(PlanNode):
    """Projection onto named attributes, in the given order.

    The consumer-facing normalization point: :func:`algebra.project`
    normalizes tuples, so the rewrite passes merge projection chains
    (normal-form deferral) and push projections toward leaves.
    """

    op: ClassVar[str] = "project"

    child: PlanNode = _child()
    names: tuple[str, ...] = ()

    def _infer_schema(self) -> Schema:
        schema = self.child.schema
        return Schema(tuple(schema.attribute(name) for name in self.names))

    def detail(self) -> str:
        return ", ".join(self.names)


@dataclass(frozen=True)
class Rename(PlanNode):
    """Attribute renaming; ``mapping`` is ``((old, new), ...)``."""

    op: ClassVar[str] = "rename"

    child: PlanNode = _child()
    mapping: tuple[tuple[str, str], ...] = ()

    def _infer_schema(self) -> Schema:
        table = dict(self.mapping)
        schema = self.child.schema
        return Schema(
            tuple(
                replace(attr, name=table.get(attr.name, attr.name))
                for attr in schema.attributes
            )
        )

    def detail(self) -> str:
        return ", ".join(f"{old}→{new}" for old, new in self.mapping)


@dataclass(frozen=True)
class Shift(PlanNode):
    """Shift one temporal column by a constant offset."""

    op: ClassVar[str] = "shift"

    child: PlanNode = _child()
    name: str = ""
    delta: int = 0

    def _infer_schema(self) -> Schema:
        return self.child.schema

    def detail(self) -> str:
        sign = "+" if self.delta >= 0 else "-"
        return f"{self.name} {sign} {abs(self.delta)}"


@dataclass(frozen=True)
class Complement(PlanNode):
    """Complement w.r.t. ``Z^k`` (finite domains on data attributes).

    A rewrite barrier: selections and projections never push through a
    complement (``σ(¬A) ≠ ¬σ(A)``).
    """

    op: ClassVar[str] = "complement"

    child: PlanNode = _child()

    def _infer_schema(self) -> Schema:
        return self.child.schema


@dataclass(frozen=True)
class Optimize(PlanNode):
    """Optimize a linear objective over the child relation.

    The root node a ``MINIMIZE``/``MAXIMIZE`` directive lowers to:
    ``sense`` is ``"min"`` or ``"max"``, the objective is the temporal
    attribute ``name`` or the difference ``name - minus``.  Relational
    semantics: the argopt restriction of the child (the tuple attaining
    the optimum, empty when the child is empty or the objective is
    unbounded).  The scalar :class:`~repro.optimize.core.
    OptimizationResult` is reported out of band through the execution
    context (``ctx.optimum``), because engines return relations.

    Like :class:`Complement`, a rewrite barrier — nothing pushes
    through it — but rewrite passes still fire on the child.
    """

    op: ClassVar[str] = "optimize"

    child: PlanNode = _child()
    sense: str = "min"
    name: str = ""
    minus: str | None = None

    def _infer_schema(self) -> Schema:
        schema = self.child.schema
        for attr in (self.name,) if self.minus is None else (
            self.name,
            self.minus,
        ):
            if attr not in schema.temporal_names:
                raise SchemaError(
                    f"objective attribute {attr!r} is not a temporal "
                    f"attribute of {schema}"
                )
        return schema

    def detail(self) -> str:
        objective = (
            self.name if self.minus is None else f"{self.name} - {self.minus}"
        )
        return f"{self.sense} {objective}"


# ----------------------------------------------------------------------
# binary operations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Binary(PlanNode):
    """Base for binary operation nodes."""

    left: PlanNode = _child()
    right: PlanNode = _child()


class _SetOp(_Binary):
    """union / intersect / subtract: both sides share one schema."""

    def _infer_schema(self) -> Schema:
        s1, s2 = self.left.schema, self.right.schema
        if s1 != s2:
            raise SchemaError(
                f"{self.op} operands have different schemas: {s1} vs {s2}"
            )
        return s1


@dataclass(frozen=True)
class Union(_SetOp):
    """Set union of two same-schema relations."""

    op: ClassVar[str] = "union"


@dataclass(frozen=True)
class Intersect(_SetOp):
    """Set intersection of two same-schema relations."""

    op: ClassVar[str] = "intersect"


@dataclass(frozen=True)
class Subtract(_SetOp):
    """Set difference of two same-schema relations."""

    op: ClassVar[str] = "subtract"


@dataclass(frozen=True)
class Join(_Binary):
    """Natural join: left schema plus right-only attributes."""

    op: ClassVar[str] = "join"

    def _infer_schema(self) -> Schema:
        s1, s2 = self.left.schema, self.right.schema
        for attr in s1.attributes:
            if s2.has(attr.name) and s2.attribute(attr.name).temporal != attr.temporal:
                raise SchemaError(
                    f"join attribute {attr.name!r} is temporal on one side "
                    "and data on the other"
                )
        extra = tuple(a for a in s2.attributes if not s1.has(a.name))
        return Schema(s1.attributes + extra)


@dataclass(frozen=True)
class Product(_Binary):
    """Cross product: attribute names must be disjoint."""

    op: ClassVar[str] = "product"

    def _infer_schema(self) -> Schema:
        s1, s2 = self.left.schema, self.right.schema
        overlap = set(s1.names) & set(s2.names)
        if overlap:
            raise SchemaError(
                f"product operands share attribute names: {sorted(overlap)}"
            )
        return Schema(s1.attributes + s2.attributes)


# ----------------------------------------------------------------------
# literal constructors
# ----------------------------------------------------------------------


def truth_literal(value: bool) -> Literal:
    """The 0-ary truth (one empty tuple) or falsity (no tuples) literal."""
    rel = GeneralizedRelation.empty(Schema(()))
    if value:
        from repro.core.tuples import GeneralizedTuple

        rel.add(GeneralizedTuple.make([]))
    return Literal(token=("truth", value), relation=rel)


def universe_literal(names: list[str]) -> Literal:
    """The universe ``Z^k`` over the given temporal attribute names."""
    schema = Schema.make(temporal=names)
    return Literal(
        token=("universe",) + tuple(names),
        relation=GeneralizedRelation.universe(schema),
    )


def empty_literal(schema: Schema) -> Literal:
    """The empty relation over an arbitrary schema."""
    return Literal(
        token=("empty",) + tuple(schema.names),
        relation=GeneralizedRelation.empty(schema),
    )


def singleton_literal(name: str, value: Hashable) -> Literal:
    """A one-tuple unary data relation ``{(value)}``."""
    from repro.core.tuples import GeneralizedTuple

    rel = GeneralizedRelation.empty(Schema.make(data=[name]))
    rel.add(GeneralizedTuple.make([], data=(value,)))
    return Literal(token=("singleton", name, value), relation=rel)
