"""repro.plan — the logical query planner's relation-expression IR.

The read path is split in three (``docs/planner.md``):

* **IR** (:mod:`repro.plan.nodes`) — frozen plan nodes mirroring the
  generalized algebra, with structural schema inference;
* **rewrites** (:mod:`repro.plan.rewrite`) — semantics-preserving
  passes (pushdown, reordering, CSE, normal-form deferral) with
  per-pass :class:`PassReport` deltas, costed by
  :mod:`repro.plan.cost`;
* **engines** (:mod:`repro.plan.engine`) — the pluggable execution
  contract; :class:`NativeEngine` runs plans on
  :mod:`repro.core.algebra` in-process.

The planner that lowers query ASTs into this IR lives with the query
language (:mod:`repro.query.planner`); :class:`PlanReport` is the
stable JSON-facing summary :func:`repro.api.plan` returns.
"""

from repro.plan.cost import CostModel
from repro.plan.engine import (
    Engine,
    ExecutionContext,
    NativeEngine,
    engines,
    get_engine,
    register_engine,
    resolve_engine,
)
from repro.plan.nodes import (
    Complement,
    DataDiag,
    DataDomain,
    Guard,
    Intersect,
    Join,
    Literal,
    Optimize,
    PlanNode,
    Product,
    Project,
    Rename,
    Scan,
    Select,
    SelectData,
    SelectDataEqual,
    Shift,
    Subtract,
    Union,
)
from repro.plan.report import PlanReport
from repro.plan.rewrite import PassReport, optimize_plan

__all__ = [
    "Complement",
    "CostModel",
    "DataDiag",
    "DataDomain",
    "Engine",
    "ExecutionContext",
    "Guard",
    "Intersect",
    "Join",
    "Literal",
    "NativeEngine",
    "Optimize",
    "PassReport",
    "PlanNode",
    "PlanReport",
    "Product",
    "Project",
    "Rename",
    "Scan",
    "Select",
    "SelectData",
    "SelectDataEqual",
    "Shift",
    "Subtract",
    "Union",
    "engines",
    "get_engine",
    "optimize_plan",
    "register_engine",
    "resolve_engine",
]
