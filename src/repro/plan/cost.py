"""Cardinality estimation for plan trees.

The planner's rewrite decisions (join/intersect order, which side of a
join receives a pushed selection first) need *relative* cardinality
estimates, not absolute truth.  The model combines three sources:

1. **Leaf sizes** — exact tuple counts of the stored relations the plan
   scans, plus the literal relations the planner materialized;
2. **Structural priors** — :data:`repro.core.algebra.COST_HINTS`, the
   per-operation selectivity/expansion factors;
3. **Live counters** — the prefilter skip counters
   :mod:`repro.perf.config` accumulates at run time: a workload whose
   pairwise prefilters reject most tuple pairs gets a proportionally
   smaller join/intersect selectivity, so reordering adapts to the
   data actually flowing through this process.

Estimates are in *generalized tuples* (the finite representation),
which is the unit every pairwise operation's cost is quadratic in.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.algebra import COST_HINTS
from repro.perf.config import PERF_COUNTERS
from repro.plan import nodes as ir

#: Selectivity floor — estimates never drop below this fraction, so a
#: long chain of selections cannot talk the model into believing a
#: relation is empty.
MIN_SELECTIVITY = 0.05

#: Counters whose increments represent pairwise prefilter rejections.
_PREFILTER_SKIPS = (
    "prefilter_lrp_skip",
    "prefilter_interval_skip",
    "prefilter_negation_skip",
    "prefilter_subtract_skip",
)


def observed_pair_selectivity(default: float) -> float:
    """Pairwise selectivity refined by the live prefilter counters.

    The prefilter layer rejects tuple pairs that provably cannot
    contribute to an intersect/join/subtract result; the fraction it
    rejects is a direct observation of pairwise selectivity on the
    current workload.  With no observations yet, ``default`` (the
    structural prior) is returned unchanged.
    """
    skips = sum(PERF_COUNTERS.get(name, 0) for name in _PREFILTER_SKIPS)
    if not skips:
        return default
    # Prefilters only run for optimized executions; pair totals are not
    # recorded globally, so treat the skip mass as evidence against the
    # prior rather than an exact rate: blend toward the floor as skip
    # evidence accumulates (saturating at 10k observations).
    weight = min(1.0, skips / 10_000.0)
    return max(MIN_SELECTIVITY, default * (1.0 - weight) + MIN_SELECTIVITY * weight)


class CostModel:
    """Cardinality estimates for plan nodes, memoized per model.

    ``relations`` supplies leaf sizes; ``domain_size`` the active data
    domain's cardinality (for the domain-derived leaves).
    """

    def __init__(
        self,
        relations: Mapping[str, object] | None = None,
        domain_size: int = 0,
    ) -> None:
        self.relations = relations or {}
        self.domain_size = domain_size
        self._memo: dict[int, float] = {}
        self._pair_selectivity = observed_pair_selectivity(
            COST_HINTS["join"]
        )

    def estimate(self, node: ir.PlanNode) -> float:
        """Estimated output cardinality of ``node`` (generalized tuples)."""
        cached = self._memo.get(id(node))
        if cached is not None:
            return cached
        value = self._estimate(node)
        self._memo[id(node)] = value
        return value

    def _estimate(self, node: ir.PlanNode) -> float:
        if isinstance(node, ir.Scan):
            stored = self.relations.get(node.name)
            return float(len(stored)) if stored is not None else 8.0
        if isinstance(node, ir.Literal):
            return float(len(node.relation))
        if isinstance(node, (ir.DataDomain, ir.DataDiag)):
            return float(max(1, self.domain_size))
        if isinstance(node, ir.Guard):
            return self.estimate(node.child)
        if isinstance(node, ir.Select):
            return self.estimate(node.child) * COST_HINTS["select"]
        if isinstance(node, ir.SelectData):
            return self.estimate(node.child) * COST_HINTS["select_data"]
        if isinstance(node, ir.SelectDataEqual):
            return self.estimate(node.child) * COST_HINTS["select_data_equal"]
        if isinstance(node, ir.Project):
            return self.estimate(node.child) * COST_HINTS["project"]
        if isinstance(node, (ir.Rename, ir.Shift)):
            return self.estimate(node.child)
        if isinstance(node, ir.Complement):
            return (self.estimate(node.child) + 1.0) * COST_HINTS["complement"]
        if isinstance(node, ir.Union):
            return self.estimate(node.left) + self.estimate(node.right)
        if isinstance(node, ir.Subtract):
            return self.estimate(node.left) * COST_HINTS["subtract"]
        if isinstance(node, ir.Intersect):
            pairs = self.estimate(node.left) * self.estimate(node.right)
            return max(1.0, pairs * self._pair_selectivity)
        if isinstance(node, ir.Join):
            return self.joined_estimate(node.left, node.right)
        if isinstance(node, ir.Product):
            return self.estimate(node.left) * self.estimate(node.right)
        return 8.0  # pragma: no cover - exhaustive over nodes.py

    def joined_estimate(
        self, left: ir.PlanNode, right: ir.PlanNode
    ) -> float:
        """Estimated size of ``left ⋈ right`` (used for join ordering).

        Shared attributes constrain the pair (prefilter-refined
        selectivity applies); a join without shared attributes is a
        cross product and estimates accordingly.
        """
        pairs = self.estimate(left) * self.estimate(right)
        shared = set(left.schema.names) & set(right.schema.names)
        if not shared:
            return max(1.0, pairs)
        # Each shared attribute narrows the pair further.
        selectivity = self._pair_selectivity ** min(len(shared), 2)
        return max(1.0, pairs * selectivity)
