"""The stable plan surface: :class:`PlanReport` for JSON consumers.

A :class:`PlanReport` is what :func:`repro.api.plan` and
:func:`repro.api.explain` return: the lowered (naive) plan, the
optimized plan, the per-pass rewrite deltas, and — for ``explain`` —
the per-node output sizes observed by actually executing the plan.
Everything is frozen and renders both as text (``str()``) and as JSON
(:meth:`PlanReport.to_dict`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.plan.nodes import PlanNode
from repro.plan.rewrite import PassReport


@dataclass(frozen=True, eq=False)
class PlanReport:
    """A query's plan, before and after optimization, plus pass deltas.

    ``annotations`` maps plan-node object ids to observed output tuple
    counts; it is populated only by :func:`repro.api.explain` (which
    executes the plan) and stays ``None`` for the purely static
    :func:`repro.api.plan`.
    """

    query: str
    engine: str
    optimized: bool
    naive: PlanNode
    plan: PlanNode
    passes: tuple[PassReport, ...] = ()
    annotations: dict[int, int] | None = field(
        default=None, repr=False, compare=False
    )

    def _render_node(self, node: PlanNode, indent: int) -> list[str]:
        pad = "  " * indent
        suffix = ""
        if self.annotations is not None and id(node) in self.annotations:
            suffix = f"  -> {self.annotations[id(node)]} tuple(s)"
        origin = ""
        if node.labels:
            origin = "  ← " + ", ".join(
                op if not detail else f"{op}: {detail}"
                for op, detail in node.labels
            )
        lines = [f"{pad}{node.describe()}  :: {node.schema}{origin}{suffix}"]
        for child in node.children:
            lines.extend(self._render_node(child, indent + 1))
        return lines

    def render(self) -> list[str]:
        """The report as text lines: header, plan tree, pass deltas."""
        state = "optimized" if self.optimized else "naive"
        lines = [f"plan [{state}, engine={self.engine}] for: {self.query}"]
        lines.extend(self._render_node(self.plan, 1))
        if self.passes:
            lines.append("passes:")
            for report in self.passes:
                lines.append(f"  {report}")
        return lines

    def _node_dict(self, node: PlanNode) -> dict[str, Any]:
        out = {
            key: value
            for key, value in node.to_dict().items()
            if key != "children"
        }
        if self.annotations is not None and id(node) in self.annotations:
            out["out_tuples"] = self.annotations[id(node)]
        if node.children:
            out["children"] = [
                self._node_dict(child) for child in node.children
            ]
        return out

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dump: query, engine, plans and pass deltas."""
        return {
            "query": self.query,
            "engine": self.engine,
            "optimized": self.optimized,
            "plan": self._node_dict(self.plan),
            "naive": self.naive.to_dict(),
            "passes": [report.to_dict() for report in self.passes],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`to_dict` serialized as JSON text."""
        import json

        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def __str__(self) -> str:
        return "\n".join(self.render())
