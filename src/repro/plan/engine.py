"""Pluggable execution engines for relation-expression plans.

An :class:`Engine` turns a plan tree (:mod:`repro.plan.nodes`) into a
:class:`~repro.core.relations.GeneralizedRelation` against an
:class:`ExecutionContext` (the stored relations, the active data
domain, the safety limits).  :class:`NativeEngine` — the default — maps
every node onto :mod:`repro.core.algebra` in-process; alternative
engines register themselves under a name with :func:`register_engine`
and are selected per query via ``Evaluator(engine=...)``,
``Database.query(engine=...)``, ``repro --engine`` or the
``REPRO_ENGINE`` environment variable.

Tracing contract: a node that carries provenance ``labels`` opens one
``query.<operator>`` span per label (outermost first), reproducing the
legacy evaluator's trace shape exactly; unlabeled nodes open
``plan.<op>`` spans only when the context asks for them (optimized
runs), so un-optimized execution is span-for-span identical to the
pre-planner evaluator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Hashable, Mapping, Sequence
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import ClassVar

from repro.core import algebra
from repro.core.errors import EvaluationError, ReproTypeError, ReproValueError
from repro.core.negation import DEFAULT_MAX_EXTENSIONS
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import GeneralizedRelation
from repro.core.tuples import GeneralizedTuple
from repro.obs import trace as obs
from repro.plan import nodes as ir


@dataclass
class ExecutionContext:
    """Everything an engine needs besides the plan itself.

    ``data_domain`` is the active data domain *set* (iteration order is
    preserved for output determinism); ``data_domains`` optionally maps
    attribute names to explicit finite domains (the differential-fuzz
    harness uses per-attribute domains) and takes precedence inside
    complements.  ``plan_spans`` turns on ``plan.*`` spans for
    unlabeled nodes; ``memo`` enables result reuse for subtrees shared
    by common-subexpression elimination.  ``on_result`` / ``on_pair``
    are observation hooks: per-node results (EXPLAIN annotations, cost
    guards) and pairwise-op sizes (fuzzing's deterministic caps).

    ``optimum`` is an *out* slot: engines return relations, so an
    :class:`~repro.plan.nodes.Optimize` root deposits its scalar
    :class:`~repro.optimize.core.OptimizationResult` here for the
    evaluator to pick up after :meth:`Engine.run` returns.
    """

    relations: Mapping[str, GeneralizedRelation]
    data_domain: set[Hashable] = field(default_factory=set)
    data_domains: Mapping[str, Sequence] | None = None
    max_tuples: int = DEFAULT_MAX_TUPLES
    max_extensions: int = DEFAULT_MAX_EXTENSIONS
    plan_spans: bool = False
    memo: dict[int, GeneralizedRelation] | None = None
    on_result: Callable[[ir.PlanNode, GeneralizedRelation], None] | None = None
    on_pair: Callable[[ir.PlanNode, int, int], None] | None = None
    optimum: object | None = None

    def domain_for(self, name: str) -> list:
        """The finite domain complementing data attribute ``name``."""
        if self.data_domains is not None:
            return list(self.data_domains[name])
        return sorted(self.data_domain, key=repr)


class Engine(ABC):
    """The execution-engine contract.

    An engine evaluates a whole plan tree; how it does so — in-process
    algebra, a remote service, a different data-part backend — is its
    own business, as long as the result denotes the same point set the
    :class:`NativeEngine` computes.  Engines must be stateless across
    :meth:`run` calls (one instance is shared by every evaluator that
    selects it by name).
    """

    #: Registry name; subclasses override.
    name: ClassVar[str] = "?"

    @abstractmethod
    def run(
        self, plan: ir.PlanNode, ctx: ExecutionContext
    ) -> GeneralizedRelation:
        """Execute ``plan`` against ``ctx`` and return the result."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class NativeEngine(Engine):
    """The default engine: every plan node is one in-memory algebra call.

    Inherits the whole :mod:`repro.perf` stack (interning caches,
    prefilters, batched closure kernel, process fan-out) because it
    calls the same :mod:`repro.core.algebra` entry points the
    pre-planner evaluator did.
    """

    name: ClassVar[str] = "native"

    def run(
        self, plan: ir.PlanNode, ctx: ExecutionContext
    ) -> GeneralizedRelation:
        """Execute the plan bottom-up, emitting trace spans per node."""
        return self._exec(plan, ctx)

    # -- internals -----------------------------------------------------

    def _exec(
        self, node: ir.PlanNode, ctx: ExecutionContext
    ) -> GeneralizedRelation:
        if ctx.memo is not None and id(node) in ctx.memo:
            result = ctx.memo[id(node)]
            self._emit_reused(node, ctx, result)
            return result
        recorder = obs.active_recorder()
        if recorder is None:
            result = self._compute(node, ctx)
        else:
            with ExitStack() as stack:
                spans = [
                    stack.enter_context(
                        recorder.span(f"query.{op}", detail=detail)
                    )
                    for op, detail in node.labels
                ]
                if not spans and ctx.plan_spans:
                    spans = [
                        stack.enter_context(
                            recorder.span(
                                f"plan.{node.op}", detail=node.detail()
                            )
                        )
                    ]
                result = self._compute(node, ctx)
                for sp in spans:
                    sp.set(
                        out_tuples=len(result),
                        out_schema=str(result.schema),
                    )
        if ctx.memo is not None:
            ctx.memo[id(node)] = result
        if ctx.on_result is not None:
            ctx.on_result(node, result)
        return result

    def _emit_reused(
        self,
        node: ir.PlanNode,
        ctx: ExecutionContext,
        result: GeneralizedRelation,
    ) -> None:
        """Record spans for a memoized subtree without recomputing it."""
        recorder = obs.active_recorder()
        if recorder is None:
            return
        names = [f"query.{op}" for op, _ in node.labels]
        if not names and ctx.plan_spans:
            names = [f"plan.{node.op}"]
        with ExitStack() as stack:
            for name in names:
                sp = stack.enter_context(recorder.span(name))
                sp.set(
                    reused=True,
                    out_tuples=len(result),
                    out_schema=str(result.schema),
                )

    def _pair(
        self, node: ir._Binary, ctx: ExecutionContext
    ) -> tuple[GeneralizedRelation, GeneralizedRelation]:
        r1 = self._exec(node.left, ctx)
        r2 = self._exec(node.right, ctx)
        if ctx.on_pair is not None:
            ctx.on_pair(node, len(r1), len(r2))
        return r1, r2

    def _compute(
        self, node: ir.PlanNode, ctx: ExecutionContext
    ) -> GeneralizedRelation:
        if isinstance(node, ir.Scan):
            stored = ctx.relations.get(node.name)
            if stored is None:
                raise EvaluationError(f"unknown relation {node.name!r}")
            return stored
        if isinstance(node, ir.Literal):
            return node.relation
        if isinstance(node, ir.DataDomain):
            out = GeneralizedRelation.empty(node.schema)
            for value in ctx.data_domain:
                out.add(GeneralizedTuple.make([], data=(value,)))
            return out
        if isinstance(node, ir.DataDiag):
            out = GeneralizedRelation.empty(node.schema)
            for value in ctx.data_domain:
                out.add(GeneralizedTuple.make([], data=(value, value)))
            return out
        if isinstance(node, ir.Guard):
            child = self._exec(node.child, ctx)
            if not ctx.data_domain:
                return GeneralizedRelation.empty(child.schema)
            return child
        if isinstance(node, ir.Select):
            return algebra.select(self._exec(node.child, ctx), node.condition)
        if isinstance(node, ir.SelectData):
            return algebra.select_data(
                self._exec(node.child, ctx), node.name, node.value
            )
        if isinstance(node, ir.SelectDataEqual):
            return algebra.select_data_equal(
                self._exec(node.child, ctx), node.left, node.right
            )
        if isinstance(node, ir.Project):
            return algebra.project(self._exec(node.child, ctx), list(node.names))
        if isinstance(node, ir.Rename):
            return algebra.rename(
                self._exec(node.child, ctx), dict(node.mapping)
            )
        if isinstance(node, ir.Shift):
            return algebra.shift_column(
                self._exec(node.child, ctx), node.name, node.delta
            )
        if isinstance(node, ir.Complement):
            child = self._exec(node.child, ctx)
            data_domains = {
                name: ctx.domain_for(name)
                for name in child.schema.data_names
            }
            return algebra.complement(
                child,
                data_domains=data_domains or None,
                max_tuples=ctx.max_tuples,
                max_extensions=ctx.max_extensions,
            )
        if isinstance(node, ir.Union):
            return algebra.union(*self._pair(node, ctx))
        if isinstance(node, ir.Intersect):
            return algebra.intersect(*self._pair(node, ctx))
        if isinstance(node, ir.Subtract):
            return algebra.subtract(*self._pair(node, ctx))
        if isinstance(node, ir.Join):
            return algebra.join(*self._pair(node, ctx))
        if isinstance(node, ir.Product):
            return algebra.product(*self._pair(node, ctx))
        if isinstance(node, ir.Optimize):
            # Local import: repro.optimize sits above the plan layer.
            from repro.optimize.core import optimize_relation
            from repro.optimize.objective import Objective

            child = self._exec(node.child, ctx)
            objective = Objective(node.name, node.minus)
            result = optimize_relation(
                child, objective, node.sense, max_tuples=ctx.max_tuples
            )
            ctx.optimum = result
            return result.argopt_restriction()
        raise ReproTypeError(  # pragma: no cover - exhaustive over nodes.py
            f"unexpected plan node: {type(node).__name__}"
        )


# ----------------------------------------------------------------------
# engine registry
# ----------------------------------------------------------------------

_ENGINES: dict[str, Engine] = {}


def register_engine(engine: Engine) -> Engine:
    """Register an engine instance under ``engine.name`` (replacing any)."""
    if not isinstance(engine, Engine):
        raise ReproTypeError(
            f"register_engine() takes an Engine instance, got {engine!r}"
        )
    _ENGINES[engine.name] = engine
    return engine


def get_engine(name: str) -> Engine:
    """Look up a registered engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        raise ReproValueError(
            f"unknown engine {name!r}; registered: {', '.join(sorted(_ENGINES))}"
        ) from None


def engines() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    return tuple(sorted(_ENGINES))


def resolve_engine(engine: str | Engine | None) -> Engine:
    """Coerce an engine argument (name, instance or ``None``) to an engine.

    ``None`` selects the configured default
    (:attr:`repro.perf.config.PerfConfig.engine`, environment variable
    ``REPRO_ENGINE``).
    """
    if engine is None:
        from repro.perf.config import get_config

        return get_engine(get_config().engine)
    if isinstance(engine, Engine):
        return engine
    if isinstance(engine, str):
        return get_engine(engine)
    raise ReproTypeError(f"engine must be a name or an Engine, got {engine!r}")


register_engine(NativeEngine())
