"""Rewrite passes over relation-expression plans.

:func:`optimize_plan` runs a fixed pass pipeline and returns the
rewritten plan together with one :class:`PassReport` per pass (the
per-pass deltas EXPLAIN renders).  Every pass is a pure function from
plan to plan; all of them preserve the denoted point set (the
differential-fuzz harness replays its whole corpus through optimized
plans to enforce exactly that), though not necessarily the syntactic
tuple representation.

The pipeline, in order:

1. ``fold-constants`` — drop truth seeds (``⊤ ⋈ X → X``), collapse
   unions/intersections with empty literals, and fold
   ``A ⋈ σc(universe)`` into ``σc(A)`` (the calculus lowers every
   comparison atom as a selected universe; joining it away turns the
   comparison into a plain selection on the data-carrying side);
2. ``fuse-selects`` — merge adjacent selections into one conjunction
   (one constraint-merge pass per tuple instead of several);
3. ``push-selects`` — move selections toward the leaves: through
   unions, intersections, joins (per-side attribute containment),
   products, the minuend of subtractions, projections that keep the
   selected attributes, renames (via the inverse mapping) and guards —
   never through complements (``σ(¬A) ≠ ¬σ(A)``);
4. ``push-projects`` — narrow join/product/union inputs to the
   attributes the projection keeps plus the join-shared ones; stops at
   complements, subtractions, intersections and selections;
5. ``collapse-projects`` — normal-form deferral: merge projection
   chains (``π1 ∘ π2 → π1``) and drop identity projections, so
   per-tuple partial normalization runs once per consumer, not once
   per intermediate;
6. ``reorder-joins`` — flatten natural-join chains and re-order them
   greedily by estimated intermediate size (leaf sizes × cost hints ×
   prefilter-counter-refined selectivity), wrapping the chain in a
   cheap column-reorder projection to preserve the original schema;
7. ``dedup-subtrees`` — common-subexpression detection: structurally
   identical subtrees (labels ignored) are interned to one shared
   object, which the engine's memo then computes once.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.core.constraints import Atom, VarVarAtom, parse_atoms
from repro.obs import trace as obs
from repro.obs.metrics import get_registry
from repro.plan import nodes as ir
from repro.plan.cost import CostModel


@dataclass(frozen=True)
class PassReport:
    """One rewrite pass's delta: what it did to the plan."""

    name: str
    rewrites: int
    nodes_before: int
    nodes_after: int

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dump of the pass delta."""
        return {
            "name": self.name,
            "rewrites": self.rewrites,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
        }

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.rewrites} rewrite(s), "
            f"{self.nodes_before} -> {self.nodes_after} node(s)"
        )


class _Rewriter:
    """Shared bottom-up transformation driver with a rewrite counter."""

    def __init__(self) -> None:
        self.count = 0

    def transform(
        self, node: ir.PlanNode, fn: Callable[[ir.PlanNode], ir.PlanNode]
    ) -> ir.PlanNode:
        children = node.children
        if children:
            new_children = tuple(self.transform(c, fn) for c in children)
            if any(n is not o for n, o in zip(new_children, children)):
                node = node.replace_children(new_children)
        return fn(node)


def _merge_labels(outer: ir.Labels, inner: ir.PlanNode) -> ir.PlanNode:
    """Attach a dropped wrapper's labels onto its replacement node."""
    if not outer:
        return inner
    return inner.with_labels(outer + inner.labels)


def _atom_names(atom: Atom) -> set[str]:
    names = {atom.left}
    if isinstance(atom, VarVarAtom):
        names.add(atom.right)
    return names


def _condition(atoms: list[Atom]) -> str:
    return " & ".join(str(atom) for atom in atoms)


def _make_select(
    child: ir.PlanNode, atoms: list[Atom], labels: ir.Labels = ()
) -> ir.PlanNode:
    """A selection over ``child``, fusing into an existing selection."""
    if not atoms:
        return _merge_labels(labels, child)
    if isinstance(child, ir.Select):
        return ir.Select(
            child.child,
            f"{_condition(atoms)} & {child.condition}",
            labels=labels + child.labels,
        )
    return ir.Select(child, _condition(atoms), labels=labels)


# ----------------------------------------------------------------------
# pass 1: constant folding
# ----------------------------------------------------------------------


def _is_truth(node: ir.PlanNode) -> bool:
    return isinstance(node, ir.Literal) and node.token == ("truth", True)


def _is_empty(node: ir.PlanNode) -> bool:
    return isinstance(node, ir.Literal) and node.token[0] == "empty"


def _universe_select(node: ir.PlanNode) -> tuple[list[Atom], set[str]] | None:
    """Match ``σ atoms(universe(names))`` (possibly a bare universe)."""
    atoms: list[Atom] = []
    while isinstance(node, ir.Select):
        atoms = parse_atoms(node.condition) + atoms
        node = node.child
    if isinstance(node, ir.Literal) and node.token[0] == "universe":
        return atoms, set(node.token[1:])
    return None


def fold_constants(root: ir.PlanNode) -> tuple[ir.PlanNode, int]:
    """Drop truth seeds, collapse empties, fold selected universes."""
    rw = _Rewriter()

    def fold(node: ir.PlanNode) -> ir.PlanNode:
        if isinstance(node, ir.Join):
            if _is_truth(node.left):
                rw.count += 1
                return _merge_labels(node.labels, node.right)
            if _is_truth(node.right):
                rw.count += 1
                return _merge_labels(node.labels, node.left)
            for side, other in (
                (node.right, node.left),
                (node.left, node.right),
            ):
                matched = _universe_select(side)
                if matched is None:
                    continue
                atoms, names = matched
                if names and names <= set(other.schema.temporal_names):
                    rw.count += 1
                    folded = _make_select(other, atoms, labels=node.labels)
                    # Dropping the universe side keeps the column *set*
                    # but can change the join's merge order — restore it.
                    order = tuple(node.schema.names)
                    if tuple(folded.schema.names) != order:
                        folded = ir.Project(folded, order)
                    return folded
        if isinstance(node, ir.Union):
            if _is_empty(node.left):
                rw.count += 1
                return _merge_labels(node.labels, node.right)
            if _is_empty(node.right):
                rw.count += 1
                return _merge_labels(node.labels, node.left)
        if isinstance(node, ir.Intersect):
            for side in (node.left, node.right):
                if _is_empty(side):
                    rw.count += 1
                    return _merge_labels(node.labels, side)
        if isinstance(node, ir.Subtract) and _is_empty(node.right):
            rw.count += 1
            return _merge_labels(node.labels, node.left)
        return node

    return rw.transform(root, fold), rw.count


# ----------------------------------------------------------------------
# pass 2: selection fusion
# ----------------------------------------------------------------------


def fuse_selects(root: ir.PlanNode) -> tuple[ir.PlanNode, int]:
    """Merge adjacent selections into one conjunctive condition."""
    rw = _Rewriter()

    def fuse(node: ir.PlanNode) -> ir.PlanNode:
        if isinstance(node, ir.Select) and isinstance(node.child, ir.Select):
            rw.count += 1
            inner = node.child
            return ir.Select(
                inner.child,
                f"{node.condition} & {inner.condition}",
                labels=node.labels + inner.labels,
            )
        return node

    return rw.transform(root, fuse), rw.count


# ----------------------------------------------------------------------
# pass 3: selection pushdown
# ----------------------------------------------------------------------


def push_selects(root: ir.PlanNode) -> tuple[ir.PlanNode, int]:
    """Push selections toward the leaves (never through complements)."""
    rw = _Rewriter()

    def push(node: ir.PlanNode) -> ir.PlanNode:
        if not isinstance(node, ir.Select):
            return node
        atoms = parse_atoms(node.condition)
        child = node.child
        if isinstance(child, (ir.Union, ir.Intersect)):
            rw.count += 1
            rebuilt = type(child)(
                _make_select(child.left, atoms),
                _make_select(child.right, atoms),
                labels=node.labels + child.labels,
            )
            return rebuilt.replace_children(
                tuple(push(c) for c in rebuilt.children)
            )
        if isinstance(child, (ir.Join, ir.Product)):
            left_names = set(child.left.schema.temporal_names)
            right_names = set(child.right.schema.temporal_names)
            to_left = [a for a in atoms if _atom_names(a) <= left_names]
            remaining = [a for a in atoms if a not in to_left]
            to_right = [
                a for a in remaining if _atom_names(a) <= right_names
            ]
            kept = [a for a in remaining if a not in to_right]
            if not to_left and not to_right:
                return node
            rw.count += 1
            rebuilt = type(child)(
                push(_make_select(child.left, to_left)),
                push(_make_select(child.right, to_right)),
                labels=child.labels if kept else node.labels + child.labels,
            )
            return _make_select(rebuilt, kept, labels=node.labels) if kept else rebuilt
        if isinstance(child, ir.Subtract):
            rw.count += 1
            return ir.Subtract(
                push(_make_select(child.left, atoms)),
                child.right,
                labels=node.labels + child.labels,
            )
        if isinstance(child, ir.Project):
            if all(_atom_names(a) <= set(child.names) for a in atoms):
                rw.count += 1
                return ir.Project(
                    push(_make_select(child.child, atoms)),
                    child.names,
                    labels=node.labels + child.labels,
                )
            return node
        if isinstance(child, ir.Rename):
            inverse = {new: old for old, new in child.mapping}
            renamed: list[Atom] = []
            for atom in atoms:
                changes = {"left": inverse.get(atom.left, atom.left)}
                if isinstance(atom, VarVarAtom):
                    changes["right"] = inverse.get(atom.right, atom.right)
                renamed.append(replace(atom, **changes))
            rw.count += 1
            return ir.Rename(
                push(_make_select(child.child, renamed)),
                child.mapping,
                labels=node.labels + child.labels,
            )
        if isinstance(child, ir.Guard):
            rw.count += 1
            return ir.Guard(
                push(_make_select(child.child, atoms)),
                labels=node.labels + child.labels,
            )
        if isinstance(child, (ir.SelectData, ir.SelectDataEqual)):
            rw.count += 1
            pushed = push(_make_select(child.child, atoms))
            return child.replace_children((pushed,)).with_labels(
                node.labels + child.labels
            )
        return node

    return rw.transform(root, push), rw.count


# ----------------------------------------------------------------------
# pass 4: projection pushdown
# ----------------------------------------------------------------------


def push_projects(root: ir.PlanNode) -> tuple[ir.PlanNode, int]:
    """Narrow join/product/union inputs to the attributes a projection keeps."""
    rw = _Rewriter()

    def narrow(child: ir.PlanNode, needed: list[str]) -> ir.PlanNode:
        if list(child.schema.names) == needed:
            return child
        rw.count += 1
        return ir.Project(child, tuple(needed))

    def push(node: ir.PlanNode) -> ir.PlanNode:
        if not isinstance(node, ir.Project):
            return node
        child = node.child
        keep = set(node.names)
        if isinstance(child, ir.Union):
            rw.count += 1
            rebuilt = ir.Union(
                ir.Project(child.left, node.names),
                ir.Project(child.right, node.names),
                labels=node.labels + child.labels,
            )
            return rebuilt.replace_children(
                tuple(push(c) for c in rebuilt.children)
            )
        if isinstance(child, ir.Join):
            shared = set(child.left.schema.names) & set(
                child.right.schema.names
            )
            wanted = keep | shared
            need_l = [n for n in child.left.schema.names if n in wanted]
            need_r = [n for n in child.right.schema.names if n in wanted]
            if len(need_l) == len(child.left.schema.names) and len(
                need_r
            ) == len(child.right.schema.names):
                return node
            rebuilt = ir.Join(
                push(narrow(child.left, need_l)),
                push(narrow(child.right, need_r)),
                labels=child.labels,
            )
            return ir.Project(rebuilt, node.names, labels=node.labels)
        if isinstance(child, ir.Product):
            need_l = [n for n in child.left.schema.names if n in keep]
            need_r = [n for n in child.right.schema.names if n in keep]
            if not need_l or not need_r:
                # Dropping one side entirely changes multiplicity-free
                # semantics only through projection; keep the product
                # intact rather than reasoning about emptiness here.
                return node
            if len(need_l) == len(child.left.schema.names) and len(
                need_r
            ) == len(child.right.schema.names):
                return node
            rebuilt = ir.Product(
                push(narrow(child.left, need_l)),
                push(narrow(child.right, need_r)),
                labels=child.labels,
            )
            return ir.Project(rebuilt, node.names, labels=node.labels)
        if isinstance(child, ir.Guard):
            rw.count += 1
            return ir.Guard(
                push(ir.Project(child.child, node.names)),
                labels=node.labels + child.labels,
            )
        return node

    return rw.transform(root, push), rw.count


# ----------------------------------------------------------------------
# pass 5: normal-form deferral
# ----------------------------------------------------------------------


def collapse_projects(root: ir.PlanNode) -> tuple[ir.PlanNode, int]:
    """Merge projection chains and drop identity projections."""
    rw = _Rewriter()

    def collapse(node: ir.PlanNode) -> ir.PlanNode:
        if not isinstance(node, ir.Project):
            return node
        if isinstance(node.child, ir.Project):
            rw.count += 1
            return collapse(
                ir.Project(
                    node.child.child,
                    node.names,
                    labels=node.labels + node.child.labels,
                )
            )
        if tuple(node.child.schema.names) == node.names:
            rw.count += 1
            return _merge_labels(node.labels, node.child)
        return node

    return rw.transform(root, collapse), rw.count


# ----------------------------------------------------------------------
# pass 6: join reordering
# ----------------------------------------------------------------------


def reorder_joins(
    root: ir.PlanNode, model: CostModel
) -> tuple[ir.PlanNode, int]:
    """Greedily reorder natural-join chains by estimated intermediate size."""
    rw = _Rewriter()

    def flatten(node: ir.PlanNode) -> tuple[list[ir.PlanNode], ir.Labels]:
        if isinstance(node, ir.Join):
            left_parts, left_labels = flatten(node.left)
            right_parts, right_labels = flatten(node.right)
            return left_parts + right_parts, node.labels + left_labels + right_labels
        return [node], ()

    def reorder(node: ir.PlanNode) -> ir.PlanNode:
        if not isinstance(node, ir.Join):
            return node
        parts, labels = flatten(node)
        if len(parts) < 3:
            return node
        original = parts[:]
        remaining = parts[:]
        remaining.sort(key=model.estimate)
        chain = remaining.pop(0)
        ordered = [chain]
        while remaining:
            best_index = 0
            best_score = None
            for i, candidate in enumerate(remaining):
                score = model.joined_estimate(chain, candidate)
                if best_score is None or score < best_score:
                    best_score = score
                    best_index = i
            nxt = remaining.pop(best_index)
            ordered.append(nxt)
            chain = ir.Join(chain, nxt)
        if ordered == original:
            return node
        rw.count += 1
        chain = chain.with_labels(labels)
        if tuple(chain.schema.names) != tuple(node.schema.names):
            return ir.Project(chain, tuple(node.schema.names))
        return chain

    return rw.transform(root, reorder), rw.count


# ----------------------------------------------------------------------
# pass 7: common-subexpression detection
# ----------------------------------------------------------------------


def dedup_subtrees(root: ir.PlanNode) -> tuple[ir.PlanNode, int]:
    """Intern structurally identical subtrees to one shared object.

    The structural key ignores provenance labels, mirroring the perf
    layer's interning caches: two subtrees that compute the same
    relation are merged even when they originate from different query
    syntax.  The engine's per-run memo then evaluates the shared
    subtree once and reuses the result.
    """
    seen: dict[tuple, ir.PlanNode] = {}
    hits = 0

    def intern(node: ir.PlanNode) -> ir.PlanNode:
        nonlocal hits
        children = node.children
        if children:
            new_children = tuple(intern(c) for c in children)
            if any(n is not o for n, o in zip(new_children, children)):
                node = node.replace_children(new_children)
        key = node.key()
        kept = seen.get(key)
        if kept is not None:
            if kept is not node:
                hits += 1
            return kept
        seen[key] = node
        return node

    return intern(root), hits


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------


def optimize_plan(
    root: ir.PlanNode,
    relations: Mapping[str, object] | None = None,
    domain_size: int = 0,
) -> tuple[ir.PlanNode, tuple[PassReport, ...]]:
    """Run the full rewrite pipeline; return the plan and per-pass deltas.

    ``relations``/``domain_size`` feed the cost model used by join
    reordering.  Emits one ``planner.pass.<name>`` counter increment
    per rewrite and a ``planner.optimize`` span (with per-pass rewrite
    counts) when tracing is active.
    """
    model = CostModel(relations=relations, domain_size=domain_size)
    passes: list[tuple[str, Callable[[ir.PlanNode], tuple[ir.PlanNode, int]]]] = [
        ("fold-constants", fold_constants),
        ("fuse-selects", fuse_selects),
        ("push-selects", push_selects),
        ("push-projects", push_projects),
        ("collapse-projects", collapse_projects),
        ("reorder-joins", lambda plan: reorder_joins(plan, model)),
        ("dedup-subtrees", dedup_subtrees),
    ]
    registry = get_registry()
    reports: list[PassReport] = []
    with obs.span("planner.optimize", nodes=root.size()) as sp:
        for name, run in passes:
            before = root.size()
            root, count = run(root)
            reports.append(
                PassReport(
                    name=name,
                    rewrites=count,
                    nodes_before=before,
                    nodes_after=root.size(),
                )
            )
            if count:
                registry.counter(f"planner.pass.{name}").inc(count)
            sp.set(**{f"pass.{name}": count})
        registry.counter("planner.optimized").inc()
        sp.set(out_nodes=root.size())
    return root, tuple(reports)
