"""repro.api — the supported public surface, in one import.

The library grew module by module (core algebra, query language,
Presburger characterization, optimization layer, observability); this
facade pins down what is *stable*: everything exported here follows
deprecation policy (one release of warnings before a breaking change).
Anything reached by deeper imports — ``repro.core.dbm``,
``repro.perf.prefilter``, ... — is engine internals and may change
without notice.

Quickstart::

    from repro.api import Database

    db = Database()
    db.create("Train", temporal=["dep", "arr"], data=["service"])
    db.relation("Train").add_tuple(
        ["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"]
    )
    assert db.ask('EXISTS d. EXISTS a. Train(d, a, "slow") & d >= 60')

    print(db.query("EXPLAIN EXISTS d. EXISTS a. Train(d, a, \\"slow\\")"))
    trace = db.trace('EXISTS d. EXISTS a. Train(d, a, "slow")')
    print(trace.flamegraph())

Durability: ``Database.open(path)`` binds the same catalog to a
crash-safe on-disk store — mutate freely, then ``db.commit()``; a
crash at any point recovers to exactly the last committed state::

    with Database.open("trains.db") as db:
        db.create("Train", temporal=["dep", "arr"], data=["service"])
        db.relation("Train").add_tuple(
            ["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"]
        )
        db.commit()

The surface, by area:

* **data model** — :class:`Schema`, :class:`GeneralizedRelation`,
  :class:`GeneralizedTuple`, :class:`LRP`, :func:`relation`;
* **queries** — :class:`Database`, :class:`Evaluator`,
  :func:`parse_query`, :func:`explain_analyze`, :class:`QueryTrace`;
* **planning** — :func:`plan` / :func:`explain` (frozen
  :class:`PlanReport` summaries), :class:`PlanNode` (the
  relation-expression IR), :class:`PassReport`, and the pluggable
  engine registry :class:`Engine` / :class:`ExecutionContext` /
  :class:`NativeEngine` / :func:`register_engine` / :func:`get_engine`
  / :func:`engines` (see ``docs/planner.md``);
* **durable storage** — :meth:`Database.open` / :meth:`Database.commit`
  / :meth:`Database.compact` / :meth:`Database.close`,
  :class:`StorageEngine` (the WAL-backed store itself), and the
  deterministic crash harness :class:`FaultInjector` /
  :func:`crash_at` / :class:`InjectedCrash`;
* **serving** — :class:`ReproServer` (the asyncio multi-client server:
  MVCC snapshot reads, single-fsync group commit),
  :meth:`Database.snapshot` / :class:`Snapshot` (lock-free pinned
  reads, in-process too), and the :class:`SyncClient` /
  :class:`Client` wire clients — see ``docs/serving.md``;
* **deduction** — :class:`Program` / :class:`Rule` (Datalog over
  generalized relations, semi-naive evaluation),
  :meth:`Database.install_program` (materialized IDB views, refreshed
  incrementally on every commit) and
  :meth:`Database.append_stream` (batched streaming ingest) — see
  ``docs/deductive.md``;
* **observability** — :func:`tracing`, :class:`TraceRecorder`,
  :class:`Span`, :func:`render_flamegraph`, :func:`metrics`,
  :class:`MetricsRegistry`, :func:`kernel_backend` (which DBM closure
  backend — ``numpy`` or ``python`` — is active);
* **errors** — :class:`ReproError` and its documented subclasses (see
  :mod:`repro.core.errors`), including :class:`StorageError` /
  :class:`RecoveryError` for the durable layer.

``docs/index.md`` maps this surface to the documentation set;
``docs/architecture.md`` maps the whole codebase to the paper.
"""

from __future__ import annotations

from repro.core import (
    LRP,
    GeneralizedRelation,
    GeneralizedTuple,
    Schema,
    relation,
)
from repro.deductive import Program, Rule
from repro.core.errors import (
    ConstraintError,
    DomainError,
    EvaluationError,
    NormalizationLimitError,
    ParseError,
    RecoveryError,
    ReproError,
    ReproTypeError,
    ReproValueError,
    SchemaError,
    ServeError,
    StorageError,
)
from repro.fuzz import (
    Case,
    CaseResult,
    generate_case,
    load_case,
    run_case,
    shrink_case,
)
from repro.obs import (
    MetricsRegistry,
    Span,
    TraceRecorder,
    metrics,
    render_flamegraph,
    tracing,
)
from repro.perf.kernel import kernel_backend
from repro.plan import (
    Engine,
    ExecutionContext,
    NativeEngine,
    PassReport,
    PlanNode,
    PlanReport,
    engines,
    get_engine,
    register_engine,
)
from repro.query import (
    Database,
    Evaluator,
    QueryTrace,
    explain_analyze,
    parse_query,
)
from repro.query.catalog import Snapshot
from repro.query.explain import plan_report as _plan_report
from repro.serve import Client, ReproServer, SyncClient
from repro.storage import (
    FaultInjector,
    InjectedCrash,
    StorageEngine,
    crash_at,
)


def plan(db: Database, query, *, engine=None, optimize=None) -> PlanReport:
    """Statically plan a query: lowering, rewrites, no execution.

    Returns a frozen :class:`PlanReport` — the lowered (naive) plan,
    the plan that would run, and the per-pass rewrite deltas when
    optimization resolves on (``optimize=True`` or ``REPRO_OPTIMIZE``).
    """
    return _plan_report(db, query, engine=engine, optimize=optimize)


def explain(db: Database, query, *, engine=None, optimize=None) -> PlanReport:
    """Plan *and run* a query, annotating every plan node with its size.

    Like :func:`plan` but the plan is executed, so the returned
    :class:`PlanReport` carries observed output tuple counts per node.
    (The legacy span-projected tree is still available from
    :meth:`Database.explain` with optimization off.)
    """
    return _plan_report(
        db, query, engine=engine, optimize=optimize, execute=True
    )


__all__ = [
    # data model
    "GeneralizedRelation",
    "GeneralizedTuple",
    "LRP",
    "Schema",
    "relation",
    # queries
    "Database",
    "Evaluator",
    "QueryTrace",
    "explain_analyze",
    "parse_query",
    # planning
    "Engine",
    "ExecutionContext",
    "NativeEngine",
    "PassReport",
    "PlanNode",
    "PlanReport",
    "engines",
    "explain",
    "get_engine",
    "plan",
    "register_engine",
    # durable storage
    "FaultInjector",
    "InjectedCrash",
    "StorageEngine",
    "crash_at",
    # serving (MVCC snapshots, group commit)
    "Client",
    "ReproServer",
    "Snapshot",
    "SyncClient",
    # deduction (Datalog programs, materialized views)
    "Program",
    "Rule",
    # differential fuzzing
    "Case",
    "CaseResult",
    "generate_case",
    "load_case",
    "run_case",
    "shrink_case",
    # observability
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
    "kernel_backend",
    "metrics",
    "render_flamegraph",
    "tracing",
    # errors
    "ConstraintError",
    "DomainError",
    "EvaluationError",
    "NormalizationLimitError",
    "ParseError",
    "RecoveryError",
    "ReproError",
    "ReproTypeError",
    "ReproValueError",
    "SchemaError",
    "ServeError",
    "StorageError",
]
