"""Generalized tuples with *general* constraints (Section 2.1).

The paper's general constraints are arbitrary linear (in)equalities
between at most two temporal attributes — coefficients need not be 1.
They are what Theorem 2.2 needs to capture binary Presburger predicates
(``k1*v1 = k2*v2 + c`` is not a restricted constraint unless
``k1 = k2 = 1``).

The paper runs its algebra only on restricted constraints; accordingly,
this module implements just the closure properties the expressiveness
construction uses — intersection, union (as a relation-level merge) and
membership — plus window enumeration for the differential tests, and a
conversion to restricted form when the coefficients permit.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.core.constraints import Op, VarConstAtom, VarVarAtom
from repro.core.constraints import Atom as RestrictedAtom
from repro.core.errors import ConstraintError, ReproValueError
from repro.core.lrp import LRP


@dataclass(frozen=True)
class GeneralAtom:
    """A normalized general constraint: ``sum(coeff_i * X_i) <= const``.

    ``coeffs`` maps attribute positions to non-zero integer coefficients
    (at most two entries, per the paper's definition).
    """

    coeffs: tuple[tuple[int, int], ...]
    const: int

    def __post_init__(self) -> None:
        if len(self.coeffs) > 2:
            raise ConstraintError(
                "general constraints relate at most two attributes"
            )
        if any(k == 0 for _, k in self.coeffs):
            raise ConstraintError("zero coefficients must be dropped")

    def satisfied_by(self, point: Sequence[int]) -> bool:
        """Evaluate the constraint on a concrete temporal point."""
        return sum(k * point[i] for i, k in self.coeffs) <= self.const

    def __str__(self) -> str:
        lhs = " + ".join(f"{k}*X{i + 1}" for i, k in self.coeffs) or "0"
        return f"{lhs} <= {self.const}"


def general_atoms(
    coeffs: dict[int, int], rel: str, const: int
) -> list[GeneralAtom]:
    """Normalize ``sum(c_i X_i) rel const`` into ``<=`` atoms.

    Equalities become two inequalities; strict comparisons tighten by 1
    (integer semantics); ``>``/``>=`` negate the coefficients.
    """
    items = tuple(sorted((i, k) for i, k in coeffs.items() if k != 0))
    negated = tuple((i, -k) for i, k in items)
    if rel == "<=":
        return [GeneralAtom(items, const)]
    if rel == "<":
        return [GeneralAtom(items, const - 1)]
    if rel == ">=":
        return [GeneralAtom(negated, -const)]
    if rel == ">":
        return [GeneralAtom(negated, -const - 1)]
    if rel == "=":
        return [GeneralAtom(items, const), GeneralAtom(negated, -const)]
    raise ConstraintError(f"unknown relation {rel!r}")


@dataclass(frozen=True)
class GeneralTuple:
    """lrps plus a conjunction of general constraints."""

    lrps: tuple[LRP, ...]
    atoms: tuple[GeneralAtom, ...] = ()

    @property
    def arity(self) -> int:
        return len(self.lrps)

    def contains(self, point: Sequence[int]) -> bool:
        """Membership of a concrete point."""
        if len(point) != len(self.lrps):
            raise ReproValueError("arity mismatch")
        return all(
            lrp.contains(x) for lrp, x in zip(self.lrps, point)
        ) and all(atom.satisfied_by(point) for atom in self.atoms)

    def intersect(self, other: GeneralTuple) -> GeneralTuple | None:
        """Componentwise lrp intersection, constraint union."""
        if self.arity != other.arity:
            raise ReproValueError("arity mismatch")
        merged: list[LRP] = []
        for a, b in zip(self.lrps, other.lrps):
            meet = a.intersect(b)
            if meet is None:
                return None
            merged.append(meet)
        return GeneralTuple(tuple(merged), self.atoms + other.atoms)

    def enumerate(self, low: int, high: int) -> Iterator[tuple[int, ...]]:
        """Concrete points in the window (brute force with lrp pruning)."""
        axes = [list(lrp.enumerate(low, high)) for lrp in self.lrps]
        for point in itertools.product(*axes):
            if all(atom.satisfied_by(point) for atom in self.atoms):
                yield point

    def to_restricted_atoms(
        self, attribute_order: Sequence[str]
    ) -> list[RestrictedAtom]:
        """Convert to restricted atoms when every coefficient is ±1.

        Raises :class:`ConstraintError` otherwise (the constraint is
        genuinely general and has no restricted equivalent per tuple).
        """
        out: list[RestrictedAtom] = []
        for atom in self.atoms:
            coeffs = dict(atom.coeffs)
            if any(abs(k) != 1 for k in coeffs.values()):
                raise ConstraintError(
                    f"{atom} has non-unit coefficients; not restricted"
                )
            if len(coeffs) == 0:
                if 0 > atom.const:
                    raise ConstraintError("unsatisfiable constant constraint")
                continue
            if len(coeffs) == 1:
                ((i, k),) = coeffs.items()
                name = attribute_order[i]
                if k == 1:
                    out.append(VarConstAtom(name, Op.LE, atom.const))
                else:
                    out.append(VarConstAtom(name, Op.GE, -atom.const))
            else:
                (i, ki), (j, kj) = sorted(coeffs.items())
                if ki == kj:
                    raise ConstraintError(
                        f"{atom} is not a difference constraint"
                    )
                if ki == 1:  # X_i - X_j <= c
                    out.append(
                        VarVarAtom(
                            attribute_order[i],
                            Op.LE,
                            attribute_order[j],
                            atom.const,
                        )
                    )
                else:  # -X_i + X_j <= c, i.e. X_j <= X_i + c
                    out.append(
                        VarVarAtom(
                            attribute_order[j],
                            Op.LE,
                            attribute_order[i],
                            atom.const,
                        )
                    )
        return out

    def __str__(self) -> str:
        lrp_part = "[" + ", ".join(str(lrp) for lrp in self.lrps) + "]"
        if not self.atoms:
            return lrp_part
        return lrp_part + " : " + " & ".join(str(a) for a in self.atoms)


class GeneralRelation:
    """A finite union of general tuples of one arity."""

    __slots__ = ("arity", "tuples")

    def __init__(self, arity: int, tuples: Sequence[GeneralTuple] = ()) -> None:
        self.arity = arity
        self.tuples: list[GeneralTuple] = []
        for t in tuples:
            self.add(t)

    def add(self, gtuple: GeneralTuple) -> None:
        """Insert one tuple (arity-checked)."""
        if gtuple.arity != self.arity:
            raise ReproValueError(
                f"tuple arity {gtuple.arity} != relation arity {self.arity}"
            )
        self.tuples.append(gtuple)

    def contains(self, point: Sequence[int]) -> bool:
        """Membership of a concrete point."""
        return any(t.contains(point) for t in self.tuples)

    def enumerate(self, low: int, high: int) -> Iterator[tuple[int, ...]]:
        """Deduplicated concrete points in the window."""
        seen: set[tuple[int, ...]] = set()
        for t in self.tuples:
            for point in t.enumerate(low, high):
                if point not in seen:
                    seen.add(point)
                    yield point

    def snapshot(self, low: int, high: int) -> set[tuple[int, ...]]:
        """The denoted point set restricted to the window."""
        return set(self.enumerate(low, high))

    def union(self, other: GeneralRelation) -> GeneralRelation:
        """Relation-level union (merge)."""
        if self.arity != other.arity:
            raise ReproValueError("arity mismatch")
        return GeneralRelation(self.arity, self.tuples + other.tuples)

    def intersect(self, other: GeneralRelation) -> GeneralRelation:
        """Pairwise tuple intersection."""
        if self.arity != other.arity:
            raise ReproValueError("arity mismatch")
        out = GeneralRelation(self.arity)
        for t1 in self.tuples:
            for t2 in other.tuples:
                meet = t1.intersect(t2)
                if meet is not None:
                    out.add(meet)
        return out

    def __len__(self) -> int:
        return len(self.tuples)

    def __str__(self) -> str:
        return "\n".join(str(t) for t in self.tuples) or "(empty)"
