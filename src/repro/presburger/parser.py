"""A small concrete syntax for quantifier-free Presburger formulas.

Grammar (whitespace-insensitive)::

    formula  :=  disjunct ('|' disjunct)*
    disjunct :=  factor ('&' factor)*
    factor   :=  '~' factor  |  '(' formula ')'  |  atom
    atom     :=  linear REL linear [ 'mod' INT ]
    REL      :=  '=' | '<' | '>' | '<=' | '>='
    linear   :=  ['-'] term (('+' | '-') term)*
    term     :=  INT [ '*' ] VAR  |  VAR  |  INT

Examples::

    3v = 5
    2x = 3 mod 7            (2x ≡ 3 (mod 7))
    3x < 2y + 5 & ~(x = y mod 2)
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ParseError
from repro.presburger.ast import (
    Formula,
    Rel,
    comparison,
    congruence,
    conj,
    disj,
    neg,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|=|<|>|\||&|~|\(|\)|\+|-|\*))"
)

_MOD_WORDS = {"mod"}


@dataclass
class _Token:
    kind: str  # "int" | "name" | "op" | "mod"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        pos = match.end()
        if match.group("int") is not None:
            tokens.append(_Token("int", match.group("int"), match.start()))
        elif match.group("name") is not None:
            name = match.group("name")
            kind = "mod" if name in _MOD_WORDS else "name"
            tokens.append(_Token(kind, name, match.start()))
        else:
            tokens.append(_Token("op", match.group("op"), match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula", len(self.text))
        self.index += 1
        return token

    def expect_op(self, op: str) -> None:
        token = self.next()
        if token.kind != "op" or token.text != op:
            raise ParseError(f"expected {op!r}, got {token.text!r}", token.position)

    # formula := disjunct ('|' disjunct)*
    def formula(self) -> Formula:
        parts = [self.disjunct()]
        while (t := self.peek()) is not None and t.kind == "op" and t.text == "|":
            self.next()
            parts.append(self.disjunct())
        return disj(*parts)

    def disjunct(self) -> Formula:
        parts = [self.factor()]
        while (t := self.peek()) is not None and t.kind == "op" and t.text == "&":
            self.next()
            parts.append(self.factor())
        return conj(*parts)

    def factor(self) -> Formula:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula", len(self.text))
        if token.kind == "op" and token.text == "~":
            self.next()
            return neg(self.factor())
        if token.kind == "op" and token.text == "(":
            self.next()
            inner = self.formula()
            self.expect_op(")")
            return inner
        return self.atom()

    def atom(self) -> Formula:
        left_coeffs, left_const = self.linear()
        token = self.next()
        if token.kind != "op" or token.text not in {"=", "<", ">", "<=", ">="}:
            raise ParseError(
                f"expected a comparison, got {token.text!r}", token.position
            )
        rel = Rel(token.text)
        right_coeffs, right_const = self.linear()
        coeffs: dict[str, int] = dict(left_coeffs)
        for v, k in right_coeffs.items():
            coeffs[v] = coeffs.get(v, 0) - k
        const = right_const - left_const
        peeked = self.peek()
        if peeked is not None and peeked.kind == "mod":
            self.next()
            mod_token = self.next()
            if mod_token.kind != "int":
                raise ParseError(
                    "expected an integer modulus", mod_token.position
                )
            if rel is not Rel.EQ:
                raise ParseError(
                    "congruences use '='", mod_token.position
                )
            return congruence(coeffs, const, int(mod_token.text))
        return comparison(coeffs, rel, const)

    # linear := ['-'] term (('+'|'-') term)*
    def linear(self) -> tuple[dict[str, int], int]:
        coeffs: dict[str, int] = {}
        const = 0
        sign = 1
        token = self.peek()
        if token is not None and token.kind == "op" and token.text == "-":
            self.next()
            sign = -1
        while True:
            coeff, name = self.term()
            if name is None:
                const += sign * coeff
            else:
                coeffs[name] = coeffs.get(name, 0) + sign * coeff
            token = self.peek()
            if token is not None and token.kind == "op" and token.text in "+-":
                sign = 1 if token.text == "+" else -1
                self.next()
                continue
            return coeffs, const

    def term(self) -> tuple[int, str | None]:
        token = self.next()
        if token.kind == "int":
            value = int(token.text)
            nxt = self.peek()
            if nxt is not None and nxt.kind == "op" and nxt.text == "*":
                self.next()
                nxt = self.peek()
            if nxt is not None and nxt.kind == "name":
                self.next()
                return value, nxt.text
            return value, None
        if token.kind == "name":
            return 1, token.text
        raise ParseError(f"unexpected token {token.text!r}", token.position)


def parse_formula(text: str) -> Formula:
    """Parse a quantifier-free Presburger formula."""
    parser = _Parser(text)
    result = parser.formula()
    leftover = parser.peek()
    if leftover is not None:
        raise ParseError(
            f"trailing input starting at {leftover.text!r}", leftover.position
        )
    return result
