"""Compiling Presburger formulas to generalized relations.

Implements the constructive directions of the paper's expressiveness
theorems:

* **Theorem 2.1** — every unary Presburger predicate is *weak lrp
  definable*: :func:`compile_unary` produces a standard
  :class:`~repro.core.relations.GeneralizedRelation` with restricted
  constraints, combining basic-formula translations with the algebra's
  closure under union, intersection and complement.
* **Theorem 2.2** — every binary Presburger predicate is *lrp definable*
  with general constraints: :func:`compile_binary` produces a
  :class:`~repro.presburger.general.GeneralRelation`.  Comparisons map
  to general constraints directly; congruences decompose into pure
  lattice classes (unions of lrp pairs with no constraints at all),
  following the proof's residue-by-residue construction.

The reverse directions (lrp definable ⇒ Presburger definable) are
witnessed by :func:`relation_to_formula`, which translates a unary
generalized relation back into a Presburger formula.
"""

from __future__ import annotations

from repro.arith import solve_linear_congruence
from repro.core import algebra
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.presburger.ast import (
    And,
    Comparison,
    Congruence,
    Formula,
    Not,
    Or,
    Rel,
    comparison,
    congruence,
    disj,
    to_dnf,
)
from repro.core.errors import ReproTypeError, ReproValueError
from repro.presburger.general import (
    GeneralRelation,
    GeneralTuple,
    general_atoms,
)

_UNARY_SCHEMA = Schema.make(temporal=["v"])


def _ceil_div(a: int, b: int) -> int:
    """Ceiling division for ``b > 0``."""
    return -((-a) // b)


def _unary_relation_for(lrp: LRP | None, atoms: str = "") -> GeneralizedRelation:
    out = GeneralizedRelation.empty(_UNARY_SCHEMA)
    if lrp is not None:
        out.add_tuple([lrp], atoms)
    return out


def compile_unary_comparison(k1: int, rel: Rel, c: int) -> GeneralizedRelation:
    """Compile the basic formula ``k1 * v  rel  c`` (Theorem 2.1, cases 1-3).

    Handles every comparison operator and every sign of ``k1``; the
    paper spells out the positive-coefficient cases.
    """
    if k1 == 0:
        holds = rel.holds(0, c)
        return (
            GeneralizedRelation.universe(_UNARY_SCHEMA)
            if holds
            else GeneralizedRelation.empty(_UNARY_SCHEMA)
        )
    if rel is Rel.EQ:
        if c % k1 == 0:
            return _unary_relation_for(LRP.point(c // k1))
        return GeneralizedRelation.empty(_UNARY_SCHEMA)
    # Reduce strict forms to non-strict integer forms.
    if rel is Rel.LT:
        return compile_unary_comparison(k1, Rel.LE, c - 1)
    if rel is Rel.GT:
        return compile_unary_comparison(k1, Rel.GE, c + 1)
    if rel is Rel.LE:
        if k1 > 0:
            return _unary_relation_for(LRP.make(0, 1), f"v <= {c // k1}")
        # k1 < 0: dividing flips the comparison; v >= ceil(c / k1).
        return _unary_relation_for(
            LRP.make(0, 1), f"v >= {_ceil_div(-c, -k1)}"
        )
    # rel is Rel.GE: k1*v >= c  <=>  -k1*v <= -c
    return compile_unary_comparison(-k1, Rel.LE, -c)


def compile_unary_congruence(k1: int, c: int, k2: int) -> GeneralizedRelation:
    """Compile ``k1 * v ≡ c (mod k2)`` (Theorem 2.1, case 4).

    The paper rewrites the congruence as an lrp intersection; solving
    the linear congruence directly is the same computation (both reduce
    to the extended Euclidean algorithm).
    """
    if k2 <= 0:
        raise ReproValueError("congruence modulus must be positive")
    if k1 % k2 == 0:
        # Constraint degenerates to c ≡ 0 (mod k2).
        if c % k2 == 0:
            return GeneralizedRelation.universe(_UNARY_SCHEMA)
        return GeneralizedRelation.empty(_UNARY_SCHEMA)
    sol = solve_linear_congruence(k1, c, k2)
    if sol is None:
        return GeneralizedRelation.empty(_UNARY_SCHEMA)
    return _unary_relation_for(LRP.make(sol.residue, sol.modulus))


def compile_unary(formula: Formula, variable: str | None = None) -> GeneralizedRelation:
    """Compile a one-variable Presburger formula to a generalized relation.

    Walks the boolean structure, using the algebra's closure under
    union, intersection and complement — exactly the strategy of the
    paper's Theorem 2.1 proof.  The result has schema ``(v:T)``.
    """
    variables = formula.variables()
    if variable is None:
        if len(variables) > 1:
            raise ReproValueError(f"formula has several variables: {variables}")
        variable = next(iter(variables), "v")
    elif not variables <= {variable}:
        raise ReproValueError(
            f"formula mentions {variables - {variable}} besides {variable!r}"
        )
    return _compile_unary_walk(formula, variable)


def _coefficient(atom: Comparison | Congruence, variable: str) -> int:
    coeffs = dict(atom.coeffs)
    return coeffs.get(variable, 0)


def _compile_unary_walk(formula: Formula, v: str) -> GeneralizedRelation:
    if isinstance(formula, Comparison):
        return compile_unary_comparison(
            _coefficient(formula, v), formula.rel, formula.const
        )
    if isinstance(formula, Congruence):
        return compile_unary_congruence(
            _coefficient(formula, v), formula.const, formula.modulus
        )
    if isinstance(formula, And):
        out = GeneralizedRelation.universe(_UNARY_SCHEMA)
        for part in formula.parts:
            out = algebra.intersect(out, _compile_unary_walk(part, v))
        return out
    if isinstance(formula, Or):
        out = GeneralizedRelation.empty(_UNARY_SCHEMA)
        for part in formula.parts:
            out = algebra.union(out, _compile_unary_walk(part, v))
        return out
    if isinstance(formula, Not):
        return algebra.complement(_compile_unary_walk(formula.body, v))
    raise ReproTypeError(f"unexpected formula node: {formula!r}")


# ----------------------------------------------------------------------
# binary compilation (Theorem 2.2)
# ----------------------------------------------------------------------


def congruence_classes(
    a1: int, a2: int, c: int, m: int
) -> list[tuple[LRP, LRP]]:
    """Lattice classes of ``a1*x + a2*y ≡ c (mod m)``.

    Follows the Theorem 2.2 proof: for each residue ``r`` of ``y``
    modulo ``m``, solve ``a1*x ≡ c - a2*r (mod m)``; every solvable
    residue yields a pure lrp pair.  Unary cases (one zero coefficient)
    collapse to a single free axis.
    """
    if m <= 0:
        raise ReproValueError("modulus must be positive")
    free = LRP.make(0, 1)
    if a1 % m == 0 and a2 % m == 0:
        return [(free, free)] if c % m == 0 else []
    if a2 % m == 0:
        sol = solve_linear_congruence(a1, c, m)
        if sol is None:
            return []
        return [(LRP.make(sol.residue, sol.modulus), free)]
    if a1 % m == 0:
        sol = solve_linear_congruence(a2, c, m)
        if sol is None:
            return []
        return [(free, LRP.make(sol.residue, sol.modulus))]
    out: list[tuple[LRP, LRP]] = []
    for r in range(m):
        sol = solve_linear_congruence(a1, c - a2 * r, m)
        if sol is not None:
            out.append(
                (LRP.make(sol.residue, sol.modulus), LRP.make(r, m))
            )
    return out


def compile_binary(
    formula: Formula, variables: tuple[str, str] | None = None
) -> GeneralRelation:
    """Compile a two-variable Presburger formula to a general relation.

    The formula is put in negation normal form (negations of atoms stay
    atoms over Z), expanded to DNF, and each conjunct becomes a set of
    general tuples: comparisons contribute general constraints,
    congruences contribute lattice-class branches.
    """
    found = sorted(formula.variables())
    if variables is None:
        if len(found) > 2:
            raise ReproValueError(f"formula has more than two variables: {found}")
        while len(found) < 2:
            found.append(f"_v{len(found)}")
        variables = (found[0], found[1])
    elif not set(found) <= set(variables):
        raise ReproValueError(
            f"formula mentions {set(found) - set(variables)} besides "
            f"{variables}"
        )
    v1, v2 = variables
    position = {v1: 0, v2: 1}
    out = GeneralRelation(2)
    free = LRP.make(0, 1)
    for conjunct in to_dnf(formula):
        branches = [GeneralTuple((free, free))]
        feasible = True
        for atom in conjunct:
            coeffs = {position[v]: k for v, k in atom.coeffs}
            if isinstance(atom, Comparison):
                atoms = general_atoms(coeffs, atom.rel.value, atom.const)
                extra = GeneralTuple((free, free), tuple(atoms))
                branches = [
                    merged
                    for t in branches
                    if (merged := t.intersect(extra)) is not None
                ]
            else:
                classes = congruence_classes(
                    coeffs.get(0, 0), coeffs.get(1, 0), atom.const, atom.modulus
                )
                next_branches: list[GeneralTuple] = []
                for t in branches:
                    for x_lrp, y_lrp in classes:
                        merged = t.intersect(GeneralTuple((x_lrp, y_lrp)))
                        if merged is not None:
                            next_branches.append(merged)
                branches = next_branches
            if not branches:
                feasible = False
                break
        if feasible:
            for t in branches:
                out.add(t)
    return out


def binary_to_restricted(
    grel: GeneralRelation, names: tuple[str, str] = ("v1", "v2")
) -> GeneralizedRelation:
    """Convert a binary general relation to a restricted one if possible.

    Succeeds exactly when every constraint is (equivalent to) a
    difference constraint; raises
    :class:`~repro.core.errors.ConstraintError` otherwise.
    """
    schema = Schema.make(temporal=list(names))
    out = GeneralizedRelation.empty(schema)
    for t in grel.tuples:
        atoms = t.to_restricted_atoms(names)
        out.add_tuple(list(t.lrps), atoms)
    return out


# ----------------------------------------------------------------------
# reverse direction: relations back to formulas
# ----------------------------------------------------------------------


def relation_to_formula(
    relation: GeneralizedRelation, variable: str = "v"
) -> Formula:
    """Translate a unary generalized relation into a Presburger formula.

    This witnesses the easy direction of Theorem 2.1 (weak lrp definable
    ⇒ Presburger definable): each tuple ``[c + k*n] ∧ constraints``
    becomes ``v ≡ c (mod k) ∧ bounds``; the relation is the disjunction.
    An empty relation maps to the canonical false ``0 < 0``.
    """
    if relation.schema.temporal_arity != 1 or relation.schema.data_arity != 0:
        raise ReproValueError("relation_to_formula expects a unary temporal schema")
    parts: list[Formula] = []
    for gtuple in relation:
        lrp = gtuple.lrps[0]
        conj_parts: list[Formula] = []
        if lrp.period == 0:
            conj_parts.append(comparison({variable: 1}, Rel.EQ, lrp.offset))
        elif lrp.period > 1:
            conj_parts.append(
                congruence({variable: 1}, lrp.offset, lrp.period)
            )
        upper = gtuple.dbm.upper(0)
        lower = gtuple.dbm.lower(0)
        if upper is not None:
            conj_parts.append(comparison({variable: 1}, Rel.LE, upper))
        if lower is not None:
            conj_parts.append(comparison({variable: 1}, Rel.GE, lower))
        if not conj_parts:
            # Unconstrained full-Z tuple: a canonical tautology.
            parts.append(
                disj(
                    comparison({variable: 1}, Rel.LE, 0),
                    comparison({variable: 1}, Rel.GT, 0),
                )
            )
            continue
        parts.append(
            conj_parts[0] if len(conj_parts) == 1 else And(tuple(conj_parts))
        )
    if not parts:
        return comparison({}, Rel.LT, 0)  # 0 < 0: false
    return disj(*parts)
