"""Direct evaluation of Presburger formulas over finite windows.

This is the reference semantics the compiler is differentially tested
against: a formula's solution set restricted to a window is computed by
plain enumeration and compared with the compiled relation's snapshot.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence

from repro.presburger.ast import Formula


def evaluate(formula: Formula, env: Mapping[str, int]) -> bool:
    """Evaluate a formula under a variable assignment."""
    return formula.evaluate(env)


def solutions(
    formula: Formula,
    variables: Sequence[str],
    low: int,
    high: int,
) -> set[tuple[int, ...]]:
    """All satisfying assignments with every variable in ``[low, high]``.

    Variables not mentioned in the formula still contribute axes, so the
    result is directly comparable with a relation snapshot over the same
    variable order.
    """
    out: set[tuple[int, ...]] = set()
    axes = [range(low, high + 1)] * len(variables)
    for values in itertools.product(*axes):
        env = dict(zip(variables, values))
        if formula.evaluate(env):
            out.add(values)
    return out
