"""Abstract syntax for (quantifier-free) Presburger formulas.

The paper's expressiveness results (Theorems 2.1 and 2.2) compare
generalized relations against boolean combinations of the *basic
Presburger formulas*::

    k1*v ⋈ c                 k1*v ≡ c (mod k2)          (unary)
    k1*v1 ⋈ k2*v2 + c        k1*v1 ≡ k2*v2 + c (mod k3) (binary)

with ⋈ one of =, <, >.  By Presburger's quantifier elimination, boolean
combinations of these capture exactly the unary/binary Presburger-
definable predicates, so a quantifier-free AST suffices for the
reproduction.  We normalize every atom to the homogeneous form
``sum(coeff_i * v_i) ⋈ c`` or ``sum(coeff_i * v_i) ≡ c (mod m)``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from enum import Enum
from repro.core.errors import ReproTypeError, ReproValueError


class Rel(Enum):
    """Comparison relations in Presburger atoms."""

    EQ = "="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="

    def holds(self, left: int, right: int) -> bool:
        """Evaluate the comparison on concrete integers."""
        return {
            Rel.EQ: left == right,
            Rel.LT: left < right,
            Rel.GT: left > right,
            Rel.LE: left <= right,
            Rel.GE: left >= right,
        }[self]


@dataclass(frozen=True)
class Comparison:
    """``sum(coeffs[v] * v) rel const``."""

    coeffs: tuple[tuple[str, int], ...]
    rel: Rel
    const: int

    def variables(self) -> set[str]:
        return {v for v, _ in self.coeffs}

    def evaluate(self, env: Mapping[str, int]) -> bool:
        total = sum(k * env[v] for v, k in self.coeffs)
        return self.rel.holds(total, self.const)

    def __str__(self) -> str:
        lhs = " + ".join(f"{k}*{v}" for v, k in self.coeffs) or "0"
        return f"{lhs} {self.rel.value} {self.const}"


@dataclass(frozen=True)
class Congruence:
    """``sum(coeffs[v] * v) ≡ const (mod modulus)`` with ``modulus > 0``."""

    coeffs: tuple[tuple[str, int], ...]
    const: int
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus <= 0:
            raise ReproValueError("congruence modulus must be positive")

    def variables(self) -> set[str]:
        return {v for v, _ in self.coeffs}

    def evaluate(self, env: Mapping[str, int]) -> bool:
        total = sum(k * env[v] for v, k in self.coeffs)
        return (total - self.const) % self.modulus == 0

    def __str__(self) -> str:
        lhs = " + ".join(f"{k}*{v}" for v, k in self.coeffs) or "0"
        return f"{lhs} = {self.const} (mod {self.modulus})"


@dataclass(frozen=True)
class Not:
    """Logical negation."""

    body: Formula

    def variables(self) -> set[str]:
        return self.body.variables()

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return not self.body.evaluate(env)

    def __str__(self) -> str:
        return f"~({self.body})"


@dataclass(frozen=True)
class And:
    """Logical conjunction."""

    parts: tuple[Formula, ...]

    def variables(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.variables()
        return out

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return all(part.evaluate(env) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " & ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    """Logical disjunction."""

    parts: tuple[Formula, ...]

    def variables(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.variables()
        return out

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return any(part.evaluate(env) for part in self.parts)

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


Formula = Comparison | Congruence | Not | And | Or


def comparison(coeffs: Mapping[str, int], rel: Rel | str, const: int) -> Comparison:
    """Build a comparison atom from a coefficient mapping."""
    rel = Rel(rel) if isinstance(rel, str) else rel
    items = tuple(sorted((v, k) for v, k in coeffs.items() if k != 0))
    return Comparison(coeffs=items, rel=rel, const=const)


def congruence(coeffs: Mapping[str, int], const: int, modulus: int) -> Congruence:
    """Build a congruence atom from a coefficient mapping."""
    items = tuple(sorted((v, k) for v, k in coeffs.items() if k != 0))
    return Congruence(coeffs=items, const=const, modulus=modulus)


def conj(*parts: Formula) -> Formula:
    """N-ary conjunction (flattening the trivial cases)."""
    if len(parts) == 1:
        return parts[0]
    return And(parts=tuple(parts))


def disj(*parts: Formula) -> Formula:
    """N-ary disjunction (flattening the trivial cases)."""
    if len(parts) == 1:
        return parts[0]
    return Or(parts=tuple(parts))


def neg(part: Formula) -> Formula:
    """Negation, collapsing double negations."""
    if isinstance(part, Not):
        return part.body
    return Not(body=part)


def to_nnf(formula: Formula) -> Formula:
    """Push negations down to atoms (negation normal form).

    Negated comparisons flip into comparisons (``¬(e = c)`` becomes
    ``e < c ∨ e > c``); negated congruences expand into the disjunction
    of the other residues, which keeps the result negation-free — the
    property the binary compiler relies on.
    """
    if isinstance(formula, (Comparison, Congruence)):
        return formula
    if isinstance(formula, And):
        return And(tuple(to_nnf(p) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(to_nnf(p) for p in formula.parts))
    body = formula.body
    if isinstance(body, Not):
        return to_nnf(body.body)
    if isinstance(body, And):
        return Or(tuple(to_nnf(Not(p)) for p in body.parts))
    if isinstance(body, Or):
        return And(tuple(to_nnf(Not(p)) for p in body.parts))
    if isinstance(body, Comparison):
        flipped = {
            Rel.EQ: [Rel.LT, Rel.GT],
            Rel.LT: [Rel.GE],
            Rel.GT: [Rel.LE],
            Rel.LE: [Rel.GT],
            Rel.GE: [Rel.LT],
        }[body.rel]
        parts = tuple(
            Comparison(body.coeffs, r, body.const) for r in flipped
        )
        return parts[0] if len(parts) == 1 else Or(parts)
    if isinstance(body, Congruence):
        others = tuple(
            Congruence(body.coeffs, c, body.modulus)
            for c in range(body.modulus)
            if (c - body.const) % body.modulus != 0
        )
        if not others:  # modulus 1: congruence is trivially true
            return Comparison((), Rel.LT, 0)  # 0 < 0: canonical "false"
        return others[0] if len(others) == 1 else Or(others)
    raise ReproTypeError(f"unexpected formula node: {body!r}")


def to_dnf(formula: Formula) -> list[list[Comparison | Congruence]]:
    """Disjunctive normal form of an NNF formula, as atom lists."""
    formula = to_nnf(formula)

    def walk(node: Formula) -> list[list[Comparison | Congruence]]:
        if isinstance(node, (Comparison, Congruence)):
            return [[node]]
        if isinstance(node, Or):
            out: list[list[Comparison | Congruence]] = []
            for part in node.parts:
                out.extend(walk(part))
            return out
        if isinstance(node, And):
            acc: list[list[Comparison | Congruence]] = [[]]
            for part in node.parts:
                branches = walk(part)
                acc = [
                    existing + branch
                    for existing in acc
                    for branch in branches
                ]
            return acc
        raise ReproTypeError(f"negation survived NNF: {node!r}")

    return walk(formula)
