"""Presburger arithmetic: AST, parsing, evaluation, and compilation.

Backs the paper's expressiveness results (Section 2.2): unary Presburger
predicates compile to restricted generalized relations (Theorem 2.1) and
binary ones to general-constraint relations (Theorem 2.2).
"""

from repro.presburger.ast import (
    And,
    Comparison,
    Congruence,
    Formula,
    Not,
    Or,
    Rel,
    comparison,
    congruence,
    conj,
    disj,
    neg,
    to_dnf,
    to_nnf,
)
from repro.presburger.compile import (
    binary_to_restricted,
    compile_binary,
    compile_unary,
    compile_unary_comparison,
    compile_unary_congruence,
    congruence_classes,
    relation_to_formula,
)
from repro.presburger.general import (
    GeneralAtom,
    GeneralRelation,
    GeneralTuple,
    general_atoms,
)
from repro.presburger.parser import parse_formula
from repro.presburger.window_eval import evaluate, solutions

__all__ = [
    "And",
    "Comparison",
    "Congruence",
    "Formula",
    "GeneralAtom",
    "GeneralRelation",
    "GeneralTuple",
    "Not",
    "Or",
    "Rel",
    "binary_to_restricted",
    "comparison",
    "compile_binary",
    "compile_unary",
    "compile_unary_comparison",
    "compile_unary_congruence",
    "congruence",
    "congruence_classes",
    "conj",
    "disj",
    "evaluate",
    "general_atoms",
    "neg",
    "parse_formula",
    "relation_to_formula",
    "solutions",
    "to_dnf",
    "to_nnf",
]
