"""Hypothesis strategies for property-testing code built on this library.

Downstream users writing property tests against generalized relations
need the same generators this project's own suite uses.  Import
requires `hypothesis <https://hypothesis.readthedocs.io>`_ (an optional
dependency, listed under the ``test`` extra).

    from hypothesis import given
    from repro.testing import generalized_relations

    @given(generalized_relations(temporal_arity=2))
    def test_my_invariant(rel):
        ...

All strategies produce *small* structures by default (periods <= 6,
constants within ±8): the intent is exhaustive window checking, where
value magnitude adds nothing but runtime.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.periodic import PeriodicSet


@st.composite
def lrps(
    draw,
    max_period: int = 6,
    max_offset: int = 8,
    allow_singletons: bool = True,
) -> LRP:
    """Strategy for canonical linear repeating points."""
    min_period = 0 if allow_singletons else 1
    period = draw(st.integers(min_period, max_period))
    offset = draw(st.integers(-max_offset, max_offset))
    return LRP.make(offset, period)


@st.composite
def dbms(
    draw,
    arity: int,
    max_constraints: int = 4,
    max_bound: int = 8,
) -> DBM:
    """Strategy for restricted-constraint systems over ``arity`` variables.

    May produce unsatisfiable systems (callers wanting satisfiable ones
    should filter with ``dbm.copy().close()``).
    """
    dbm = DBM(arity)
    for _ in range(draw(st.integers(0, max_constraints))):
        bound = draw(st.integers(-max_bound, max_bound))
        kind = draw(st.integers(0, 2))
        i = draw(st.integers(0, arity - 1)) if arity else 0
        if arity == 0:
            break
        if kind == 0 and arity >= 2:
            j = draw(st.integers(0, arity - 1))
            if i != j:
                dbm.add_difference(i, j, bound)
                continue
        if kind <= 1:
            dbm.add_upper(i, bound)
        else:
            dbm.add_lower(i, bound)
    return dbm


@st.composite
def generalized_tuples(
    draw,
    temporal_arity: int = 2,
    data_values: tuple = (),
    max_period: int = 6,
) -> GeneralizedTuple:
    """Strategy for generalized tuples of a fixed shape."""
    tuple_lrps = tuple(
        draw(lrps(max_period=max_period)) for _ in range(temporal_arity)
    )
    dbm = draw(dbms(temporal_arity))
    return GeneralizedTuple(lrps=tuple_lrps, dbm=dbm, data=tuple(data_values))


@st.composite
def generalized_relations(
    draw,
    temporal_arity: int = 2,
    data_choices: tuple[tuple, ...] = ((),),
    max_tuples: int = 3,
    max_period: int = 6,
) -> GeneralizedRelation:
    """Strategy for generalized relations.

    ``data_choices`` lists the data-value tuples tuples may carry; the
    default is the purely temporal relation.  The schema names temporal
    attributes ``X1..Xk`` and data attributes ``D1..Dl``.
    """
    data_arity = len(data_choices[0])
    schema = Schema.make(
        temporal=[f"X{i + 1}" for i in range(temporal_arity)],
        data=[f"D{i + 1}" for i in range(data_arity)],
    )
    out = GeneralizedRelation.empty(schema)
    for _ in range(draw(st.integers(0, max_tuples))):
        data = draw(st.sampled_from(data_choices))
        out.add(
            draw(
                generalized_tuples(
                    temporal_arity=temporal_arity,
                    data_values=data,
                    max_period=max_period,
                )
            )
        )
    return out


@st.composite
def periodic_sets(draw, max_period: int = 6) -> PeriodicSet:
    """Strategy for PeriodicSet values (finite, periodic, and mixed)."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return PeriodicSet.points(
            draw(st.lists(st.integers(-10, 10), max_size=4))
        )
    if kind == 1:
        low = draw(st.integers(-10, 10))
        return PeriodicSet.interval(low, low + draw(st.integers(0, 8)))
    base = PeriodicSet.every(
        draw(st.integers(1, max_period)), draw(st.integers(0, max_period))
    )
    if kind == 2:
        return base
    return base & PeriodicSet.at_or_above(draw(st.integers(-8, 8)))
