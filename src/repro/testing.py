"""Generators for property-testing and fuzzing code built on this library.

Two families of generators share one body of drawing logic:

* **Hypothesis strategies** (:func:`lrps`, :func:`dbms`,
  :func:`generalized_tuples`, :func:`generalized_relations`,
  :func:`periodic_sets`) for property tests.  Importing *these* requires
  `hypothesis <https://hypothesis.readthedocs.io>`_ (an optional
  dependency, listed under the ``test`` extra)::

      from hypothesis import given
      from repro.testing import generalized_relations

      @given(generalized_relations(temporal_arity=2))
      def test_my_invariant(rel):
          ...

* **Seeded deterministic counterparts** (:func:`seeded_lrp`,
  :func:`seeded_dbm`, :func:`seeded_tuple`, :func:`seeded_relation`)
  taking a :class:`random.Random`; they draw from the *same*
  distributions (the shared ``_build_*`` helpers are parameterized over
  the integer-drawing primitive), need no third-party packages, and
  replay exactly for a fixed seed.  The differential fuzzing harness
  (:mod:`repro.fuzz`) is built on these.

All generators produce *small* structures by default (periods <= 6,
constants within ±8): the intent is exhaustive window checking, where
value magnitude adds nothing but runtime.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple

try:  # hypothesis is optional: only the strategy wrappers need it
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - exercised only without the test extra
    st = None  # type: ignore[assignment]

#: The drawing primitive both generator families are written against:
#: ``draw_int(low, high)`` returns an integer in ``[low, high]``.
DrawInt = Callable[[int, int], int]


# ----------------------------------------------------------------------
# shared drawing logic
# ----------------------------------------------------------------------


def _build_lrp(
    draw_int: DrawInt,
    max_period: int = 6,
    max_offset: int = 8,
    allow_singletons: bool = True,
) -> LRP:
    min_period = 0 if allow_singletons else 1
    period = draw_int(min_period, max_period)
    offset = draw_int(-max_offset, max_offset)
    return LRP.make(offset, period)


def _build_dbm(
    draw_int: DrawInt,
    arity: int,
    max_constraints: int = 4,
    max_bound: int = 8,
) -> DBM:
    dbm = DBM(arity)
    if arity == 0:
        # Nothing to constrain; spend no draws (a zero-arity system is
        # decided entirely by its empty conjunction).
        return dbm
    for _ in range(draw_int(0, max_constraints)):
        bound = draw_int(-max_bound, max_bound)
        kind = draw_int(0, 2)
        i = draw_int(0, arity - 1)
        if kind == 0 and arity >= 2:
            # Draw a *distinct* second variable directly instead of
            # retrying (or silently falling through to an upper bound,
            # as an earlier revision did): difference constraints must
            # be sampled at their stated rate.
            j = draw_int(0, arity - 2)
            if j >= i:
                j += 1
            dbm.add_difference(i, j, bound)
        elif kind <= 1:
            dbm.add_upper(i, bound)
        else:
            dbm.add_lower(i, bound)
    return dbm


def _build_tuple(
    draw_int: DrawInt,
    temporal_arity: int = 2,
    data_values: tuple = (),
    max_period: int = 6,
) -> GeneralizedTuple:
    tuple_lrps = tuple(
        _build_lrp(draw_int, max_period=max_period)
        for _ in range(temporal_arity)
    )
    dbm = _build_dbm(draw_int, temporal_arity)
    return GeneralizedTuple(lrps=tuple_lrps, dbm=dbm, data=tuple(data_values))


def _build_relation(
    draw_int: DrawInt,
    temporal_arity: int = 2,
    data_choices: tuple[tuple, ...] = ((),),
    max_tuples: int = 3,
    max_period: int = 6,
    schema: Schema | None = None,
) -> GeneralizedRelation:
    data_arity = len(data_choices[0])
    if schema is None:
        schema = Schema.make(
            temporal=[f"X{i + 1}" for i in range(temporal_arity)],
            data=[f"D{i + 1}" for i in range(data_arity)],
        )
    out = GeneralizedRelation.empty(schema)
    for _ in range(draw_int(0, max_tuples)):
        data = data_choices[draw_int(0, len(data_choices) - 1)]
        out.add(
            _build_tuple(
                draw_int,
                temporal_arity=temporal_arity,
                data_values=data,
                max_period=max_period,
            )
        )
    return out


# ----------------------------------------------------------------------
# seeded deterministic generators (no third-party dependencies)
# ----------------------------------------------------------------------


def seeded_lrp(
    rng: random.Random,
    max_period: int = 6,
    max_offset: int = 8,
    allow_singletons: bool = True,
) -> LRP:
    """Deterministic counterpart of the :func:`lrps` strategy."""
    return _build_lrp(
        rng.randint,
        max_period=max_period,
        max_offset=max_offset,
        allow_singletons=allow_singletons,
    )


def seeded_dbm(
    rng: random.Random,
    arity: int,
    max_constraints: int = 4,
    max_bound: int = 8,
) -> DBM:
    """Deterministic counterpart of the :func:`dbms` strategy.

    May produce unsatisfiable systems (callers wanting satisfiable ones
    should filter with ``dbm.copy().close()``).
    """
    return _build_dbm(
        rng.randint, arity, max_constraints=max_constraints, max_bound=max_bound
    )


def seeded_tuple(
    rng: random.Random,
    temporal_arity: int = 2,
    data_values: tuple = (),
    max_period: int = 6,
) -> GeneralizedTuple:
    """Deterministic counterpart of the :func:`generalized_tuples` strategy."""
    return _build_tuple(
        rng.randint,
        temporal_arity=temporal_arity,
        data_values=data_values,
        max_period=max_period,
    )


def seeded_relation(
    rng: random.Random,
    temporal_arity: int = 2,
    data_choices: tuple[tuple, ...] = ((),),
    max_tuples: int = 3,
    max_period: int = 6,
    schema: Schema | None = None,
) -> GeneralizedRelation:
    """Deterministic counterpart of the :func:`generalized_relations` strategy.

    ``schema`` overrides the default ``X1..Xk`` / ``D1..Dl`` naming (its
    arities must match ``temporal_arity`` and ``data_choices``).
    """
    return _build_relation(
        rng.randint,
        temporal_arity=temporal_arity,
        data_choices=data_choices,
        max_tuples=max_tuples,
        max_period=max_period,
        schema=schema,
    )


# ----------------------------------------------------------------------
# hypothesis strategies (thin wrappers over the shared logic)
# ----------------------------------------------------------------------

if st is not None:

    @st.composite
    def lrps(
        draw,
        max_period: int = 6,
        max_offset: int = 8,
        allow_singletons: bool = True,
    ) -> LRP:
        """Strategy for canonical linear repeating points."""
        return _build_lrp(
            lambda lo, hi: draw(st.integers(lo, hi)),
            max_period=max_period,
            max_offset=max_offset,
            allow_singletons=allow_singletons,
        )

    @st.composite
    def dbms(
        draw,
        arity: int,
        max_constraints: int = 4,
        max_bound: int = 8,
    ) -> DBM:
        """Strategy for restricted-constraint systems over ``arity`` variables.

        May produce unsatisfiable systems (callers wanting satisfiable
        ones should filter with ``dbm.copy().close()``).
        """
        return _build_dbm(
            lambda lo, hi: draw(st.integers(lo, hi)),
            arity,
            max_constraints=max_constraints,
            max_bound=max_bound,
        )

    @st.composite
    def generalized_tuples(
        draw,
        temporal_arity: int = 2,
        data_values: tuple = (),
        max_period: int = 6,
    ) -> GeneralizedTuple:
        """Strategy for generalized tuples of a fixed shape."""
        return _build_tuple(
            lambda lo, hi: draw(st.integers(lo, hi)),
            temporal_arity=temporal_arity,
            data_values=data_values,
            max_period=max_period,
        )

    @st.composite
    def generalized_relations(
        draw,
        temporal_arity: int = 2,
        data_choices: tuple[tuple, ...] = ((),),
        max_tuples: int = 3,
        max_period: int = 6,
    ) -> GeneralizedRelation:
        """Strategy for generalized relations.

        ``data_choices`` lists the data-value tuples tuples may carry;
        the default is the purely temporal relation.  The schema names
        temporal attributes ``X1..Xk`` and data attributes ``D1..Dl``.
        """
        return _build_relation(
            lambda lo, hi: draw(st.integers(lo, hi)),
            temporal_arity=temporal_arity,
            data_choices=data_choices,
            max_tuples=max_tuples,
            max_period=max_period,
        )

    @st.composite
    def periodic_sets(draw, max_period: int = 6) -> "PeriodicSet":
        """Strategy for PeriodicSet values (finite, periodic, and mixed)."""
        from repro.periodic import PeriodicSet

        kind = draw(st.integers(0, 3))
        if kind == 0:
            return PeriodicSet.points(
                draw(st.lists(st.integers(-10, 10), max_size=4))
            )
        if kind == 1:
            low = draw(st.integers(-10, 10))
            return PeriodicSet.interval(low, low + draw(st.integers(0, 8)))
        base = PeriodicSet.every(
            draw(st.integers(1, max_period)), draw(st.integers(0, max_period))
        )
        if kind == 2:
            return base
        return base & PeriodicSet.at_or_above(draw(st.integers(-8, 8)))

else:  # pragma: no cover - exercised only without the test extra

    def _needs_hypothesis(*_args, **_kwargs):
        raise ImportError(
            "the repro.testing hypothesis strategies require the optional "
            "'hypothesis' package (pip install repro[test]); the seeded_* "
            "generators work without it"
        )

    lrps = dbms = generalized_tuples = _needs_hypothesis
    generalized_relations = periodic_sets = _needs_hypothesis
