"""Hierarchical tracing: spans, the recorder, JSON export, flamegraphs.

A *span* is one timed step of engine work — an algebra operation, a
query-plan node — annotated with structural cost attributes (input and
output tuple counts, pairwise combinations examined, normalization
expansions) and with the optimization layer's counter deltas (prefilter
rejections, cache hits) observed while the span was open.  Spans nest:
evaluating ``Even(t) & t >= 0`` produces a ``query.join`` span whose
children are the ``query.scan`` / ``query.compare`` plan nodes, each
wrapping the ``algebra.*`` spans that did the work.

Tracing is **off by default** and costs almost nothing when off: the
instrumentation points call :func:`span`, which returns the shared
:data:`NULL_SPAN` singleton (a no-op context manager) unless a
recorder is installed — one module-global load and one branch per
*operation*, never per tuple.  Install a recorder with
:func:`tracing`::

    from repro import obs

    with obs.tracing() as recorder:
        algebra.join(r1, r2)
    print(obs.render_flamegraph(recorder.root))
    json.dump(recorder.root.to_dict(), open("trace.json", "w"))

With ``workers > 1`` the span tree keeps its exact serial shape — the
fan-out happens *inside* an operation's span — but counter deltas
bumped in worker processes stay in those processes, so perf attributes
describe only the serial fraction (the same caveat as
:func:`repro.analysis.counters.perf_counters`).

This module is stdlib-only apart from :mod:`repro.perf.config` (itself
stdlib-only), so it is importable from the bottom of the core
dependency graph.
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.obs.metrics import get_registry
from repro.perf.config import PERF_COUNTERS


class Span:
    """One step of traced work: a name, cost attributes, children."""

    __slots__ = (
        "name",
        "attrs",
        "perf",
        "children",
        "wall_ms",
        "_recorder",
        "_start",
        "_perf_before",
    )

    #: Real spans record; the :data:`NULL_SPAN` singleton does not.
    enabled = True

    def __init__(self, name: str, recorder: "TraceRecorder", **attrs) -> None:
        self.name = name
        self.attrs: dict[str, Any] = attrs
        self.perf: dict[str, int] = {}
        self.children: list[Span] = []
        self.wall_ms: float = 0.0
        self._recorder = recorder
        self._start = 0.0
        self._perf_before: dict[str, int] = {}

    def set(self, **attrs) -> None:
        """Attach or update cost attributes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._recorder._push(self)
        self._perf_before = dict(PERF_COUNTERS)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_ms = (time.perf_counter() - self._start) * 1000.0
        before = self._perf_before
        for key, value in PERF_COUNTERS.items():
            delta = value - before.get(key, 0)
            if delta:
                self.perf[key] = self.perf.get(key, 0) + delta
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._recorder._pop(self)

    # -- derived views -------------------------------------------------

    @property
    def self_ms(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.wall_ms - sum(c.wall_ms for c in self.children))

    def walk(self):
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span in this subtree with the given name."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly tree: name, wall_ms, attrs, perf, children."""
        out: dict[str, Any] = {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 6),
            "attrs": dict(self.attrs),
        }
        if self.perf:
            out["perf"] = dict(self.perf)
        out["children"] = [child.to_dict() for child in self.children]
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`to_dict` serialized as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} {self.wall_ms:.3f}ms "
            f"children={len(self.children)}>"
        )


class _NullSpan:
    """The do-nothing span handed out while tracing is off."""

    __slots__ = ()
    enabled = False

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSpan>"


#: The shared no-op span: every :func:`span` call while tracing is off
#: returns this exact object, so the disabled path allocates nothing.
NULL_SPAN = _NullSpan()


class TraceRecorder:
    """Collects spans into a tree while installed via :func:`tracing`.

    ``record_histograms`` additionally streams every span's wall time
    into the global :class:`~repro.obs.metrics.MetricsRegistry` under
    ``span.<name>.ms``, so trace runs feed the same accounting API the
    benchmarks read.
    """

    def __init__(self, record_histograms: bool = True) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._record_histograms = record_histograms

    def span(self, name: str, **attrs) -> Span:
        """Create a span; use as a context manager to time and nest it."""
        return Span(name, self, **attrs)

    @property
    def root(self) -> Span | None:
        """The first top-level span recorded (None before any work)."""
        return self.roots[0] if self.roots else None

    @property
    def current(self) -> Span | None:
        """The innermost open span."""
        return self._stack[-1] if self._stack else None

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if self._record_histograms:
            get_registry().histogram(f"span.{span.name}.ms").observe(
                span.wall_ms
            )

    def to_dict(self) -> dict[str, Any]:
        """Every collected root span tree, JSON-friendly."""
        return {"traces": [root.to_dict() for root in self.roots]}

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`to_dict` serialized as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, default=repr)


# ----------------------------------------------------------------------
# module-global recorder installation
# ----------------------------------------------------------------------

_active: TraceRecorder | None = None


def active_recorder() -> TraceRecorder | None:
    """The installed recorder, or None while tracing is off."""
    return _active


def tracing_enabled() -> bool:
    """Whether a recorder is currently installed."""
    return _active is not None


def span(name: str, **attrs):
    """A span under the active recorder, or :data:`NULL_SPAN` when off.

    This is the hot-path entry: instrumentation sites do ``with
    obs.span("algebra.join") as sp: ...`` unconditionally and pay only
    a global load plus a branch when tracing is disabled.
    """
    recorder = _active
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


class tracing:
    """Context manager installing a :class:`TraceRecorder`.

    ``with tracing() as recorder: ...`` — nested installs stack; the
    previous recorder (or the off state) is restored on exit.
    """

    def __init__(self, recorder: TraceRecorder | None = None) -> None:
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self._saved: TraceRecorder | None = None

    def __enter__(self) -> TraceRecorder:
        global _active
        self._saved = _active
        _active = self.recorder
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        global _active
        _active = self._saved


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

#: Attribute keys rendered inline in the flamegraph, in display order.
_RENDER_ATTRS = (
    "detail",
    "input_tuples",
    "pairs_examined",
    "output_tuples",
    "out_tuples",
    "expansions",
    "schema_width",
)


def _attr_text(span: Span) -> str:
    shown = []
    for key in _RENDER_ATTRS:
        if key in span.attrs:
            value = span.attrs[key]
            if key == "detail":
                shown.append(str(value))
            else:
                shown.append(f"{key.replace('_tuples', '')}={value}")
    for key, value in sorted(span.perf.items()):
        if key.startswith("prefilter") or key.endswith("cache_hit"):
            shown.append(f"{key}={value}")
    return "  ".join(shown)


def render_flamegraph(root: Span, width: int = 24) -> str:
    """Render a span tree as an indented text flamegraph.

    Each line shows a bar proportional to the span's share of the root's
    wall time, the time itself, the span name and its cost attributes::

        [########################] 100.0%    3.214ms query.join ...
          [##########            ]  41.2%    1.325ms query.scan ...
    """
    total = root.wall_ms or 1e-9
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        share = max(0.0, min(1.0, span.wall_ms / total))
        filled = round(share * width)
        bar = "#" * filled + " " * (width - filled)
        pad = "  " * depth
        attr_text = _attr_text(span)
        lines.append(
            f"{pad}[{bar}] {share * 100:5.1f}% {span.wall_ms:9.3f}ms "
            f"{span.name}"
            + (f"  {attr_text}" if attr_text else "")
        )
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)
