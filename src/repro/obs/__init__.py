"""repro.obs — observability: hierarchical tracing and unified metrics.

Two cooperating pieces:

* :mod:`repro.obs.trace` — spans with structural cost attributes
  (tuple counts, pairwise combinations, prefilter rejections, cache
  hits, normalization expansions, wall time) collected into a tree,
  exportable as JSON and renderable as a text flamegraph.  Off by
  default; near-zero overhead when off.
* :mod:`repro.obs.metrics` — one :class:`MetricsRegistry` of named
  counters/gauges/histograms that also folds in the optimization
  layer's counters and cache statistics, so benchmarks, the CLI and
  tests share a single accounting API.

Typical use::

    from repro import obs

    with obs.tracing() as recorder:
        result = db.query("EXISTS t. Even(t)")
    print(obs.render_flamegraph(recorder.root))

    snap = obs.metrics().snapshot()   # counters/gauges/histograms
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceRecorder,
    active_recorder,
    render_flamegraph,
    span,
    tracing,
    tracing_enabled,
)

#: Short alias: ``obs.metrics()`` is the global registry.
metrics = get_registry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TraceRecorder",
    "active_recorder",
    "get_registry",
    "metrics",
    "render_flamegraph",
    "reset_metrics",
    "span",
    "tracing",
    "tracing_enabled",
]
