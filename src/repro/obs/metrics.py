"""A unified metrics registry: named counters, gauges and histograms.

Before this module existed the engine's accounting was scattered —
:data:`repro.perf.config.PERF_COUNTERS` held the optimization layer's
hit/miss/skip counts, :func:`repro.perf.cache.cache_stats` held the
interning-cache populations, and :mod:`repro.analysis.counters` wrapped
both behind ad-hoc helpers.  The :class:`MetricsRegistry` re-homes all
of them behind one accounting API that benchmarks, the CLI and tests
share:

* **counters** — monotonically increasing integers (operation counts,
  tuples produced, prefilter rejections);
* **gauges** — point-in-time values (cache population, configuration);
* **histograms** — streaming distributions (span wall times), keeping
  count/total/min/max plus a bounded reservoir for quantiles.

The global registry (:func:`get_registry`) additionally *collects* the
optimization layer's existing counters and cache statistics at snapshot
time, so ``metrics().snapshot()`` is the one-stop view of everything
the engine counts.  Collection is pull-based: the hot paths keep
bumping their dependency-free module-level counters (zero new overhead)
and the registry folds them in only when asked.

This module is stdlib-only and must not import :mod:`repro.core` (the
tracing layer is imported from the bottom of the core dependency
graph).
"""

from __future__ import annotations

import bisect
from collections.abc import Callable, Mapping


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Increase the counter (``amount`` must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


#: Reservoir bound: histograms keep at most this many observations for
#: quantile estimates (count/total/min/max stay exact regardless).
DEFAULT_RESERVOIR = 4096


class Histogram:
    """A streaming distribution of numeric observations.

    ``count``/``total``/``min``/``max`` are exact over every
    observation; quantiles come from a bounded reservoir that keeps the
    first :data:`DEFAULT_RESERVOIR` observations (deterministic — no
    random sampling, so repeated runs summarize identically).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0
        self.min: float | None = None
        self.max: float | None = None
        self._reservoir: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._reservoir) < DEFAULT_RESERVOIR:
            bisect.insort(self._reservoir, value)

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile (0..1) of the reservoir, or None if empty."""
        if not self._reservoir:
            return None
        if not 0 <= q <= 1:
            raise ValueError(f"quantile {q} outside [0, 1]")
        index = min(len(self._reservoir) - 1, int(q * len(self._reservoir)))
        return self._reservoir[index]

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._reservoir.clear()

    def summary(self) -> dict[str, float | int | None]:
        """A plain-dict digest (what :meth:`MetricsRegistry.snapshot` emits)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


#: A collector contributes extra counter/gauge readings at snapshot
#: time; it returns ``{"counters": {...}, "gauges": {...}}`` (either
#: key optional).
Collector = Callable[[], Mapping[str, Mapping[str, float]]]


class MetricsRegistry:
    """Named counters, gauges and histograms plus pull-based collectors.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` get or
    create the instrument — callers hold on to the returned object for
    hot-path use and never pay a registry lookup per bump.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: list[Collector] = []

    # -- instruments ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- collectors ----------------------------------------------------

    def add_collector(self, collector: Collector) -> None:
        """Register a pull-based source of extra counter/gauge readings."""
        self._collectors.append(collector)

    # -- snapshot / reset ----------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Everything the registry knows, as plain JSON-friendly dicts."""
        counters = {c.name: c.value for c in self._counters.values()}
        gauges = {g.name: g.value for g in self._gauges.values()}
        histograms = {
            h.name: h.summary() for h in self._histograms.values()
        }
        for collector in self._collectors:
            contribution = collector()
            for name, value in contribution.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in contribution.get("gauges", {}).items():
                gauges[name] = value
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Zero every owned instrument (collectors reset at their source)."""
        for group in (self._counters, self._gauges, self._histograms):
            for instrument in group.values():
                instrument.reset()


def _perf_collector() -> dict[str, dict[str, float]]:
    """Fold the optimization layer's counters and cache stats in.

    Imported lazily so this module stays importable before (or without)
    the rest of the library.
    """
    from repro.perf.cache import cache_stats
    from repro.perf.config import counters_snapshot

    counters = {
        f"perf.{name}": value for name, value in counters_snapshot().items()
    }
    gauges: dict[str, float] = {}
    for cache_name, stats in cache_stats().items():
        for stat_name, value in stats.items():
            key = f"cache.{cache_name}.{stat_name}"
            if stat_name in ("hits", "misses", "evictions"):
                counters[key] = value
            else:
                gauges[key] = value
    return {"counters": counters, "gauges": gauges}


_registry = MetricsRegistry()
_registry.add_collector(_perf_collector)


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry (perf collectors pre-wired)."""
    return _registry


def reset_metrics(include_perf: bool = True) -> None:
    """Zero the global registry and (by default) the perf counters too."""
    _registry.reset()
    if include_perf:
        from repro.perf.config import reset_counters

        reset_counters()
