"""The single registry mapping query-AST nodes to plan operators.

Historically the operator names and one-line details lived in
``query/evaluator.py`` while ``explain.py`` rendered span names that
had to match them by convention — two places that could drift.  This
module is now the one source of truth: the planner uses it to label
plan nodes, the evaluator's spans and EXPLAIN's rendering are both
derived from those labels, so a name can no longer change in one place
without the other.
"""

from __future__ import annotations

from repro.query.ast import (
    And,
    Cmp,
    DataEq,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    Sort,
)

#: Query-node class -> plan/trace operator name (the algebra operation
#: the planner translates it into).
OPERATORS: dict[type, str] = {
    Pred: "scan",
    Cmp: "compare",
    DataEq: "data-eq",
    And: "join",
    Or: "union",
    Not: "complement",
    Implies: "implies",
    Exists: "project",
    Forall: "forall",
}


def node_operator(node: Query) -> str:
    """The plan-operator name of a query node (``scan``, ``join``, ...)."""
    return OPERATORS[type(node)]


def node_detail(node: Query) -> str:
    """A one-line human description of how a query node evaluates."""
    if isinstance(node, (Pred, Cmp, DataEq)):
        return str(node)
    if isinstance(node, And):
        return f"{len(node.parts)}-way natural join"
    if isinstance(node, Or):
        return f"{len(node.parts)}-way aligned union"
    if isinstance(node, Not):
        return "negation pushed inward, then Z-complement at atoms"
    if isinstance(node, Implies):
        return "rewritten to ~antecedent | consequent"
    if isinstance(node, Exists):
        sort = "Z" if node.sort is Sort.TEMPORAL else "active domain"
        return f"∃{node.var} over {sort}"
    if isinstance(node, Forall):
        return f"∀{node.var} as ~∃~"
    return ""  # pragma: no cover - every node type is covered above


def node_label(node: Query) -> tuple[str, str]:
    """The ``(operator, detail)`` provenance label of a query node."""
    return (node_operator(node), node_detail(node))
