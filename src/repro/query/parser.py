"""Parser for the two-sorted first-order query language.

Concrete syntax (case-insensitive keywords)::

    query  :=  'EXISTS' var '.' query
            |  'FORALL' var '.' query
            |  implication
    implication := disjunction [ '->' query ]
    disjunction := conjunction ('|' conjunction)*
    conjunction := factor ('&' factor)*
    factor :=  '~' factor | '(' query ')' | atom
    atom   :=  NAME '(' term (',' term)* ')'        -- predicate
            |  term REL term                        -- comparison
    term   :=  NAME [ ('+' | '-') INT ]  |  INT  |  STRING
    REL    :=  '<=' | '>=' | '=' | '!=' | '<' | '>'

Example (the paper's Example 4.1)::

    EXISTS x. EXISTS y. EXISTS t1. EXISTS t2. FORALL t3. FORALL t4. FORALL z.
      (Perform(t1, t2, x, "task2") & t1 <= t3 & t3 <= t4 & t4 <= t2
         & t1 + 5 <= t2)
      -> ~Perform(t3, t4, y, z)

Variable sorts are inferred: a variable used in a temporal argument
position of a predicate (per the supplied schemas) or in a comparison is
temporal; one used in a data position or equated with a string constant
is data.  Conflicting uses raise :class:`ParseError`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.core.errors import ParseError, ReproTypeError
from repro.core.relations import Schema
from repro.query.ast import (
    And,
    Cmp,
    CmpOp,
    DataConst,
    DataEq,
    DataVar,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    Sort,
    TempConst,
    TempVar,
    Term,
)

_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>"[^"]*"|'[^']*')
      | (?P<int>-?\d+)
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op>->|<=|>=|!=|=|<|>|\(|\)|,|\.|&|\||~|\+|-)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"exists", "forall"}


@dataclass
class _Token:
    kind: str
    text: str
    position: int


@dataclass
class _RawTerm:
    """A term before sort resolution."""

    var: str | None = None
    int_value: int | None = None
    str_value: str | None = None
    offset: int = 0


@dataclass
class _RawPred:
    name: str
    args: list[_RawTerm]


@dataclass
class _RawCmp:
    left: _RawTerm
    op: CmpOp
    right: _RawTerm


@dataclass
class _RawNot:
    body: object


@dataclass
class _RawAnd:
    parts: list


@dataclass
class _RawOr:
    parts: list


@dataclass
class _RawImplies:
    antecedent: object
    consequent: object


@dataclass
class _RawQuant:
    exists: bool
    var: str
    body: object


def _located(text: str, message: str, position: int) -> ParseError:
    """A :class:`ParseError` carrying line/column, not just an offset.

    Positions are byte offsets into ``text``; reporting them raw is
    useless for multi-line queries, so every parser raise site goes
    through here to translate the offset into 1-based line/column.
    """
    position = min(position, len(text))
    line = text.count("\n", 0, position) + 1
    column = position - text.rfind("\n", 0, position)
    return ParseError(message, position, line=line, column=column)


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise _located(text, f"unexpected character {text[pos]!r}", pos)
        pos = match.end()
        if match.group("string") is not None:
            tokens.append(
                _Token("string", match.group("string")[1:-1], match.start())
            )
        elif match.group("int") is not None:
            tokens.append(_Token("int", match.group("int"), match.start()))
        elif match.group("name") is not None:
            name = match.group("name")
            kind = "keyword" if name.lower() in _KEYWORDS else "name"
            tokens.append(_Token(kind, name, match.start()))
        else:
            tokens.append(_Token("op", match.group("op"), match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def error(self, message: str, position: int) -> ParseError:
        return _located(self.text, message, position)

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of query", len(self.text))
        self.index += 1
        return token

    def expect(self, text: str) -> None:
        token = self.next()
        if token.text != text:
            raise self.error(
                f"expected {text!r}, got {token.text!r}", token.position
            )

    def query(self):
        token = self.peek()
        if token is not None and token.kind == "keyword":
            self.next()
            var_token = self.next()
            if var_token.kind != "name":
                raise self.error(
                    "expected a variable after quantifier", var_token.position
                )
            self.expect(".")
            body = self.query()
            return _RawQuant(
                exists=token.text.lower() == "exists",
                var=var_token.text,
                body=body,
            )
        return self.implication()

    def implication(self):
        left = self.disjunction()
        token = self.peek()
        if token is not None and token.kind == "op" and token.text == "->":
            self.next()
            right = self.query()
            return _RawImplies(left, right)
        return left

    def disjunction(self):
        parts = [self.conjunction()]
        while (t := self.peek()) is not None and t.text == "|":
            self.next()
            parts.append(self.conjunction())
        return parts[0] if len(parts) == 1 else _RawOr(parts)

    def conjunction(self):
        parts = [self.factor()]
        while (t := self.peek()) is not None and t.text == "&":
            self.next()
            parts.append(self.factor())
        return parts[0] if len(parts) == 1 else _RawAnd(parts)

    def factor(self):
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of query", len(self.text))
        if token.text == "~":
            self.next()
            return _RawNot(self.factor())
        if token.text == "(":
            # Could be a parenthesised query; terms never start with "(".
            self.next()
            inner = self.query()
            self.expect(")")
            return inner
        return self.atom()

    def atom(self):
        token = self.peek()
        if token is not None and token.kind == "name":
            following = (
                self.tokens[self.index + 1]
                if self.index + 1 < len(self.tokens)
                else None
            )
            if following is not None and following.text == "(":
                name = self.next().text
                self.expect("(")
                args = [self.term()]
                while (t := self.peek()) is not None and t.text == ",":
                    self.next()
                    args.append(self.term())
                self.expect(")")
                return _RawPred(name, args)
        left = self.term()
        op_token = self.next()
        if op_token.text not in {"<=", ">=", "=", "<", ">", "!="}:
            raise self.error(
                f"expected a comparison, got {op_token.text!r}",
                op_token.position,
            )
        right = self.term()
        if op_token.text == "!=":
            # Sugar: a != b  ==  ~(a = b), on either sort.
            return _RawNot(_RawCmp(left, CmpOp.EQ, right))
        return _RawCmp(left, CmpOp(op_token.text), right)

    def term(self) -> _RawTerm:
        token = self.next()
        if token.kind == "string":
            return _RawTerm(str_value=token.text)
        if token.kind == "int":
            value = int(token.text)
            offset = self._optional_offset()
            return _RawTerm(int_value=value + offset)
        if token.kind == "name":
            return _RawTerm(var=token.text, offset=self._optional_offset())
        raise self.error(f"unexpected token {token.text!r}", token.position)

    def _optional_offset(self) -> int:
        token = self.peek()
        if token is not None and token.kind == "op" and token.text in "+-":
            sign = 1 if token.text == "+" else -1
            self.next()
            int_token = self.next()
            if int_token.kind != "int":
                raise self.error(
                    "expected an integer offset", int_token.position
                )
            return sign * int(int_token.text)
        return 0


# ----------------------------------------------------------------------
# sort resolution
# ----------------------------------------------------------------------


class _SortContext:
    def __init__(self, schemas: dict[str, Schema]) -> None:
        self.schemas = schemas
        self.sorts: dict[str, Sort] = {}

    def note(self, var: str, sort: Sort) -> None:
        existing = self.sorts.get(var)
        if existing is not None and existing != sort:
            raise ParseError(
                f"variable {var!r} used at both temporal and data sort"
            )
        self.sorts[var] = sort

    def collect(self, node) -> None:
        if isinstance(node, _RawPred):
            schema = self.schemas.get(node.name)
            if schema is None:
                raise ParseError(f"unknown predicate {node.name!r}")
            if len(node.args) != len(schema):
                raise ParseError(
                    f"{node.name} expects {len(schema)} arguments, got "
                    f"{len(node.args)}"
                )
            for arg, attr in zip(node.args, schema.attributes):
                if arg.var is not None:
                    self.note(
                        arg.var,
                        Sort.TEMPORAL if attr.temporal else Sort.DATA,
                    )
                elif arg.str_value is not None and attr.temporal:
                    raise ParseError(
                        f"string constant in temporal position of {node.name}"
                    )
                elif arg.int_value is not None and not attr.temporal:
                    # ints are fine as data constants too; nothing to note
                    pass
        elif isinstance(node, _RawCmp):
            for side in (node.left, node.right):
                if side.str_value is not None:
                    # data equality: both variable sides are data-sorted
                    if node.op is not CmpOp.EQ:
                        raise ParseError(
                            "data terms admit only equality comparisons"
                        )
                    for other in (node.left, node.right):
                        if other.var is not None:
                            self.note(other.var, Sort.DATA)
                    return
        elif isinstance(node, _RawNot):
            self.collect(node.body)
        elif isinstance(node, (_RawAnd, _RawOr)):
            for part in node.parts:
                self.collect(part)
        elif isinstance(node, _RawImplies):
            self.collect(node.antecedent)
            self.collect(node.consequent)
        elif isinstance(node, _RawQuant):
            self.collect(node.body)

    def second_pass(self, node) -> None:
        """Temporal-default pass: comparisons force temporal sorts."""
        if isinstance(node, _RawCmp):
            if any(
                side.str_value is not None for side in (node.left, node.right)
            ):
                return
            sides = [s for s in (node.left, node.right) if s.var is not None]
            if any(self.sorts.get(s.var) == Sort.DATA for s in sides):
                return  # resolved as data equality later
            for side in sides:
                self.note(side.var, Sort.TEMPORAL)
        elif isinstance(node, _RawNot):
            self.second_pass(node.body)
        elif isinstance(node, (_RawAnd, _RawOr)):
            for part in node.parts:
                self.second_pass(part)
        elif isinstance(node, _RawImplies):
            self.second_pass(node.antecedent)
            self.second_pass(node.consequent)
        elif isinstance(node, _RawQuant):
            self.second_pass(node.body)

    def sort_of(self, var: str) -> Sort:
        return self.sorts.get(var, Sort.TEMPORAL)


def _resolve_term(raw: _RawTerm, ctx: _SortContext, temporal: bool) -> Term:
    if raw.str_value is not None:
        return DataConst(raw.str_value)
    if raw.int_value is not None:
        return TempConst(raw.int_value) if temporal else DataConst(raw.int_value)
    if temporal:
        return TempVar(raw.var, raw.offset)
    if raw.offset != 0:
        raise ParseError(f"successor applied to data variable {raw.var!r}")
    return DataVar(raw.var)


def _resolve(node, ctx: _SortContext) -> Query:
    if isinstance(node, _RawPred):
        schema = ctx.schemas[node.name]
        args = tuple(
            _resolve_term(arg, ctx, attr.temporal)
            for arg, attr in zip(node.args, schema.attributes)
        )
        return Pred(node.name, args)
    if isinstance(node, _RawCmp):
        is_data = any(
            side.str_value is not None
            or (side.var is not None and ctx.sorts.get(side.var) == Sort.DATA)
            for side in (node.left, node.right)
        )
        if is_data:
            if node.op is not CmpOp.EQ:
                raise ParseError("data terms admit only equality comparisons")
            left = _resolve_term(node.left, ctx, temporal=False)
            right = _resolve_term(node.right, ctx, temporal=False)
            return DataEq(left, right)
        left = _resolve_term(node.left, ctx, temporal=True)
        right = _resolve_term(node.right, ctx, temporal=True)
        return Cmp(left, node.op, right)
    if isinstance(node, _RawNot):
        return Not(_resolve(node.body, ctx))
    if isinstance(node, _RawAnd):
        return And(tuple(_resolve(p, ctx) for p in node.parts))
    if isinstance(node, _RawOr):
        return Or(tuple(_resolve(p, ctx) for p in node.parts))
    if isinstance(node, _RawImplies):
        return Implies(
            _resolve(node.antecedent, ctx), _resolve(node.consequent, ctx)
        )
    if isinstance(node, _RawQuant):
        body = _resolve(node.body, ctx)
        sort = ctx.sort_of(node.var)
        cls = Exists if node.exists else Forall
        return cls(node.var, sort, body)
    raise ReproTypeError(f"unexpected raw node {node!r}")  # pragma: no cover


class Directive(enum.Enum):
    """What a query string asks the engine to do with the query."""

    QUERY = "query"
    EXPLAIN = "explain"
    EXPLAIN_ANALYZE = "explain analyze"
    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


_DIRECTIVE_RE = re.compile(
    r"^\s*explain\b(?P<analyze>\s+analyze\b)?\s*", re.IGNORECASE
)

_OPTIMIZE_RE = re.compile(
    r"^\s*(?P<sense>minimize|maximize)\b\s*", re.IGNORECASE
)


def split_directive(text: str) -> tuple[Directive, str]:
    """Split a leading directive off a query string.

    Recognizes ``EXPLAIN [ANALYZE]`` and ``MINIMIZE``/``MAXIMIZE``
    (whose remainder is ``<objective> : <query>`` — see
    :func:`repro.optimize.parse_objective`).  Returns the directive and
    the remaining text.  A keyword is only a directive in head position
    followed by a query — a relation actually *named* ``Explain`` or
    ``Minimize`` still works, because a predicate atom continues with
    ``(`` directly::

        split_directive("EXPLAIN ANALYZE EXISTS t. P(t)")
        (Directive.EXPLAIN_ANALYZE, "EXISTS t. P(t)")
        split_directive("MINIMIZE t : Event(t)")
        (Directive.MINIMIZE, "t : Event(t)")
        split_directive("Explain(t)")
        (Directive.QUERY, "Explain(t)")

    ``EXPLAIN MINIMIZE obj : query`` composes: this function returns
    :attr:`Directive.EXPLAIN` with ``MINIMIZE obj : query`` as the
    rest; callers split again to find the optimization directive
    underneath (:meth:`Database.query
    <repro.query.database.Database.query>` does).
    """
    match = _DIRECTIVE_RE.match(text)
    if match is not None:
        rest = text[match.end():]
        if not rest.startswith("("):
            # "Explain(...)" / "Explain Analyze(...)" are predicate atoms.
            if match.group("analyze"):
                return Directive.EXPLAIN_ANALYZE, rest
            return Directive.EXPLAIN, rest
    match = _OPTIMIZE_RE.match(text)
    if match is not None:
        rest = text[match.end():]
        if not rest.startswith("("):
            sense = match.group("sense").lower()
            directive = (
                Directive.MINIMIZE
                if sense == "minimize"
                else Directive.MAXIMIZE
            )
            return directive, rest
    return Directive.QUERY, text


def parse_query(text: str, schemas: dict[str, Schema]) -> Query:
    """Parse a query against the given predicate schemas."""
    parser = _Parser(text)
    raw = parser.query()
    leftover = parser.peek()
    if leftover is not None:
        raise _located(
            text,
            f"trailing input starting at {leftover.text!r}",
            leftover.position,
        )
    ctx = _SortContext(schemas)
    ctx.collect(raw)
    ctx.second_pass(raw)
    return _resolve(raw, ctx)
