"""Abstract syntax for the two-sorted first-order query language (Section 4).

The language has a temporal sort (interpreted over Z, with the
interpreted order ``<=`` and the successor function, written ``t + c``)
and a generic data sort.  Uninterpreted predicates mix temporal and data
arguments; quantification is allowed over both sorts.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from enum import Enum
from repro.core.errors import ReproTypeError, ReproValueError


class Sort(Enum):
    """The two sorts of the logic."""

    TEMPORAL = "temporal"
    DATA = "data"


# ----------------------------------------------------------------------
# terms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TempVar:
    """A temporal variable plus a successor offset: ``name + offset``."""

    name: str
    offset: int = 0

    def shifted(self, delta: int) -> TempVar:
        """Apply the successor function ``delta`` more times."""
        return TempVar(self.name, self.offset + delta)

    def __str__(self) -> str:
        if self.offset == 0:
            return self.name
        sign = "+" if self.offset > 0 else "-"
        return f"{self.name} {sign} {abs(self.offset)}"


@dataclass(frozen=True)
class TempConst:
    """A temporal constant (an integer time point)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class DataVar:
    """A data-sort variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DataConst:
    """A data-sort constant."""

    value: Hashable

    def __str__(self) -> str:
        return repr(self.value)


TempTerm = TempVar | TempConst
DataTerm = DataVar | DataConst
Term = TempVar | TempConst | DataVar | DataConst


# ----------------------------------------------------------------------
# formulas
# ----------------------------------------------------------------------


class CmpOp(Enum):
    """Comparison operators on the temporal sort."""

    LE = "<="
    GE = ">="
    LT = "<"
    GT = ">"
    EQ = "="

    def holds(self, left: int, right: int) -> bool:
        """Evaluate on concrete integers."""
        return {
            CmpOp.LE: left <= right,
            CmpOp.GE: left >= right,
            CmpOp.LT: left < right,
            CmpOp.GT: left > right,
            CmpOp.EQ: left == right,
        }[self]


@dataclass(frozen=True)
class Pred:
    """An uninterpreted predicate atom ``name(arg1, ..., argn)``."""

    name: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Cmp:
    """The interpreted comparison ``left op right`` on the temporal sort."""

    left: TempTerm
    op: CmpOp
    right: TempTerm

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class DataEq:
    """Equality on the data sort: ``left = right``."""

    left: DataTerm
    right: DataTerm

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Not:
    """Negation."""

    body: Query

    def __str__(self) -> str:
        return f"~({self.body})"


@dataclass(frozen=True)
class And:
    """Conjunction."""

    parts: tuple[Query, ...]

    def __str__(self) -> str:
        return "(" + " & ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    """Disjunction."""

    parts: tuple[Query, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Implies:
    """Material implication."""

    antecedent: Query
    consequent: Query

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@dataclass(frozen=True)
class Exists:
    """Existential quantification over either sort."""

    var: str
    sort: Sort
    body: Query

    def __str__(self) -> str:
        return f"EXISTS {self.var}. {self.body}"


@dataclass(frozen=True)
class Forall:
    """Universal quantification over either sort."""

    var: str
    sort: Sort
    body: Query

    def __str__(self) -> str:
        return f"FORALL {self.var}. {self.body}"


Query = Pred | Cmp | DataEq | Not | And | Or | Implies | Exists | Forall


def free_variables(query: Query) -> dict[str, Sort]:
    """Free variables of a query, with their sorts.

    Raises :class:`ValueError` when a variable is used at both sorts.
    """
    out: dict[str, Sort] = {}

    def note(name: str, sort: Sort) -> None:
        if out.get(name, sort) != sort:
            raise ReproValueError(
                f"variable {name!r} used at both sorts in {query}"
            )
        out[name] = sort

    def walk(node: Query, bound: dict[str, Sort]) -> None:
        if isinstance(node, Pred):
            for arg in node.args:
                if isinstance(arg, TempVar) and arg.name not in bound:
                    note(arg.name, Sort.TEMPORAL)
                elif isinstance(arg, DataVar) and arg.name not in bound:
                    note(arg.name, Sort.DATA)
        elif isinstance(node, Cmp):
            for term in (node.left, node.right):
                if isinstance(term, TempVar) and term.name not in bound:
                    note(term.name, Sort.TEMPORAL)
        elif isinstance(node, DataEq):
            for term in (node.left, node.right):
                if isinstance(term, DataVar) and term.name not in bound:
                    note(term.name, Sort.DATA)
        elif isinstance(node, Not):
            walk(node.body, bound)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part, bound)
        elif isinstance(node, Implies):
            walk(node.antecedent, bound)
            walk(node.consequent, bound)
        elif isinstance(node, (Exists, Forall)):
            walk(node.body, {**bound, node.var: node.sort})
        else:  # pragma: no cover - exhaustive
            raise ReproTypeError(f"unexpected query node: {node!r}")

    walk(query, {})
    return out
