"""The planner: lowering query ASTs into relation-expression plans.

This is the calculus-to-algebra translation that used to live inline in
:class:`~repro.query.evaluator.Evaluator`, reified as a *plan builder*:
instead of executing each algebra operation eagerly while walking the
AST, :class:`Planner` emits the identical operation sequence as a
:mod:`repro.plan.nodes` tree and leaves execution to an engine.  The
lowering is deliberately 1:1 with the legacy evaluator — an
un-optimized plan executed by the native engine performs exactly the
same algebra calls in exactly the same order, which keeps results,
traces and EXPLAIN output byte-compatible; the rewrite passes
(:mod:`repro.plan.rewrite`) then improve on that baseline when
optimization is enabled.

Every AST node's plan root carries the node's provenance label (from
:mod:`repro.query.ops`), so engines reproduce the legacy ``query.*``
span tree; rewritten forms (implications expanded, ∀ as ¬∃¬, negations
pushed inward) stack their labels on one node exactly as their spans
used to nest.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.errors import EvaluationError, ReproTypeError
from repro.core.relations import GeneralizedRelation, Schema
from repro.plan import nodes as ir
from repro.plan.nodes import (
    empty_literal,
    singleton_literal,
    truth_literal,
    universe_literal,
)
from repro.query.ast import (
    And,
    Cmp,
    DataConst,
    DataEq,
    DataVar,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    Sort,
    TempConst,
    TempVar,
)
from repro.query.ops import node_label


def _with_offset(column: str, delta: int) -> str:
    """Render ``column + delta`` in the constraint parser's syntax."""
    if delta == 0:
        return column
    if delta > 0:
        return f"{column} + {delta}"
    return f"{column} - {-delta}"


class Planner:
    """Builds executable plans from parsed queries.

    ``relations`` maps names to stored relations (sizes feed the cost
    model; schemas drive the lowering).  The planner performs the same
    static checks the legacy evaluator did — unknown predicates, arity
    mismatches, sort errors — so planning a bad query raises
    :class:`~repro.core.errors.EvaluationError` before anything runs.
    """

    def __init__(
        self, relations: Mapping[str, GeneralizedRelation]
    ) -> None:
        self.relations = relations

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def plan_query(self, query: Query) -> ir.PlanNode:
        """Lower a whole query, including the canonical column order.

        The root mirrors :func:`Evaluator.evaluate`'s post-processing:
        a final projection reorders the free variables to (sorted
        temporal, sorted data) unless they already are.
        """
        plan = self.lower(query)
        names = sorted(plan.schema.temporal_names) + sorted(
            plan.schema.data_names
        )
        if names == list(plan.schema.names):
            return plan
        return ir.Project(plan, tuple(names))

    def lower(self, node: Query) -> ir.PlanNode:
        """Lower one AST node to a labeled plan subtree."""
        plan = self._dispatch(node)
        operator, detail = node_label(node)
        return plan.add_label(operator, detail)

    # ------------------------------------------------------------------
    # translation (mirrors Evaluator._dispatch 1:1)
    # ------------------------------------------------------------------

    def _dispatch(self, node: Query) -> ir.PlanNode:
        if isinstance(node, Pred):
            return self._pred(node)
        if isinstance(node, Cmp):
            return self._cmp(node)
        if isinstance(node, DataEq):
            return self._data_eq(node)
        if isinstance(node, And):
            out: ir.PlanNode = truth_literal(True)
            for part in node.parts:
                out = ir.Join(out, self.lower(part))
            return out
        if isinstance(node, Or):
            parts = [self.lower(part) for part in node.parts]
            return self._aligned_union(parts)
        if isinstance(node, Implies):
            return self.lower(
                Or((Not(node.antecedent), node.consequent))
            )
        if isinstance(node, Not):
            return self._negation(node.body)
        if isinstance(node, Exists):
            return self._exists(node)
        if isinstance(node, Forall):
            rewritten = Not(Exists(node.var, node.sort, Not(node.body)))
            return self.lower(rewritten)
        raise ReproTypeError(f"unexpected query node: {node!r}")  # pragma: no cover

    def _pred(self, node: Pred) -> ir.PlanNode:
        stored = self.relations.get(node.name)
        if stored is None:
            raise EvaluationError(f"unknown predicate {node.name!r}")
        if len(node.args) != len(stored.schema):
            raise EvaluationError(
                f"{node.name} expects {len(stored.schema)} arguments, "
                f"got {len(node.args)}"
            )
        # Rename every column to a unique positional name first.
        positional = tuple(
            (attr.name, f"_p{i}")
            for i, attr in enumerate(stored.schema.attributes)
        )
        rel: ir.PlanNode = ir.Rename(
            ir.Scan(node.name, stored.schema), positional
        )
        temporal_groups: dict[str, list[tuple[str, int]]] = {}
        data_groups: dict[str, list[str]] = {}
        drop: list[str] = []
        for i, (arg, attr) in enumerate(
            zip(node.args, stored.schema.attributes)
        ):
            col = f"_p{i}"
            if attr.temporal:
                if isinstance(arg, TempConst):
                    rel = ir.Select(rel, f"{col} = {arg.value}")
                    drop.append(col)
                elif isinstance(arg, TempVar):
                    temporal_groups.setdefault(arg.name, []).append(
                        (col, arg.offset)
                    )
                else:
                    raise EvaluationError(
                        f"data term {arg} in temporal position of {node.name}"
                    )
            else:
                if isinstance(arg, DataConst):
                    rel = ir.SelectData(rel, col, arg.value)
                    drop.append(col)
                elif isinstance(arg, DataVar):
                    data_groups.setdefault(arg.name, []).append(col)
                else:
                    raise EvaluationError(
                        f"temporal term {arg} in data position of {node.name}"
                    )
        rename_map: list[tuple[str, str]] = []
        for var, occurrences in temporal_groups.items():
            first_col, first_offset = occurrences[0]
            for col, offset in occurrences[1:]:
                rel = ir.Select(
                    rel,
                    f"{col} = {_with_offset(first_col, offset - first_offset)}",
                )
                drop.append(col)
            if first_offset != 0:
                rel = ir.Shift(rel, first_col, -first_offset)
            rename_map.append((first_col, var))
        for var, columns in data_groups.items():
            first_col = columns[0]
            for col in columns[1:]:
                rel = ir.SelectDataEqual(rel, first_col, col)
                drop.append(col)
            rename_map.append((first_col, var))
        keep = tuple(
            name for name in rel.schema.names if name not in drop
        )
        rel = ir.Project(rel, keep)
        return ir.Rename(rel, tuple(rename_map))

    def _cmp(self, node: Cmp) -> ir.PlanNode:
        left, right = node.left, node.right
        if isinstance(left, TempConst) and isinstance(right, TempConst):
            return truth_literal(node.op.holds(left.value, right.value))
        if isinstance(left, TempVar) and isinstance(right, TempVar):
            if left.name == right.name:
                # The variable stays free: a tautology/contradiction on
                # one variable is the unary universe or the unary empty
                # relation, never a 0-ary truth value.
                if node.op.holds(left.offset, right.offset):
                    return universe_literal([left.name])
                return empty_literal(Schema.make(temporal=[left.name]))
            universe = universe_literal([left.name, right.name])
            shift = right.offset - left.offset
            return ir.Select(
                universe,
                f"{left.name} {node.op.value} "
                f"{_with_offset(right.name, shift)}",
            )
        if isinstance(left, TempVar):
            bound = right.value - left.offset
            return ir.Select(
                universe_literal([left.name]),
                f"{left.name} {node.op.value} {bound}",
            )
        # constant op variable: flip.
        flipped = {"<=": ">=", ">=": "<=", "<": ">", ">": "<", "=": "="}
        bound = left.value - right.offset
        return ir.Select(
            universe_literal([right.name]),
            f"{right.name} {flipped[node.op.value]} {bound}",
        )

    def _data_eq(self, node: DataEq) -> ir.PlanNode:
        left, right = node.left, node.right
        if isinstance(left, DataConst) and isinstance(right, DataConst):
            return truth_literal(left.value == right.value)
        if isinstance(left, DataVar) and isinstance(right, DataVar):
            if left.name == right.name:
                # Trivial self-equality still binds the variable to the
                # active domain (its free-variable schema must survive).
                return ir.DataDomain(left.name)
            return ir.DataDiag(left.name, right.name)
        var = left if isinstance(left, DataVar) else right
        const = right if isinstance(right, DataConst) else left
        return singleton_literal(var.name, const.value)

    def _negation(self, body: Query) -> ir.PlanNode:
        """Lower ``~body``, pushing the negation inward first.

        Complement cost is exponential in the schema width (the number
        of free-extension combinations, Appendix A.6), so complementing
        a wide conjunction directly is catastrophic.  De Morgan and the
        implication/double-negation rules move negations down to small
        subformulas, where complements stay narrow; only atoms and
        quantifiers are complemented as relations.
        """
        if isinstance(body, Not):
            return self.lower(body.body)
        if isinstance(body, And):
            return self.lower(Or(tuple(Not(p) for p in body.parts)))
        if isinstance(body, Or):
            return self.lower(And(tuple(Not(p) for p in body.parts)))
        if isinstance(body, Implies):
            return self.lower(
                And((body.antecedent, Not(body.consequent)))
            )
        if isinstance(body, Forall):
            return self.lower(Exists(body.var, body.sort, Not(body.body)))
        # Atoms and existential quantifiers: complement the relation.
        return ir.Complement(self.lower(body))

    def _exists(self, node: Exists) -> ir.PlanNode:
        body = self.lower(node.body)
        if not body.schema.has(node.var):
            # Vacuous quantification: over Z always harmless; over the
            # data sort it needs a nonempty active domain (a runtime
            # fact — the Guard node checks it at execution time).
            if node.sort is Sort.DATA:
                return ir.Guard(body)
            return body
        keep = tuple(
            name for name in body.schema.names if name != node.var
        )
        return ir.Project(body, keep)

    def _aligned_union(self, parts: list[ir.PlanNode]) -> ir.PlanNode:
        """Union of plans over possibly different free variables.

        Each part is padded with universal columns for the variables it
        lacks: temporal variables range over Z, data variables over the
        active domain.
        """
        temporal: dict[str, None] = {}
        data: dict[str, None] = {}
        for part in parts:
            for name in part.schema.temporal_names:
                temporal[name] = None
            for name in part.schema.data_names:
                data[name] = None
        order = tuple(sorted(temporal) + sorted(data))
        aligned: list[ir.PlanNode] = []
        for part in parts:
            rel = part
            for name in temporal:
                if not rel.schema.has(name):
                    rel = ir.Product(rel, universe_literal([name]))
            for name in data:
                if not rel.schema.has(name):
                    rel = ir.Product(rel, ir.DataDomain(name))
            aligned.append(ir.Project(rel, order))
        out = aligned[0]
        for rel in aligned[1:]:
            out = ir.Union(out, rel)
        return out
