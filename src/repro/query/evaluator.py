"""Evaluating first-order queries through the generalized algebra.

The evaluator implements the classical translation from relational
calculus to relational algebra, with the paper's twist: the temporal
sort is handled *fully symbolically* — quantifiers over time range over
all of Z, negation complements against Z^k — so queries about infinite
extensions are decided exactly.  The data sort uses active-domain
semantics (the database's data values plus the query's data constants),
the standard choice for safe calculus evaluation.

Translation table:

=====================  ====================================================
``P(t + c, ..., d)``   stored relation, columns selected/shifted/renamed
``t1 <= t2 + c``       a two-column universe relation with one constraint
``x = y`` (data)       diagonal over the active domain
``&``                  natural join
``|``                  union after schema alignment
``~``                  complement against the universe of the free schema
``EXISTS``             projection
``FORALL``             ``~ EXISTS ~``
=====================  ====================================================
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.core import algebra
from repro.core.errors import EvaluationError, ReproTypeError
from repro.obs import trace as obs
from repro.core.negation import DEFAULT_MAX_EXTENSIONS
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.query.ast import (
    And,
    Cmp,
    DataConst,
    DataEq,
    DataVar,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    Sort,
    TempConst,
    TempVar,
    free_variables,
)


#: Query-node class -> plan/trace operator name (the algebra operation
#: the evaluator translates it into).
_NODE_OPERATORS = {
    Pred: "scan",
    Cmp: "compare",
    DataEq: "data-eq",
    And: "join",
    Or: "union",
    Not: "complement",
    Implies: "implies",
    Exists: "project",
    Forall: "forall",
}


def node_operator(node: Query) -> str:
    """The plan-operator name of a query node (``scan``, ``join``, ...)."""
    return _NODE_OPERATORS[type(node)]


def node_detail(node: Query) -> str:
    """A one-line human description of how a query node evaluates."""
    if isinstance(node, (Pred, Cmp, DataEq)):
        return str(node)
    if isinstance(node, And):
        return f"{len(node.parts)}-way natural join"
    if isinstance(node, Or):
        return f"{len(node.parts)}-way aligned union"
    if isinstance(node, Not):
        return "negation pushed inward, then Z-complement at atoms"
    if isinstance(node, Implies):
        return "rewritten to ~antecedent | consequent"
    if isinstance(node, Exists):
        sort = "Z" if node.sort is Sort.TEMPORAL else "active domain"
        return f"∃{node.var} over {sort}"
    if isinstance(node, Forall):
        return f"∀{node.var} as ~∃~"
    return ""  # pragma: no cover - every node type is covered above


def _with_offset(column: str, delta: int) -> str:
    """Render ``column + delta`` in the constraint parser's syntax."""
    if delta == 0:
        return column
    if delta > 0:
        return f"{column} + {delta}"
    return f"{column} - {-delta}"


def _true_relation() -> GeneralizedRelation:
    out = GeneralizedRelation.empty(Schema(()))
    out.add(GeneralizedTuple.make([]))
    return out


def _false_relation() -> GeneralizedRelation:
    return GeneralizedRelation.empty(Schema(()))


def _truth(value: bool) -> GeneralizedRelation:
    return _true_relation() if value else _false_relation()


def _canonical_order(relation: GeneralizedRelation) -> GeneralizedRelation:
    """Reorder columns to (sorted temporal, sorted data)."""
    names = sorted(relation.schema.temporal_names) + sorted(
        relation.schema.data_names
    )
    if names == list(relation.schema.names):
        return relation
    return algebra.project(relation, names)


class Evaluator:
    """Compiles and runs queries against a set of named relations.

    Parameters mirror the algebra's safety limits: ``max_tuples`` caps
    normalization blow-up, ``max_extensions`` caps the free-extension
    enumeration inside complements (negation is inherently exponential
    in the schema size; Theorem 3.6).  ``workers`` routes the pairwise
    algebra operations through the :mod:`repro.perf` process pool for
    this evaluator's queries (``None`` keeps the global configuration);
    results are identical for every worker count.
    """

    def __init__(
        self,
        relations: dict[str, GeneralizedRelation],
        extra_data_constants: set[Hashable] | None = None,
        max_tuples: int = DEFAULT_MAX_TUPLES,
        max_extensions: int = DEFAULT_MAX_EXTENSIONS,
        workers: int | None = None,
    ) -> None:
        self.relations = relations
        self.max_tuples = max_tuples
        self.max_extensions = max_extensions
        self.workers = workers
        domain: set[Hashable] = set()
        for rel in relations.values():
            domain |= rel.active_data_domain()
        if extra_data_constants:
            domain |= extra_data_constants
        self.data_domain = domain

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def evaluate(self, query: Query) -> GeneralizedRelation:
        """Evaluate a query; the result's schema is its free variables.

        Temporal variables become temporal attributes (sorted), data
        variables data attributes (sorted).  A closed query yields a
        0-ary relation: nonempty means *true*.

        Data constants mentioned only in the query join the active
        domain for this (and, if the evaluator is reused, subsequent)
        evaluations — the standard active-domain convention.
        """
        constants = _data_constants(query)
        if not constants <= self.data_domain:
            self.data_domain = self.data_domain | constants
        with obs.span("query.evaluate", workers=self.workers or 0) as sp:
            if self.workers is None:
                result = _canonical_order(self._walk(query))
            else:
                from repro.perf.config import overrides

                with overrides(workers=self.workers):
                    result = _canonical_order(self._walk(query))
            sp.set(out_tuples=len(result), out_schema=str(result.schema))
            return result

    def ask(self, query: Query) -> bool:
        """Evaluate a closed (yes/no) query."""
        if free_variables(query):
            raise EvaluationError(
                f"ask() needs a closed query; free: {free_variables(query)}"
            )
        return not self.evaluate(query).is_empty()

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------

    def _walk(self, node: Query) -> GeneralizedRelation:
        """Translate one query node, wrapped in a ``query.*`` span.

        With a trace recorder installed (:func:`repro.obs.tracing`)
        every node contributes a span named ``query.<operator>`` whose
        children are the sub-query spans plus the ``algebra.*`` spans
        of the operations that implemented it; rewritten forms
        (implications expanded, ∀ as ¬∃¬, negations pushed inward)
        appear as child nodes of the original, which is exactly what
        runs.  Tracing off: straight dispatch, no span objects.
        """
        recorder = obs.active_recorder()
        if recorder is None:
            return self._dispatch(node)
        with recorder.span(
            f"query.{node_operator(node)}", detail=node_detail(node)
        ) as sp:
            result = self._dispatch(node)
            sp.set(
                out_tuples=len(result), out_schema=str(result.schema)
            )
            return result

    def _dispatch(self, node: Query) -> GeneralizedRelation:
        if isinstance(node, Pred):
            return self._pred(node)
        if isinstance(node, Cmp):
            return self._cmp(node)
        if isinstance(node, DataEq):
            return self._data_eq(node)
        if isinstance(node, And):
            out = _true_relation()
            for part in node.parts:
                out = algebra.join(out, self._walk(part))
            return out
        if isinstance(node, Or):
            parts = [self._walk(part) for part in node.parts]
            return self._aligned_union(parts)
        if isinstance(node, Implies):
            return self._walk(
                Or((Not(node.antecedent), node.consequent))
            )
        if isinstance(node, Not):
            return self._negation(node.body)
        if isinstance(node, Exists):
            return self._exists(node)
        if isinstance(node, Forall):
            rewritten = Not(Exists(node.var, node.sort, Not(node.body)))
            return self._walk(rewritten)
        raise ReproTypeError(f"unexpected query node: {node!r}")  # pragma: no cover

    def _pred(self, node: Pred) -> GeneralizedRelation:
        stored = self.relations.get(node.name)
        if stored is None:
            raise EvaluationError(f"unknown predicate {node.name!r}")
        if len(node.args) != len(stored.schema):
            raise EvaluationError(
                f"{node.name} expects {len(stored.schema)} arguments, "
                f"got {len(node.args)}"
            )
        # Rename every column to a unique positional name first.
        positional = {
            attr.name: f"_p{i}"
            for i, attr in enumerate(stored.schema.attributes)
        }
        rel = algebra.rename(stored, positional)
        temporal_groups: dict[str, list[tuple[str, int]]] = {}
        data_groups: dict[str, list[str]] = {}
        drop: list[str] = []
        for i, (arg, attr) in enumerate(
            zip(node.args, stored.schema.attributes)
        ):
            col = f"_p{i}"
            if attr.temporal:
                if isinstance(arg, TempConst):
                    rel = algebra.select(rel, f"{col} = {arg.value}")
                    drop.append(col)
                elif isinstance(arg, TempVar):
                    temporal_groups.setdefault(arg.name, []).append(
                        (col, arg.offset)
                    )
                else:
                    raise EvaluationError(
                        f"data term {arg} in temporal position of {node.name}"
                    )
            else:
                if isinstance(arg, DataConst):
                    rel = algebra.select_data(rel, col, arg.value)
                    drop.append(col)
                elif isinstance(arg, DataVar):
                    data_groups.setdefault(arg.name, []).append(col)
                else:
                    raise EvaluationError(
                        f"temporal term {arg} in data position of {node.name}"
                    )
        rename_map: dict[str, str] = {}
        for var, occurrences in temporal_groups.items():
            first_col, first_offset = occurrences[0]
            for col, offset in occurrences[1:]:
                rel = algebra.select(
                    rel,
                    f"{col} = {_with_offset(first_col, offset - first_offset)}",
                )
                drop.append(col)
            if first_offset != 0:
                rel = algebra.shift_column(rel, first_col, -first_offset)
            rename_map[first_col] = var
        for var, columns in data_groups.items():
            first_col = columns[0]
            for col in columns[1:]:
                rel = algebra.select_data_equal(rel, first_col, col)
                drop.append(col)
            rename_map[first_col] = var
        keep = [name for name in rel.schema.names if name not in drop]
        rel = algebra.project(rel, keep)
        return algebra.rename(rel, rename_map)

    def _cmp(self, node: Cmp) -> GeneralizedRelation:
        left, right = node.left, node.right
        if isinstance(left, TempConst) and isinstance(right, TempConst):
            return _truth(node.op.holds(left.value, right.value))
        if isinstance(left, TempVar) and isinstance(right, TempVar):
            if left.name == right.name:
                # The variable stays free: a tautology/contradiction on
                # one variable is the unary universe or the unary empty
                # relation, never a 0-ary truth value.
                schema = Schema.make(temporal=[left.name])
                if node.op.holds(left.offset, right.offset):
                    return GeneralizedRelation.universe(schema)
                return GeneralizedRelation.empty(schema)
            universe = GeneralizedRelation.universe(
                Schema.make(temporal=[left.name, right.name])
            )
            shift = right.offset - left.offset
            return algebra.select(
                universe,
                f"{left.name} {node.op.value} "
                f"{_with_offset(right.name, shift)}",
            )
        if isinstance(left, TempVar):
            bound = right.value - left.offset
            universe = GeneralizedRelation.universe(
                Schema.make(temporal=[left.name])
            )
            return algebra.select(
                universe, f"{left.name} {node.op.value} {bound}"
            )
        # constant op variable: flip.
        flipped = {"<=": ">=", ">=": "<=", "<": ">", ">": "<", "=": "="}
        bound = left.value - right.offset
        universe = GeneralizedRelation.universe(
            Schema.make(temporal=[right.name])
        )
        return algebra.select(
            universe, f"{right.name} {flipped[node.op.value]} {bound}"
        )

    def _data_eq(self, node: DataEq) -> GeneralizedRelation:
        left, right = node.left, node.right
        if isinstance(left, DataConst) and isinstance(right, DataConst):
            return _truth(left.value == right.value)
        if isinstance(left, DataVar) and isinstance(right, DataVar):
            if left.name == right.name:
                # Trivial self-equality still binds the variable to the
                # active domain (its free-variable schema must survive).
                schema = Schema.make(data=[left.name])
                out = GeneralizedRelation.empty(schema)
                for value in self.data_domain:
                    out.add(GeneralizedTuple.make([], data=(value,)))
                return out
            schema = Schema.make(data=sorted([left.name, right.name]))
            out = GeneralizedRelation.empty(schema)
            for value in self.data_domain:
                out.add(GeneralizedTuple.make([], data=(value, value)))
            return out
        var = left if isinstance(left, DataVar) else right
        const = right if isinstance(right, DataConst) else left
        schema = Schema.make(data=[var.name])
        out = GeneralizedRelation.empty(schema)
        out.add(GeneralizedTuple.make([], data=(const.value,)))
        return out

    def _negation(self, body: Query) -> GeneralizedRelation:
        """Evaluate ``~body``, pushing the negation inward first.

        Complement cost is exponential in the schema width (the number
        of free-extension combinations, Appendix A.6), so complementing
        a wide conjunction directly is catastrophic.  De Morgan and the
        implication/double-negation rules move negations down to small
        subformulas, where complements stay narrow; only atoms and
        quantifiers are complemented as relations.
        """
        if isinstance(body, Not):
            return self._walk(body.body)
        if isinstance(body, And):
            return self._walk(Or(tuple(Not(p) for p in body.parts)))
        if isinstance(body, Or):
            return self._walk(And(tuple(Not(p) for p in body.parts)))
        if isinstance(body, Implies):
            return self._walk(
                And((body.antecedent, Not(body.consequent)))
            )
        if isinstance(body, Forall):
            return self._walk(Exists(body.var, body.sort, Not(body.body)))
        # Atoms and existential quantifiers: complement the relation.
        return self._complement(self._walk(body))

    def _complement(self, rel: GeneralizedRelation) -> GeneralizedRelation:
        data_domains = {
            name: sorted(self.data_domain, key=repr)
            for name in rel.schema.data_names
        }
        return algebra.complement(
            rel,
            data_domains=data_domains or None,
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
        )

    def _exists(self, node: Exists) -> GeneralizedRelation:
        body = self._walk(node.body)
        if not body.schema.has(node.var):
            # Vacuous quantification: over Z always harmless; over the
            # data sort it needs a nonempty active domain.
            if node.sort is Sort.DATA and not self.data_domain:
                return GeneralizedRelation.empty(body.schema)
            return body
        keep = [name for name in body.schema.names if name != node.var]
        return algebra.project(body, keep)

    def _aligned_union(
        self, parts: list[GeneralizedRelation]
    ) -> GeneralizedRelation:
        """Union of relations over possibly different free variables.

        Each part is padded with universal columns for the variables it
        lacks: temporal variables range over Z, data variables over the
        active domain.
        """
        temporal: dict[str, None] = {}
        data: dict[str, None] = {}
        for part in parts:
            for name in part.schema.temporal_names:
                temporal[name] = None
            for name in part.schema.data_names:
                data[name] = None
        order = sorted(temporal) + sorted(data)
        aligned: list[GeneralizedRelation] = []
        for part in parts:
            rel = part
            for name in temporal:
                if not rel.schema.has(name):
                    rel = algebra.product(
                        rel,
                        GeneralizedRelation.universe(
                            Schema.make(temporal=[name])
                        ),
                    )
            for name in data:
                if not rel.schema.has(name):
                    domain_rel = GeneralizedRelation.empty(
                        Schema.make(data=[name])
                    )
                    for value in self.data_domain:
                        domain_rel.add(
                            GeneralizedTuple.make([], data=(value,))
                        )
                    rel = algebra.product(rel, domain_rel)
            aligned.append(algebra.project(rel, order))
        out = aligned[0]
        for rel in aligned[1:]:
            out = algebra.union(out, rel)
        return out


def _data_constants(query: Query) -> set[Hashable]:
    """All data constants mentioned in a query."""
    out: set[Hashable] = set()

    def walk(node: Query) -> None:
        if isinstance(node, Pred):
            for arg in node.args:
                if isinstance(arg, DataConst):
                    out.add(arg.value)
        elif isinstance(node, DataEq):
            for term in (node.left, node.right):
                if isinstance(term, DataConst):
                    out.add(term.value)
        elif isinstance(node, Not):
            walk(node.body)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part)
        elif isinstance(node, Implies):
            walk(node.antecedent)
            walk(node.consequent)
        elif isinstance(node, (Exists, Forall)):
            walk(node.body)

    walk(query)
    return out
