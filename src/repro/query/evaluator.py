"""Evaluating first-order queries through the generalized algebra.

The evaluator implements the classical translation from relational
calculus to relational algebra, with the paper's twist: the temporal
sort is handled *fully symbolically* — quantifiers over time range over
all of Z, negation complements against Z^k — so queries about infinite
extensions are decided exactly.  The data sort uses active-domain
semantics (the database's data values plus the query's data constants),
the standard choice for safe calculus evaluation.

Translation table:

=====================  ====================================================
``P(t + c, ..., d)``   stored relation, columns selected/shifted/renamed
``t1 <= t2 + c``       a two-column universe relation with one constraint
``x = y`` (data)       diagonal over the active domain
``&``                  natural join
``|``                  union after schema alignment
``~``                  complement against the universe of the free schema
``EXISTS``             projection
``FORALL``             ``~ EXISTS ~``
=====================  ====================================================

Since the planner split (``docs/planner.md``), the evaluator is a thin
pipeline: :class:`repro.query.planner.Planner` lowers the AST into a
relation-expression plan, the optional rewrite passes
(:mod:`repro.plan.rewrite`) transform it, and a pluggable engine
(:mod:`repro.plan.engine`) executes it.  With optimization off (the
default) the lowered plan performs exactly the algebra calls the
pre-planner evaluator performed, in the same order — results and trace
shapes are byte-compatible.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.core.errors import EvaluationError
from repro.obs import trace as obs
from repro.obs.metrics import get_registry
from repro.core.negation import DEFAULT_MAX_EXTENSIONS
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import GeneralizedRelation
from repro.plan.engine import Engine, ExecutionContext, resolve_engine
from repro.plan.nodes import PlanNode
from repro.plan.rewrite import PassReport, optimize_plan
from repro.query.ast import (
    And,
    DataConst,
    DataEq,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    free_variables,
)
from repro.query.ops import node_detail, node_operator  # noqa: F401 - re-export
from repro.query.planner import Planner


class Evaluator:
    """Compiles and runs queries against a set of named relations.

    Parameters mirror the algebra's safety limits: ``max_tuples`` caps
    normalization blow-up, ``max_extensions`` caps the free-extension
    enumeration inside complements (negation is inherently exponential
    in the schema size; Theorem 3.6).  ``workers`` routes the pairwise
    algebra operations through the :mod:`repro.perf` process pool for
    this evaluator's queries (``None`` keeps the global configuration);
    results are identical for every worker count.

    ``engine`` and ``optimize`` are keyword-only: ``engine`` selects a
    registered execution engine by name (or passes an
    :class:`~repro.plan.engine.Engine` instance), ``optimize`` turns
    the plan rewrite passes on or off.  Both default to the global
    configuration (environment variables ``REPRO_ENGINE`` and
    ``REPRO_OPTIMIZE``); optimized plans are semantically equivalent
    but may differ in intermediate representation and trace shape.
    """

    def __init__(
        self,
        relations: dict[str, GeneralizedRelation],
        extra_data_constants: set[Hashable] | None = None,
        max_tuples: int = DEFAULT_MAX_TUPLES,
        max_extensions: int = DEFAULT_MAX_EXTENSIONS,
        workers: int | None = None,
        *,
        engine: str | Engine | None = None,
        optimize: bool | None = None,
    ) -> None:
        self.relations = relations
        self.max_tuples = max_tuples
        self.max_extensions = max_extensions
        self.workers = workers
        self.engine = engine
        self.optimize = optimize
        domain: set[Hashable] = set()
        for rel in relations.values():
            domain |= rel.active_data_domain()
        if extra_data_constants:
            domain |= extra_data_constants
        self.data_domain = domain

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def evaluate(self, query: Query) -> GeneralizedRelation:
        """Evaluate a query; the result's schema is its free variables.

        Temporal variables become temporal attributes (sorted), data
        variables data attributes (sorted).  A closed query yields a
        0-ary relation: nonempty means *true*.

        Data constants mentioned only in the query join the active
        domain for this (and, if the evaluator is reused, subsequent)
        evaluations — the standard active-domain convention.
        """
        constants = _data_constants(query)
        if not constants <= self.data_domain:
            self.data_domain = self.data_domain | constants
        optimize = self._resolved_optimize()
        engine = resolve_engine(self.engine)
        with obs.span("query.evaluate", workers=self.workers or 0) as sp:
            plan = Planner(self.relations).plan_query(query)
            get_registry().counter("planner.plans").inc()
            if optimize:
                sp.set(engine=engine.name, optimized=True)
                plan, _ = optimize_plan(
                    plan,
                    relations=self.relations,
                    domain_size=len(self.data_domain),
                )
            ctx = self._context(optimize)
            if self.workers is None:
                result = engine.run(plan, ctx)
            else:
                from repro.perf.config import overrides

                with overrides(workers=self.workers):
                    result = engine.run(plan, ctx)
            sp.set(out_tuples=len(result), out_schema=str(result.schema))
            return result

    def ask(self, query: Query) -> bool:
        """Evaluate a closed (yes/no) query."""
        if free_variables(query):
            raise EvaluationError(
                f"ask() needs a closed query; free: {free_variables(query)}"
            )
        return not self.evaluate(query).is_empty()

    def optimize_query(self, query: Query, objective, sense: str):
        """Exact extremum of ``objective`` over the query's result.

        ``objective`` is a :class:`repro.optimize.Objective` whose
        variables must be free *temporal* variables of the query;
        ``sense`` is ``"min"`` or ``"max"``.  The query is planned and
        rewritten exactly as :meth:`evaluate` would, then lowered under
        an :class:`~repro.plan.nodes.Optimize` root; the engine
        deposits the scalar in the execution context.  Returns the
        :class:`~repro.optimize.core.OptimizationResult`.
        """
        from repro.plan.nodes import Optimize

        constants = _data_constants(query)
        if not constants <= self.data_domain:
            self.data_domain = self.data_domain | constants
        optimize = self._resolved_optimize()
        engine = resolve_engine(self.engine)
        with obs.span("query.evaluate", workers=self.workers or 0) as sp:
            plan = Planner(self.relations).plan_query(query)
            get_registry().counter("planner.plans").inc()
            temporal = plan.schema.temporal_names
            for var in objective.variables():
                if var not in temporal:
                    raise EvaluationError(
                        f"objective variable {var!r} is not a free temporal "
                        f"variable of the query (free temporal: "
                        f"{', '.join(temporal) or 'none'})"
                    )
            detail = f"{sense} {objective}"
            plan = Optimize(
                child=plan,
                sense=sense,
                name=objective.name,
                minus=objective.minus,
                labels=(("optimize", detail),),
            )
            if optimize:
                sp.set(engine=engine.name, optimized=True)
                plan, _ = optimize_plan(
                    plan,
                    relations=self.relations,
                    domain_size=len(self.data_domain),
                )
            ctx = self._context(optimize)
            if self.workers is None:
                engine.run(plan, ctx)
            else:
                from repro.perf.config import overrides

                with overrides(workers=self.workers):
                    engine.run(plan, ctx)
            result = ctx.optimum
            if result is None:  # pragma: no cover - engine contract
                raise EvaluationError(
                    f"engine {engine.name!r} did not produce an "
                    "optimization result"
                )
            sp.set(optimum=str(result.value), status=result.status)
            return result

    def plan(
        self, query: Query, *, optimize: bool | None = None
    ) -> tuple[PlanNode, PlanNode, tuple[PassReport, ...]]:
        """Plan a query without executing it.

        Returns ``(naive, plan, passes)``: the lowered plan, the plan
        that would run (rewritten when optimization is on, the same
        object otherwise) and the per-pass rewrite deltas.
        """
        constants = _data_constants(query)
        if not constants <= self.data_domain:
            self.data_domain = self.data_domain | constants
        if optimize is None:
            optimize = self._resolved_optimize()
        naive = Planner(self.relations).plan_query(query)
        get_registry().counter("planner.plans").inc()
        if not optimize:
            return naive, naive, ()
        plan, passes = optimize_plan(
            naive,
            relations=self.relations,
            domain_size=len(self.data_domain),
        )
        return naive, plan, passes

    def execution_context(self) -> ExecutionContext:
        """A fresh execution context for running this evaluator's plans."""
        return self._context(self._resolved_optimize())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _resolved_optimize(self) -> bool:
        if self.optimize is not None:
            return bool(self.optimize)
        from repro.perf.config import get_config

        return get_config().optimize

    def _context(self, optimize: bool) -> ExecutionContext:
        return ExecutionContext(
            relations=self.relations,
            data_domain=self.data_domain,
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
            plan_spans=optimize,
            memo={} if optimize else None,
        )


def _data_constants(query: Query) -> set[Hashable]:
    """All data constants mentioned in a query."""
    out: set[Hashable] = set()

    def walk(node: Query) -> None:
        if isinstance(node, Pred):
            for arg in node.args:
                if isinstance(arg, DataConst):
                    out.add(arg.value)
        elif isinstance(node, DataEq):
            for term in (node.left, node.right):
                if isinstance(term, DataConst):
                    out.add(term.value)
        elif isinstance(node, Not):
            walk(node.body)
        elif isinstance(node, (And, Or)):
            for part in node.parts:
                walk(part)
        elif isinstance(node, Implies):
            walk(node.antecedent)
            walk(node.consequent)
        elif isinstance(node, (Exists, Forall)):
            walk(node.body)

    walk(query)
    return out
