"""The two-sorted first-order temporal query language (Section 4)."""

from repro.query.ast import (
    And,
    Cmp,
    CmpOp,
    DataConst,
    DataEq,
    DataVar,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    Sort,
    TempConst,
    TempVar,
    free_variables,
)
from repro.query.database import Database
from repro.query.evaluator import Evaluator
from repro.query.explain import PlanNode, explain
from repro.query.parser import parse_query

__all__ = [
    "And",
    "Cmp",
    "CmpOp",
    "DataConst",
    "DataEq",
    "DataVar",
    "Database",
    "Evaluator",
    "Exists",
    "Forall",
    "Implies",
    "Not",
    "Or",
    "PlanNode",
    "Pred",
    "Query",
    "Sort",
    "explain",
    "TempConst",
    "TempVar",
    "free_variables",
    "parse_query",
]
