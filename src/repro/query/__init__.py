"""The two-sorted first-order temporal query language (Section 4)."""

from repro.query.ast import (
    And,
    Cmp,
    CmpOp,
    DataConst,
    DataEq,
    DataVar,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    Sort,
    TempConst,
    TempVar,
    free_variables,
)
from repro.query.database import Database
from repro.query.evaluator import Evaluator
from repro.query.explain import (
    PlanNode,
    QueryTrace,
    explain,
    explain_analyze,
    explain_plan,
    plan_report,
)
from repro.query.ops import node_detail, node_label, node_operator
from repro.query.parser import Directive, parse_query, split_directive
from repro.query.planner import Planner

__all__ = [
    "And",
    "Cmp",
    "CmpOp",
    "DataConst",
    "DataEq",
    "DataVar",
    "Database",
    "Directive",
    "Evaluator",
    "Exists",
    "Forall",
    "Implies",
    "Not",
    "Or",
    "PlanNode",
    "Planner",
    "Pred",
    "Query",
    "QueryTrace",
    "Sort",
    "TempConst",
    "TempVar",
    "explain",
    "explain_analyze",
    "explain_plan",
    "free_variables",
    "node_detail",
    "node_label",
    "node_operator",
    "parse_query",
    "plan_report",
    "split_directive",
]
