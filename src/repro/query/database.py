"""The temporal database: a catalog of named generalized relations.

This is the user-facing entry point for Section 4's query language:
register relations, then run first-order queries (as text or as AST
values) against them.

A database is in-memory by default; :meth:`Database.open` binds it to
a durable, crash-safe store (:mod:`repro.storage.engine`) with
explicit :meth:`Database.commit` / :meth:`Database.compact` /
:meth:`Database.close` — the finite representability of Definitions
2.1–2.3 is exactly what makes the infinite extensions storable.

Concurrency model (shared with the served path, :mod:`repro.serve`):
every commit publishes an immutable :class:`~repro.query.catalog.
CatalogVersion` through the :class:`~repro.query.catalog.
VersionedCatalog` transactional core.  :meth:`Database.snapshot` pins
the current committed version into a read-only
:class:`~repro.query.catalog.Snapshot` without taking any lock, so
readers holding snapshots never block — and are never torn by —
concurrent commits (MVCC snapshot isolation).  The working catalog
this class mutates in place is private to it; committed versions hold
copies of whatever changed.
"""

from __future__ import annotations

import warnings
from collections.abc import Hashable, Sequence

from repro.core.errors import (
    EvaluationError,
    ReproTypeError,
    SchemaError,
    StorageError,
)
from repro.core.negation import DEFAULT_MAX_EXTENSIONS
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import GeneralizedRelation, Schema
from repro.query.ast import Query
from repro.query.catalog import CatalogVersion, Snapshot, VersionedCatalog
from repro.query.evaluator import Evaluator
from repro.query.parser import Directive, parse_query, split_directive


class Database:
    """A collection of named generalized relations, plus query evaluation.

    Example::

        db = Database()
        db.create("Train", temporal=["dep", "arr"], data=["service"])
        db.relation("Train").add_tuple(
            ["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"]
        )
        assert db.ask('EXISTS d. EXISTS a. Train(d, a, "slow") & d >= 60')
    """

    def __init__(
        self,
        max_tuples: int = DEFAULT_MAX_TUPLES,
        max_extensions: int = DEFAULT_MAX_EXTENSIONS,
    ) -> None:
        self._relations: dict[str, GeneralizedRelation] = {}
        self.max_tuples = max_tuples
        self.max_extensions = max_extensions
        self._engine = None
        self._core = VersionedCatalog()
        self._closed = False

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: str,
        *,
        create: bool = True,
        max_tuples: int = DEFAULT_MAX_TUPLES,
        max_extensions: int = DEFAULT_MAX_EXTENSIONS,
    ) -> Database:
        """Open a durable database stored at ``path``.

        Runs crash recovery (snapshot load + committed-WAL replay; see
        :mod:`repro.storage.engine`) and returns a database whose
        catalog is exactly the last committed state.  With ``create``
        (the default) a missing path is initialized to an empty
        database.  Mutations stay in memory until :meth:`commit`;
        :meth:`close` (or the context-manager exit) releases the store
        without committing.

        Example::

            with Database.open("trains.db") as db:
                db.create("Train", temporal=["dep", "arr"])
                db.relation("Train").add_tuple(["2 + 60n", "80 + 60n"])
                db.commit()
        """
        from repro.storage.engine import StorageEngine

        engine = StorageEngine.open(path, create=create)
        db = cls(max_tuples=max_tuples, max_extensions=max_extensions)
        # The working catalog gets independently mutable copies; the
        # recovered relations themselves seed committed version 0, so
        # in-place mutation of the working state can never reach a
        # pinned snapshot.
        db._relations = {
            name: rel.copy() for name, rel in engine.relations.items()
        }
        db._engine = engine
        db._core = VersionedCatalog(engine=engine, base=engine.relations)
        return db

    @property
    def persistent(self) -> bool:
        """Whether this database is backed by a durable store."""
        return self._engine is not None

    @property
    def storage(self):
        """The backing :class:`~repro.storage.engine.StorageEngine`.

        ``None`` for a purely in-memory database.
        """
        return self._engine

    def _require_engine(self):
        if self._engine is None:
            raise SchemaError(
                "this database is in-memory only; use Database.open(path) "
                "for durability"
            )
        return self._engine

    def _check_open(self) -> None:
        """Reject use of a persistent database after :meth:`close`.

        A closed handle's working catalog is stale by definition —
        silently querying it (or worse, raising ``AttributeError`` from
        a half-torn-down engine) was the use-after-close bug this guard
        fixes; every catalog and query entry point now raises a clean
        :class:`~repro.core.errors.StorageError` instead.
        """
        if self._engine is not None and self._engine._crashed:
            raise StorageError(
                "engine crashed (injected fault); reopen the database"
            )
        if self._closed:
            raise StorageError(
                "database is closed; reopen it with Database.open(path)"
            )

    def commit(self) -> int:
        """Durably persist the current catalog (requires :meth:`open`).

        Returns the number of WAL mutation records appended (0 when the
        catalog is unchanged since the last commit).  Atomic under
        crashes: recovery yields either the previous or the new
        committed state, never a mixture.  Publishes a new immutable
        :class:`~repro.query.catalog.CatalogVersion`; snapshots pinned
        before the commit keep seeing the old one.
        """
        self._check_open()
        self._require_engine()
        version, records = self._core.commit_state(self._relations)
        self._sync_views(version)
        return records

    def compact(self) -> str:
        """Fold the committed WAL into a fresh snapshot; truncate the log.

        Returns the new snapshot's file name.  Uncommitted in-memory
        changes are unaffected (and remain uncommitted).
        """
        self._check_open()
        return self._require_engine().compact()

    def close(self) -> None:
        """Release the durable store, if any (idempotent, no commit).

        A *persistent* database becomes unusable after close: any
        further query or catalog call raises
        :class:`~repro.core.errors.StorageError`.  Closing an
        in-memory database is a no-op.
        """
        if self._engine is not None:
            self._engine.close()
            self._closed = True

    @property
    def version(self) -> int:
        """The committed catalog version token (monotone per commit)."""
        return self._core.version

    def snapshot(self) -> Snapshot:
        """Pin a read-only MVCC snapshot of the committed catalog.

        For a durable database this is the last committed version — a
        single lock-free pointer read, so pinning (and querying the
        pin) never blocks concurrent committers, and later commits
        never show through.  For an in-memory database it is a
        point-in-time copy of the current working catalog.  Uncommitted
        working-state mutations are never visible in a snapshot of a
        durable database.
        """
        self._check_open()
        if self._engine is None:
            version = CatalogVersion(
                self._core.version,
                {
                    name: rel.copy()
                    for name, rel in self._relations.items()
                },
            )
        else:
            version = self._core.current()
        return Snapshot(
            version,
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
        )

    def __enter__(self) -> Database:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # deductive programs and streaming appends
    # ------------------------------------------------------------------

    def install_program(self, program, *, verify: bool = False):
        """Install a deductive program; keep its IDB materialized.

        Commits the current working catalog, stratifies ``program``
        against it, and materializes every IDB predicate as a
        *materialized view*: an ordinary relation riding in each
        committed :class:`~repro.query.catalog.CatalogVersion`, kept
        consistent by every subsequent :meth:`commit` /
        :meth:`append_stream` (incrementally where the change is
        insert-only, by stratum recomputation otherwise).  Views are
        queryable like any relation but cannot be created, registered,
        dropped or mutated directly.

        On a reopened durable database, views persisted by a previous
        process are adopted without recomputation when their schemas
        match; ``verify=True`` forces recomputation (repairing any
        divergence).  Returns the
        :class:`~repro.deductive.incremental.RefreshReport` of the
        initial materialization, or ``None`` when adoption skipped it.
        """
        self._check_open()
        self._core.commit_state(self._relations)
        version, report = self._core.install_program(
            program,
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
            verify=verify,
        )
        self._sync_views(version)
        return report

    def append_stream(self, name: str, tuples) -> int:
        """Append a batch of generalized tuples as one transaction.

        The streaming ingest path: flushes pending working-catalog
        changes, then commits the batch through the transactional
        core's group-commit protocol — one WAL append run, one fsync,
        and (with a program installed) one incremental view refresh for
        the whole batch, which is what amortizes maintenance cost over
        burst ingest.  ``tuples`` may hold
        :class:`~repro.core.tuples.GeneralizedTuple` values or jsonio
        tuple entries (``{"lrps": [[offset, period], ...], "bounds":
        [...], "data": [...]}``).  Returns the number of WAL mutation
        records the transaction appended.
        """
        self._check_open()
        self._core.commit_state(self._relations)
        mutations = [
            {"op": "insert", "name": name, "tuple": _tuple_entry(t)}
            for t in tuples
        ]
        result = self._core.commit_mutations([mutations])[0]
        if result.error is not None:
            raise result.error
        current = self._core.current()
        if name in current:
            self._relations[name] = current.relation(name).copy()
        self._sync_views(current)
        return result.records

    @property
    def program(self):
        """The installed deductive program, or ``None``."""
        maintainer = self._core.maintainer
        return maintainer.program if maintainer is not None else None

    @property
    def view_names(self) -> tuple[str, ...]:
        """Names of the installed program's materialized views."""
        return self._core.view_names

    def views(self) -> dict[str, int]:
        """Materialized views and their freshness watermarks.

        Maps each view name to the committed version token whose EDB
        state it was last refreshed against (see
        :attr:`CatalogVersion.view_watermarks
        <repro.query.catalog.CatalogVersion.view_watermarks>`).
        Empty when no program is installed.
        """
        self._check_open()
        return dict(self._core.current().view_watermarks)

    def _sync_views(self, version) -> None:
        """Mirror committed views into the working catalog.

        The working catalog is what :meth:`query` reads, so after any
        commit that refreshed views the mirrors must follow.  Copies
        keep a caller who grabs the relation object from reaching into
        the committed version.
        """
        for view in self._core.view_names:
            if view in version:
                self._relations[view] = version.relation(view).copy()

    def _guard_view(self, name: str) -> None:
        if name in self._core.view_names:
            raise SchemaError(
                f"relation {name!r} is a materialized view of the "
                "installed deductive program; mutate its input "
                "relations instead"
            )

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------

    def create(
        self,
        name: str,
        *args: Sequence[str],
        temporal: Sequence[str] = (),
        data: Sequence[str] = (),
    ) -> GeneralizedRelation:
        """Create and register an empty relation.

        ``temporal`` and ``data`` are keyword-only: ``create("Train",
        temporal=["dep", "arr"], data=["service"])``.  The old
        positional form still works for one release but emits a
        :class:`DeprecationWarning`.
        """
        self._check_open()
        if args:
            warnings.warn(
                "positional temporal/data arguments to Database.create() "
                "are deprecated; use create(name, temporal=..., data=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > 2 or (len(args) == 2 and data):
                raise ReproTypeError(
                    "create() takes at most temporal and data column lists"
                )
            if temporal:
                raise ReproTypeError(
                    "create() got temporal columns both positionally and "
                    "by keyword"
                )
            temporal = args[0]
            if len(args) == 2:
                data = args[1]
        self._guard_view(name)
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        rel = GeneralizedRelation.empty(Schema.make(temporal, data))
        self._relations[name] = rel
        return rel

    def register(self, name: str, relation: GeneralizedRelation) -> None:
        """Register an existing relation under ``name`` (replacing any)."""
        self._check_open()
        self._guard_view(name)
        self._relations[name] = relation

    def relation(self, name: str) -> GeneralizedRelation:
        """Look up a relation by name."""
        self._check_open()
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r}") from None

    def drop(self, name: str) -> None:
        """Remove a relation from the catalog."""
        self._check_open()
        self._guard_view(name)
        if name not in self._relations:
            raise EvaluationError(f"unknown relation {name!r}")
        del self._relations[name]

    @property
    def names(self) -> tuple[str, ...]:
        """Registered relation names, in insertion order."""
        return tuple(self._relations)

    def schemas(self) -> dict[str, Schema]:
        """Name-to-schema mapping (what the query parser needs)."""
        return {name: rel.schema for name, rel in self._relations.items()}

    def active_data_domain(self) -> set[Hashable]:
        """All data values stored anywhere in the database."""
        out: set[Hashable] = set()
        for rel in self._relations.values():
            out |= rel.active_data_domain()
        return out

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    def parse(self, text: str) -> Query:
        """Parse a query against the catalog's schemas."""
        self._check_open()
        return parse_query(text, self.schemas())

    def _evaluator(self, *, engine=None, optimize=None) -> Evaluator:
        return Evaluator(
            dict(self._relations),
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
            engine=engine,
            optimize=optimize,
        )

    def query(self, query: str | Query, *, engine=None, optimize=None):
        """Evaluate a query; the result schema is the free variables.

        A query string may carry a leading directive: ``EXPLAIN <q>``
        returns the plan (see :meth:`explain`), ``EXPLAIN ANALYZE
        <q>`` the instrumented :class:`~repro.query.explain.QueryTrace`
        (span tree, timings, result), and ``MINIMIZE <obj> : <q>`` /
        ``MAXIMIZE <obj> : <q>`` the exact extremum of a linear
        objective as an :class:`~repro.optimize.core.
        OptimizationResult` (see :meth:`optimize` and
        ``docs/optimization.md``).  ``EXPLAIN [ANALYZE] MINIMIZE ...``
        composes.  Plain queries return the result relation.

        ``engine`` selects a registered execution engine by name,
        ``optimize`` toggles the plan rewrite passes; both default to
        the global configuration (``REPRO_ENGINE`` /
        ``REPRO_OPTIMIZE``).  Optimization never changes results, only
        how they are computed.
        """
        self._check_open()
        if isinstance(query, str):
            directive, text = split_directive(query)
            if directive in (Directive.EXPLAIN, Directive.EXPLAIN_ANALYZE):
                inner, rest = split_directive(text)
                if inner in (Directive.MINIMIZE, Directive.MAXIMIZE):
                    from repro.optimize import parse_objective
                    from repro.query.explain import optimize_trace

                    objective, qtext = parse_objective(rest)
                    trace = optimize_trace(
                        self,
                        qtext,
                        objective,
                        "min" if inner is Directive.MINIMIZE else "max",
                        engine=engine,
                        optimize=optimize,
                    )
                    if directive is Directive.EXPLAIN_ANALYZE:
                        return trace
                    return trace.plan_only()
                if directive is Directive.EXPLAIN:
                    return self.explain(text, engine=engine, optimize=optimize)
                return self.trace(text, engine=engine, optimize=optimize)
            if directive in (Directive.MINIMIZE, Directive.MAXIMIZE):
                sense = "min" if directive is Directive.MINIMIZE else "max"
                return self.optimize(
                    text, sense=sense, engine=engine, optimize=optimize
                )
            query = self.parse(text)
        return self._evaluator(engine=engine, optimize=optimize).evaluate(query)

    def optimize(
        self,
        query: str | Query,
        objective=None,
        *,
        sense: str = "min",
        engine=None,
        optimize=None,
    ):
        """Exact extremum of a linear objective over a query's result.

        ``objective`` is a :class:`repro.optimize.Objective` or its
        text form (``"t"``, ``"arr - dep"``); its variables must be
        free temporal variables of the query.  When ``query`` is a
        string and ``objective`` is ``None``, the objective is read
        from the query's own ``<obj> : <query>`` prefix (the
        ``MINIMIZE``/``MAXIMIZE`` directive body).  ``sense`` is
        ``"min"`` or ``"max"``.

        Returns an :class:`~repro.optimize.core.OptimizationResult`:
        the exact optimum with a concrete witness point and the argopt
        tuple, an unboundedness certificate, or an empty verdict —
        never an approximation (``docs/optimization.md``).
        """
        self._check_open()
        from repro.obs import metrics
        from repro.optimize import Objective, parse_objective

        metrics().counter("optimize.queries").inc()
        if isinstance(query, str):
            directive, text = split_directive(query)
            if directive is Directive.MINIMIZE:
                sense = "min"
            elif directive is Directive.MAXIMIZE:
                sense = "max"
            if objective is None:
                objective, text = parse_objective(text)
            query = self.parse(text)
        if objective is None:
            raise EvaluationError(
                "optimize() needs an objective (a variable name or a "
                "difference 'a - b')"
            )
        if isinstance(objective, str):
            objective = Objective.parse(objective)
        evaluator = self._evaluator(engine=engine, optimize=optimize)
        return evaluator.optimize_query(query, objective, sense)

    def ask(self, query: str | Query, *, engine=None, optimize=None) -> bool:
        """Evaluate a closed (yes/no) query — Theorem 4.1's setting."""
        self._check_open()
        if isinstance(query, str):
            query = self.parse(query)
        return self._evaluator(engine=engine, optimize=optimize).ask(query)

    def plan(self, query: str | Query, *, engine=None, optimize=None):
        """Statically plan ``query`` without executing it.

        Returns a frozen :class:`~repro.plan.report.PlanReport`: the
        lowered plan, the optimized plan (when optimization resolves
        on) and the per-pass rewrite deltas.
        """
        from repro.query.explain import plan_report

        return plan_report(self, query, engine=engine, optimize=optimize)

    def explain(self, query: str | Query, *, engine=None, optimize=None):
        """Record the algebraic plan of ``query`` (it really runs).

        With optimization off (the default), returns the legacy
        span-projected :class:`repro.query.explain.PlanNode`; with it
        on, a :class:`~repro.plan.report.PlanReport` whose nodes are
        annotated with observed output sizes and whose ``passes`` show
        what each rewrite changed.  ``str()`` renders either.
        """
        from repro.query.explain import explain_plan, plan_report

        resolved = optimize
        if resolved is None:
            from repro.perf.config import get_config

            resolved = get_config().optimize
        if resolved:
            return plan_report(
                self, query, engine=engine, optimize=True, execute=True
            )
        return explain_plan(self, query, engine=engine, optimize=False)

    def trace(self, query: str | Query, *, engine=None, optimize=None):
        """EXPLAIN ANALYZE: evaluate ``query`` under the trace recorder.

        Returns a :class:`repro.query.explain.QueryTrace` holding the
        result relation, the full span tree (per-operator tuple counts,
        pairwise combinations, prefilter rejections, cache hits,
        normalization expansions, wall times), the annotated plan, a
        text flamegraph and JSON export.
        """
        from repro.query.explain import explain_analyze

        return explain_analyze(self, query, engine=engine, optimize=optimize)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __repr__(self) -> str:
        return f"<Database relations={list(self._relations)}>"


def _tuple_entry(value) -> dict:
    """Normalize one :meth:`Database.append_stream` item to a jsonio entry."""
    from repro.core.tuples import GeneralizedTuple

    if isinstance(value, GeneralizedTuple):
        return {
            "lrps": [[lrp.offset, lrp.period] for lrp in value.lrps],
            "bounds": [
                [i, j, bound] for i, j, bound in value.dbm.iter_bounds()
            ],
            "data": list(value.data),
        }
    if isinstance(value, dict):
        return value
    raise ReproTypeError(
        "append_stream items must be GeneralizedTuple values or jsonio "
        f"tuple entries, not {type(value).__name__}"
    )
