"""The MVCC transactional core: immutable committed catalog versions.

The paper's finite-representation semantics (Defs. 2.1–2.3) makes a
committed catalog a *value*: a finite set of generalized relations that
never changes after commit.  This module leans on that to give the
database multi-version concurrency control essentially for free:

* a :class:`CatalogVersion` is one committed catalog state, stamped
  with a monotone version token and frozen — its relations are never
  mutated after construction (commit copies only the relations that
  changed, so consecutive versions share unchanged relation objects);
* a :class:`Snapshot` pins one version and evaluates queries against
  it — **lock-free**: pinning is a single pointer read, so readers
  never block writers and writers never block readers;
* a :class:`VersionedCatalog` is the transactional core both the
  in-process :class:`~repro.query.database.Database` and the served
  path (:mod:`repro.serve`) commit through: one writer lock serializes
  commits, and :meth:`VersionedCatalog.commit_mutations` implements
  the group-commit protocol — many writers' transactions applied in
  arrival order and made durable by one WAL append run + one fsync
  (:meth:`repro.storage.engine.StorageEngine.commit_many`).

Mutations are plain JSON-shaped dicts (the same shape the wire
protocol carries)::

    {"op": "create", "name": "Train", "temporal": ["dep"], "data": []}
    {"op": "insert", "name": "Train", "lrps": ["2 + 60n"],
     "constraints": "dep >= 0", "data": []}
    {"op": "drop", "name": "Train"}
    {"op": "put", "name": "Train", "relation": {...jsonio payload...}}

Applying a batch never touches the committed version it starts from:
each touched relation is copied first (:meth:`GeneralizedRelation.copy
<repro.core.relations.GeneralizedRelation.copy>`), which is what makes
a pinned snapshot immune to every later commit.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from types import MappingProxyType

from repro.core.errors import (
    EvaluationError,
    ReproError,
    ReproTypeError,
    SchemaError,
)
from repro.core.relations import GeneralizedRelation, Schema


class CatalogVersion:
    """One immutable committed catalog state with a version token.

    Treat instances as frozen values: the relation mapping is exposed
    read-only, and the engine never mutates a relation reachable from a
    committed version (commit installs copies of changed relations).

    When a deductive program is installed
    (:meth:`VersionedCatalog.install_program`), the version also
    carries the program's materialized IDB views *as ordinary
    relations* plus per-view input-version watermarks: the version
    token whose EDB state each view was last refreshed against.
    Because commit refreshes views in the same critical section that
    publishes the version, every committed version is self-consistent
    — a pinned snapshot always reads views computed from exactly the
    EDB it sees.
    """

    __slots__ = ("version", "_relations", "_view_watermarks")

    def __init__(
        self,
        version: int,
        relations: Mapping[str, GeneralizedRelation],
        *,
        view_watermarks: Mapping[str, int] | None = None,
    ) -> None:
        self.version = version
        self._relations = dict(relations)
        self._view_watermarks = dict(view_watermarks or {})

    @property
    def relations(self) -> Mapping[str, GeneralizedRelation]:
        """The committed relations, as a read-only mapping."""
        return MappingProxyType(self._relations)

    @property
    def view_watermarks(self) -> Mapping[str, int]:
        """Materialized-view freshness: view name -> input version token.

        Empty when no program is installed.  A watermark equal to
        :attr:`version` means the view was refreshed by the commit that
        published this very version; a lower watermark means the
        intervening commits did not touch the view's inputs (the view
        object is shared with the older version).
        """
        return MappingProxyType(self._view_watermarks)

    @property
    def names(self) -> tuple[str, ...]:
        """Relation names in this version, in insertion order."""
        return tuple(self._relations)

    def relation(self, name: str) -> GeneralizedRelation:
        """Look up one relation; unknown names raise ``EvaluationError``."""
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(f"unknown relation {name!r}") from None

    def schemas(self) -> dict[str, Schema]:
        """Name-to-schema mapping (what the query parser needs)."""
        return {name: rel.schema for name, rel in self._relations.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        return (
            f"<CatalogVersion v{self.version} "
            f"relations={list(self._relations)}>"
        )


class Snapshot:
    """A pinned, read-only view of one committed catalog version.

    Obtained from :meth:`Database.snapshot
    <repro.query.database.Database.snapshot>` (or per served
    connection via the wire protocol's ``snapshot`` op).  All reads —
    :meth:`query`, :meth:`ask`, :meth:`relation` — see exactly the
    pinned version, no matter how many commits land after the pin:
    snapshot isolation, without ever taking the writer lock.
    """

    __slots__ = ("_version", "max_tuples", "max_extensions")

    def __init__(
        self,
        version: CatalogVersion,
        *,
        max_tuples: int,
        max_extensions: int,
    ) -> None:
        self._version = version
        self.max_tuples = max_tuples
        self.max_extensions = max_extensions

    @property
    def version(self) -> int:
        """The pinned version token."""
        return self._version.version

    @property
    def names(self) -> tuple[str, ...]:
        """Relation names in the pinned version."""
        return self._version.names

    def relation(self, name: str) -> GeneralizedRelation:
        """Look up a relation in the pinned version."""
        return self._version.relation(name)

    def schemas(self) -> dict[str, Schema]:
        """Name-to-schema mapping of the pinned version."""
        return self._version.schemas()

    def parse(self, text: str):
        """Parse a query against the pinned version's schemas."""
        from repro.query.parser import parse_query

        return parse_query(text, self.schemas())

    def _evaluator(self, *, engine=None, optimize=None):
        from repro.query.evaluator import Evaluator

        return Evaluator(
            dict(self._version.relations),
            max_tuples=self.max_tuples,
            max_extensions=self.max_extensions,
            engine=engine,
            optimize=optimize,
        )

    def query(self, query, *, engine=None, optimize=None):
        """Evaluate a query against the pinned version.

        Accepts a query string or AST; returns the result relation.
        A ``MINIMIZE <obj> : <q>`` / ``MAXIMIZE <obj> : <q>`` directive
        returns the :class:`~repro.optimize.core.OptimizationResult`
        instead (the served ``query`` op ships both faces).  Unlike
        :meth:`Database.query <repro.query.database.Database.query>`
        this never sees uncommitted working-state mutations — only the
        pinned committed catalog.
        """
        if isinstance(query, str):
            from repro.query.parser import Directive, split_directive

            directive, text = split_directive(query)
            if directive in (Directive.MINIMIZE, Directive.MAXIMIZE):
                sense = "min" if directive is Directive.MINIMIZE else "max"
                return self.optimize(
                    text, sense=sense, engine=engine, optimize=optimize
                )
            query = self.parse(text)
        return self._evaluator(engine=engine, optimize=optimize).evaluate(
            query
        )

    def optimize(
        self, query, objective=None, *, sense="min", engine=None, optimize=None
    ):
        """Exact extremum of a linear objective over the pinned version.

        Mirrors :meth:`Database.optimize
        <repro.query.database.Database.optimize>`: ``objective`` is an
        :class:`~repro.optimize.Objective`, its text form, or ``None``
        to read it from the query's ``<obj> : <query>`` prefix.
        """
        from repro.obs import metrics
        from repro.optimize import Objective, parse_objective
        from repro.query.parser import Directive, split_directive

        metrics().counter("optimize.queries").inc()
        if isinstance(query, str):
            directive, text = split_directive(query)
            if directive is Directive.MINIMIZE:
                sense = "min"
            elif directive is Directive.MAXIMIZE:
                sense = "max"
            if objective is None:
                objective, text = parse_objective(text)
            query = self.parse(text)
        if objective is None:
            from repro.core.errors import EvaluationError

            raise EvaluationError(
                "optimize() needs an objective (a variable name or a "
                "difference 'a - b')"
            )
        if isinstance(objective, str):
            objective = Objective.parse(objective)
        evaluator = self._evaluator(engine=engine, optimize=optimize)
        return evaluator.optimize_query(query, objective, sense)

    def ask(self, query, *, engine=None, optimize=None) -> bool:
        """Evaluate a closed (yes/no) query against the pinned version."""
        if isinstance(query, str):
            query = self.parse(query)
        return self._evaluator(engine=engine, optimize=optimize).ask(query)

    def __contains__(self, name: str) -> bool:
        return name in self._version

    def __repr__(self) -> str:
        return (
            f"<Snapshot v{self.version} relations={list(self.names)}>"
        )


@dataclass
class TxnResult:
    """The outcome of one transaction in a group-commit batch.

    Exactly one of the two shapes: success (``error is None``) carries
    the version token the transaction committed as and how many WAL
    mutation records it appended (0 for a no-op); failure carries the
    :class:`~repro.core.errors.ReproError` that aborted *this*
    transaction — other transactions in the batch are unaffected.
    """

    version: int
    records: int = 0
    error: ReproError | None = None

    @property
    def ok(self) -> bool:
        """Whether the transaction committed."""
        return self.error is None


def apply_mutations(
    relations: Mapping[str, GeneralizedRelation],
    mutations: Sequence[Mapping],
    *,
    protected: frozenset[str] | set[str] = frozenset(),
) -> dict[str, GeneralizedRelation]:
    """Apply one transaction's mutation list to a catalog state.

    Pure with respect to its input: returns a *new* name-to-relation
    dict, copying each touched relation before modifying it, so the
    input state (typically a committed version) is never altered.
    Raises the usual catalog errors (:class:`SchemaError` for a
    duplicate ``create``, :class:`EvaluationError` for an unknown name,
    parse errors from malformed tuple text) — the caller treats any
    :class:`~repro.core.errors.ReproError` as aborting the transaction.

    ``protected`` names (the installed program's materialized views)
    may not be targeted by any mutation: views are derived state, kept
    consistent by the commit path itself.
    """
    state = dict(relations)
    touched: set[str] = set()
    for mutation in mutations:
        try:
            op = mutation["op"]
        except (TypeError, KeyError):
            raise ReproTypeError(
                f"malformed mutation {mutation!r}: missing 'op'"
            ) from None
        name = _name_of(mutation)
        if name in protected:
            raise SchemaError(
                f"relation {name!r} is a materialized view of the "
                "installed deductive program; mutate its input "
                "relations instead"
            )
        if op == "create":
            if name in state:
                raise SchemaError(f"relation {name!r} already exists")
            schema = Schema.make(
                tuple(mutation.get("temporal") or ()),
                tuple(mutation.get("data") or ()),
            )
            state[name] = GeneralizedRelation.empty(schema)
            touched.add(name)
        elif op == "insert":
            if name not in state:
                raise EvaluationError(f"unknown relation {name!r}")
            if name not in touched:
                state[name] = state[name].copy()
                touched.add(name)
            _insert_into(state[name], mutation)
        elif op == "drop":
            if name not in state:
                raise EvaluationError(f"unknown relation {name!r}")
            del state[name]
            touched.discard(name)
        elif op == "put":
            from repro.storage import jsonio

            state[name] = jsonio.relation_from_dict(mutation["relation"])
            touched.add(name)
        else:
            raise ReproTypeError(f"unknown mutation op {op!r}")
    return state


def _insert_into(
    relation: GeneralizedRelation, mutation: Mapping
) -> None:
    """Apply one ``insert`` mutation to an (already copied) relation.

    Two payload shapes are accepted.  The friendly text form carries
    ``lrps`` as LRP strings plus a ``constraints`` string naming the
    schema's temporal attributes.  The structural ``tuple`` form is a
    jsonio tuple entry (``lrps`` as ``[offset, period]`` pairs, raw DBM
    ``bounds``, ``data`` scalars) — what the streaming append path
    (:meth:`repro.query.database.Database.append_stream`) batches over
    the wire, skipping per-tuple text parsing entirely.
    """
    entry = mutation.get("tuple")
    if entry is None:
        relation.add_tuple(
            list(mutation.get("lrps") or ()),
            mutation.get("constraints") or "",
            tuple(mutation.get("data") or ()),
        )
        return
    from repro.core.dbm import DBM
    from repro.core.lrp import LRP
    from repro.core.tuples import GeneralizedTuple

    try:
        lrps = tuple(
            LRP.make(offset, period) for offset, period in entry["lrps"]
        )
        dbm = DBM(len(lrps))
        for i, j, bound in entry.get("bounds") or ():
            if i >= 0 and j >= 0:
                dbm.add_difference(i, j, bound)
            elif j < 0:
                dbm.add_upper(i, bound)
            else:
                dbm.add_lower(j, -bound)
        gtuple = GeneralizedTuple(
            lrps=lrps, dbm=dbm, data=tuple(entry.get("data") or ())
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproTypeError(
            f"malformed tuple entry in insert mutation: {exc}"
        ) from exc
    relation.add(gtuple)


def _name_of(mutation: Mapping) -> str:
    try:
        return mutation["name"]
    except KeyError:
        raise ReproTypeError(
            f"malformed mutation {dict(mutation)!r}: missing 'name'"
        ) from None


class VersionedCatalog:
    """The transactional core: committed versions behind one writer lock.

    Holds the current :class:`CatalogVersion` behind a single atomic
    pointer — :meth:`current` is a lock-free read, which is the whole
    MVCC story for readers.  Writers serialize on an internal lock:

    * :meth:`commit_state` — the in-process path: commit a full working
      catalog as one transaction (one fsync);
    * :meth:`commit_mutations` — the served group-commit path: a batch
      of transactions, each a mutation list, applied in order and made
      durable by **one** fsync via
      :meth:`~repro.storage.engine.StorageEngine.commit_many`.

    With no engine the same versioning semantics hold purely in memory
    (version tokens count from 0), so the serving layer can run
    diskless for tests and ephemeral workloads.
    """

    def __init__(
        self,
        engine=None,
        base: Mapping[str, GeneralizedRelation] | None = None,
    ) -> None:
        self._engine = engine
        token = engine.version if engine is not None else 0
        self._committed = CatalogVersion(token, dict(base or {}))
        self._write_lock = threading.Lock()
        self._maintainer = None

    @property
    def engine(self):
        """The backing storage engine, or ``None`` for in-memory."""
        return self._engine

    @property
    def maintainer(self):
        """The installed view maintainer, or ``None``.

        Set by :meth:`install_program`; a
        :class:`~repro.deductive.incremental.ViewMaintainer` holding
        the program's stratification and view schemas.
        """
        return self._maintainer

    @property
    def view_names(self) -> tuple[str, ...]:
        """Names of the installed program's materialized views."""
        if self._maintainer is None:
            return ()
        return self._maintainer.view_names

    def install_program(
        self,
        program,
        *,
        max_tuples: int,
        max_extensions: int,
        verify: bool = False,
    ) -> tuple[CatalogVersion, object]:
        """Install a deductive program; materialize its IDB as views.

        Stratifies ``program`` against the committed EDB schemas,
        materializes every IDB predicate, and publishes a new
        :class:`CatalogVersion` in which the views ride as ordinary
        relations (so snapshots, wire queries and WAL persistence all
        work unchanged) with per-view watermarks.  From then on every
        commit — :meth:`commit_state` and each transaction of
        :meth:`commit_mutations` — refreshes the views inside the same
        critical section that publishes the version.

        Committed relations that already carry a view's name are
        **adopted** when their schema matches the declared IDB schema —
        that is the reopen path: views persisted by an earlier process
        are picked up without recomputation.  ``verify=True`` forces a
        from-scratch recomputation instead (repairing any divergence);
        a same-name relation with a *different* schema raises
        :class:`SchemaError`.  Returns the published version and the
        :class:`~repro.deductive.incremental.RefreshReport` (``None``
        when adoption skipped evaluation).
        """
        from repro.deductive.incremental import ViewMaintainer

        with self._write_lock:
            previous = self._committed
            old_views = (
                set(self._maintainer.view_names)
                if self._maintainer is not None
                else set()
            )
            base_state = {
                name: rel
                for name, rel in previous.relations.items()
                if name not in old_views
            }
            candidates = {
                name: base_state.pop(name)
                for name in list(base_state)
                if name in program.idb_names
            }
            maintainer = ViewMaintainer(
                program,
                {name: rel.schema for name, rel in base_state.items()},
                max_tuples=max_tuples,
                max_extensions=max_extensions,
            )
            for name, rel in candidates.items():
                if rel.schema != maintainer.view_schemas[name]:
                    raise SchemaError(
                        f"existing relation {name!r} does not match the "
                        "program's declared schema for that view"
                    )
            report = None
            if (
                not verify
                and len(candidates) == len(maintainer.view_names)
            ):
                views = dict(candidates)
            else:
                views, report = maintainer.initialize(base_state)
            changed = [
                name
                for name, view in views.items()
                if name not in previous or previous.relation(name) != view
            ]
            frozen = dict(base_state)
            frozen.update(views)
            if self._engine is not None and changed:
                self._engine.commit_many([frozen], changed=[set(changed)])
                token = self._engine.version
            elif changed:
                token = previous.version + 1
            else:
                token = previous.version
            watermarks = {name: token for name in maintainer.view_names}
            version = CatalogVersion(
                token, frozen, view_watermarks=watermarks
            )
            self._maintainer = maintainer
            self._committed = version
            return version, report

    @property
    def version(self) -> int:
        """The current committed version token (lock-free read)."""
        return self._committed.version

    def current(self) -> CatalogVersion:
        """The current committed version — a single pointer read.

        Readers pin snapshots by holding the returned object; no lock
        is taken, so this never waits on an in-flight commit and an
        in-flight commit never waits on readers.
        """
        return self._committed

    def commit_state(
        self, relations: Mapping[str, GeneralizedRelation]
    ) -> tuple[CatalogVersion, int]:
        """Commit a full catalog state as one transaction.

        Diffs ``relations`` against the committed version, persists the
        transaction when an engine is attached (one WAL append run, one
        fsync), and publishes a new :class:`CatalogVersion` holding
        *copies* of the changed relations — the caller keeps mutating
        its working objects without ever reaching into the version.
        Returns ``(version, records)``; a no-op commit returns the
        current version with 0 records.

        With a program installed, names of materialized views in
        ``relations`` are ignored (views are derived state); instead
        the changed program inputs are diffed into insert/:data:`DIRTY
        <repro.deductive.incremental.DIRTY>` deltas and the views
        refreshed before the version is published, so the committed
        state is always self-consistent.  Dropping a program input
        raises :class:`SchemaError` (the whole commit fails).
        """
        with self._write_lock:
            previous = self._committed
            maintainer = self._maintainer
            view_names = (
                set(maintainer.view_names)
                if maintainer is not None
                else set()
            )
            incoming = {
                name: rel
                for name, rel in relations.items()
                if name not in view_names
            }
            changed = [
                name
                for name, rel in incoming.items()
                if name not in previous
                or previous.relation(name) != rel
            ]
            dropped = [
                name
                for name in previous.names
                if name not in incoming and name not in view_names
            ]
            if maintainer is not None:
                for name in dropped:
                    if name in maintainer.input_names:
                        raise SchemaError(
                            f"cannot drop relation {name!r}: it is an "
                            "input of the installed deductive program"
                        )
            if not changed and not dropped:
                return previous, 0
            frozen = {
                name: (
                    rel.copy()
                    if name in changed
                    else previous.relation(name)
                )
                for name, rel in incoming.items()
            }
            hint = set(changed)
            watermarks = dict(previous.view_watermarks)
            changed_views: list[str] = []
            if maintainer is not None:
                deltas = _input_deltas(
                    maintainer, previous.relations, frozen, changed
                )
                old_views = {
                    name: previous.relation(name)
                    for name in view_names
                    if name in previous
                }
                views, _report = maintainer.refresh(
                    frozen, old_views, deltas
                )
                # refresh carries untouched views over by reference, so
                # identity is a sound changed-view test.
                for name, view in views.items():
                    if view is not old_views.get(name):
                        changed_views.append(name)
                        hint.add(name)
                    frozen[name] = view
            if self._engine is not None:
                # The engine receives the frozen copies (never the
                # caller's still-mutable working objects) plus the
                # changed-name hint, so its diff only serializes what
                # this commit touched.
                records = self._engine.commit_many(
                    [frozen], changed=[hint]
                )[0]
                token = self._engine.version
            else:
                records = len(changed) + len(dropped) + len(changed_views)
                token = previous.version + 1
            for name in changed_views:
                watermarks[name] = token
            version = CatalogVersion(
                token, frozen, view_watermarks=watermarks
            )
            self._committed = version
            return version, records

    def commit_mutations(
        self, batches: Sequence[Sequence[Mapping]]
    ) -> list[TxnResult]:
        """Group commit: one transaction per mutation batch, one fsync.

        Applies each batch in order on top of its predecessor's state
        (:func:`apply_mutations`); a batch that raises a
        :class:`~repro.core.errors.ReproError` aborts only itself —
        subsequent batches apply against the last good state, exactly
        as if the failed transaction had never been submitted.  All
        surviving transactions are then made durable by a single
        :meth:`~repro.storage.engine.StorageEngine.commit_many` call
        (one fsync) and the committed pointer swings once, to the last
        state.  Returns one :class:`TxnResult` per input batch, in
        order.

        Equivalence guarantee (tested by the hypothesis suite): the
        final committed state equals committing the same batches one by
        one through :meth:`commit_state` application order — group
        commit changes only durability batching, never semantics.

        When a program is installed, each transaction's views are
        refreshed *inside* that transaction — mutation batches that
        only insert into program inputs fold into the views by
        semi-naive delta evaluation, which is what lets the group
        commit amortize view maintenance across a burst of appends.
        Every intermediate state handed to the WAL therefore carries
        fresh views, so crash recovery can never surface a stale view.
        Mutations that target a view, or drop a program input, abort
        (only) their own transaction.
        """
        with self._write_lock:
            previous = self._committed
            maintainer = self._maintainer
            view_names = (
                set(maintainer.view_names)
                if maintainer is not None
                else set()
            )
            base = dict(previous.relations)
            states: list[dict[str, GeneralizedRelation]] = []
            hints: list[set[str]] = []
            slots: list[ReproError | int] = []
            wm_slots: dict[str, int] = {}
            for batch in batches:
                try:
                    state = apply_mutations(
                        base, batch, protected=view_names
                    )
                    # apply_mutations copies exactly the relations it
                    # touches, so object identity against the
                    # predecessor state is a sound (and cheap)
                    # changed-name hint for the engine's diff.
                    hint = {
                        name
                        for name, rel in state.items()
                        if base.get(name) is not rel
                    }
                    if maintainer is not None:
                        missing = sorted(
                            name
                            for name in maintainer.input_names
                            if name not in state
                        )
                        if missing:
                            raise SchemaError(
                                f"cannot drop relation {missing[0]!r}: "
                                "it is an input of the installed "
                                "deductive program"
                            )
                        deltas = _input_deltas(
                            maintainer, base, state, hint
                        )
                        old_views = {
                            name: base[name]
                            for name in view_names
                            if name in base
                        }
                        views, _report = maintainer.refresh(
                            state, old_views, deltas
                        )
                        for name, view in views.items():
                            if view is not old_views.get(name):
                                hint.add(name)
                                wm_slots[name] = len(states)
                            state[name] = view
                except ReproError as exc:
                    slots.append(exc)
                    continue
                hints.append(hint)
                slots.append(len(states))
                states.append(state)
                base = state
            if self._engine is not None and states:
                counts = self._engine.commit_many(states, changed=hints)
            else:
                counts = [
                    _count_changes(
                        states[i - 1] if i else dict(previous.relations),
                        state,
                    )
                    for i, state in enumerate(states)
                ]
            # Stamp version tokens: each non-noop transaction committed
            # as one engine txn, so walk the final token backwards over
            # the batch (a no-op transaction reads as its predecessor).
            nonnoop = sum(1 for count in counts if count)
            if self._engine is not None and nonnoop:
                final = self._engine.version
            else:
                final = previous.version + nonnoop
            running = final - nonnoop
            versions: list[int] = []
            for count in counts:
                if count:
                    running += 1
                versions.append(running)
            results: list[TxnResult] = []
            for slot in slots:
                if isinstance(slot, ReproError):
                    results.append(TxnResult(version=final, error=slot))
                else:
                    results.append(
                        TxnResult(
                            version=versions[slot], records=counts[slot]
                        )
                    )
            if nonnoop:
                watermarks = dict(previous.view_watermarks)
                for name, slot in wm_slots.items():
                    watermarks[name] = versions[slot]
                self._committed = CatalogVersion(
                    final, states[-1], view_watermarks=watermarks
                )
            return results


def _input_deltas(
    maintainer,
    before: Mapping[str, GeneralizedRelation],
    after: Mapping[str, GeneralizedRelation],
    changed_names,
) -> dict[str, object]:
    """Classify changed program inputs as insert deltas or ``DIRTY``.

    For each changed relation the maintainer reads, the semantic
    difference decides: tuples only *added* yield an insert delta the
    refresh can fold semi-naively; any removed point means the change
    is not monotone and the input is marked
    :data:`~repro.deductive.incremental.DIRTY`, forcing the affected
    strata to recompute.
    """
    from repro.core import algebra
    from repro.core.simplify import simplify_relation
    from repro.deductive.incremental import DIRTY

    deltas: dict[str, object] = {}
    for name in changed_names:
        if name not in maintainer.input_names:
            continue
        new = after[name]
        old = before.get(name)
        if old is None:
            old = GeneralizedRelation.empty(new.schema)
        if old.schema != new.schema:
            deltas[name] = DIRTY
            continue
        removed = algebra.subtract(old, new)
        if not removed.is_empty():
            deltas[name] = DIRTY
            continue
        inserted = simplify_relation(algebra.subtract(new, old))
        if not inserted.is_empty():
            deltas[name] = inserted
    return deltas


def _count_changes(
    before: Mapping[str, GeneralizedRelation],
    after: Mapping[str, GeneralizedRelation],
) -> int:
    """How many relations differ between two catalog states."""
    changed = sum(
        1
        for name, rel in after.items()
        if name not in before or before[name] != rel
    )
    dropped = sum(1 for name in before if name not in after)
    return changed + dropped
