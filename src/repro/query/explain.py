"""Query plans: how a first-order query maps onto the algebra.

``explain(db, query)`` mirrors the evaluator's translation and produces
an operator tree annotated with the *actual* intermediate sizes (tuple
counts and schema widths) — generalized relations are finitely
represented, so "run it and look" is cheap and honest at the scale this
engine targets.  The output doubles as documentation of the classical
calculus-to-algebra translation (Theorem 4.1's evaluation strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.relations import GeneralizedRelation
from repro.query.ast import (
    And,
    Cmp,
    DataEq,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Pred,
    Query,
    Sort,
)
from repro.query.database import Database
from repro.query.evaluator import Evaluator


@dataclass
class PlanNode:
    """One step of the algebraic plan."""

    operator: str
    detail: str
    out_tuples: int
    out_schema: str
    children: list["PlanNode"] = field(default_factory=list)

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        lines = [
            f"{pad}{self.operator:<12} {self.detail}  "
            f"-> {self.out_tuples} tuple(s) over {self.out_schema}"
        ]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def __str__(self) -> str:
        return "\n".join(self.render())


class _ExplainingEvaluator(Evaluator):
    """Evaluator subclass that records a plan tree as it walks."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._stack: list[list[PlanNode]] = [[]]

    def _walk(self, node: Query) -> GeneralizedRelation:
        self._stack.append([])
        result = super()._walk(node)
        children = self._stack.pop()
        plan = PlanNode(
            operator=_operator_name(node),
            detail=_operator_detail(node),
            out_tuples=len(result),
            out_schema=str(result.schema),
            children=children,
        )
        self._stack[-1].append(plan)
        return result

    @property
    def plan(self) -> PlanNode:
        return self._stack[0][-1]


def _operator_name(node: Query) -> str:
    return {
        Pred: "scan",
        Cmp: "compare",
        DataEq: "data-eq",
        And: "join",
        Or: "union",
        Not: "complement",
        Implies: "implies",
        Exists: "project",
        Forall: "forall",
    }[type(node)]


def _operator_detail(node: Query) -> str:
    if isinstance(node, Pred):
        return str(node)
    if isinstance(node, (Cmp, DataEq)):
        return str(node)
    if isinstance(node, And):
        return f"{len(node.parts)}-way natural join"
    if isinstance(node, Or):
        return f"{len(node.parts)}-way aligned union"
    if isinstance(node, Not):
        return "negation pushed inward, then Z-complement at atoms"
    if isinstance(node, Implies):
        return "rewritten to ~antecedent | consequent"
    if isinstance(node, Exists):
        sort = "Z" if node.sort is Sort.TEMPORAL else "active domain"
        return f"∃{node.var} over {sort}"
    if isinstance(node, Forall):
        return f"∀{node.var} as ~∃~"
    return ""


def explain(db: Database, query: str | Query) -> PlanNode:
    """Evaluate a query while recording its algebraic plan.

    Returns the root :class:`PlanNode`; ``str()`` renders the tree.
    Note the plan reflects the *rewritten* query (implications expanded,
    negations pushed inward, ∀ as ¬∃¬), which is exactly what runs.
    """
    if isinstance(query, str):
        query = db.parse(query)
    evaluator = _ExplainingEvaluator(
        {name: db.relation(name) for name in db.names},
        max_tuples=db.max_tuples,
        max_extensions=db.max_extensions,
    )
    evaluator.evaluate(query)
    return evaluator.plan
