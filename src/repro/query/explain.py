"""Query plans and EXPLAIN ANALYZE: how a query maps onto the algebra.

``explain(db, query)`` produces an operator tree annotated with the
*actual* intermediate sizes (tuple counts and schema widths) —
generalized relations are finitely represented, so "run it and look"
is cheap and honest at the scale this engine targets.  The output
doubles as documentation of the classical calculus-to-algebra
translation (Theorem 4.1's evaluation strategy).

``explain_analyze(db, query)`` is the instrumented form: the query
runs under a :class:`repro.obs.trace.TraceRecorder`, and the returned
:class:`QueryTrace` carries the full span tree — per-plan-node *and*
per-algebra-operation wall times, tuple counts, pairwise combinations
examined, prefilter rejections, cache hits and normalization
expansions — plus the query result itself.  It renders as a text
flamegraph and exports to JSON (see ``docs/observability.md`` for the
schema).

Both are trace-driven: the engine emits one ``query.*`` span per plan
node with query provenance, plus ``plan.*`` spans for nodes the
optimizer introduced (see :mod:`repro.plan.engine`), and the plan tree
here is a projection of that span tree.  The plan therefore reflects
the *rewritten* query (implications expanded, negations pushed inward,
∀ as ¬∃¬), which is exactly what runs.

This module is the legacy EXPLAIN surface; the stable plan API —
:func:`repro.api.plan` / :func:`repro.api.explain` returning frozen
:class:`~repro.plan.report.PlanReport` objects — supersedes it (see
``docs/planner.md``), and the module-level :func:`explain` shim warns
once on first use.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.core.relations import GeneralizedRelation
from repro.obs.trace import Span, TraceRecorder, render_flamegraph, tracing
from repro.plan.engine import Engine, ExecutionContext, resolve_engine
from repro.plan.report import PlanReport
from repro.query.ast import Query
from repro.query.database import Database
from repro.query.evaluator import Evaluator

_QUERY_PREFIX = "query."
#: Span-name prefixes that denote plan nodes: ``query.*`` spans carry
#: query provenance, ``plan.*`` spans are optimizer-introduced nodes.
_PLAN_PREFIXES = ("query.", "plan.")


def _plan_operator(span: Span) -> str | None:
    """The plan-node operator a span denotes, or ``None`` for algebra spans."""
    for prefix in _PLAN_PREFIXES:
        if span.name.startswith(prefix):
            return span.name[len(prefix):]
    return None


@dataclass
class PlanNode:
    """One step of the algebraic plan.

    ``attrs`` is empty for a plain EXPLAIN; EXPLAIN ANALYZE fills it
    with ``wall_ms``, the per-operator algebra summaries (``ops``) and
    the optimization-layer counter deltas (``perf``).
    """

    operator: str
    detail: str
    out_tuples: int
    out_schema: str
    children: list["PlanNode"] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)

    def render(self, indent: int = 0) -> list[str]:
        """The annotated operator subtree as indented text lines."""
        pad = "  " * indent
        timing = ""
        if "wall_ms" in self.attrs:
            timing = f" [{self.attrs['wall_ms']:.3f}ms]"
        lines = [
            f"{pad}{self.operator:<12} {self.detail}  "
            f"-> {self.out_tuples} tuple(s) over {self.out_schema}{timing}"
        ]
        for op in self.attrs.get("ops", ()):
            op_text = ", ".join(
                f"{key}={value}"
                for key, value in op.items()
                if key != "op" and value is not None
            )
            lines.append(f"{pad}  · {op['op']}: {op_text}")
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def __str__(self) -> str:
        return "\n".join(self.render())


def _algebra_summaries(span: Span) -> list[dict[str, Any]]:
    """Summaries of the algebra spans directly under a query node.

    Direct means not nested inside a deeper ``query.*`` span — those
    belong to the child plan nodes.
    """
    out: list[dict[str, Any]] = []

    def visit(node: Span) -> None:
        for child in node.children:
            if child.name.startswith(_PLAN_PREFIXES):
                continue
            if child.name.startswith("algebra."):
                summary: dict[str, Any] = {
                    "op": child.name[len("algebra."):],
                    "wall_ms": round(child.wall_ms, 6),
                }
                for key in (
                    "input_tuples",
                    "output_tuples",
                    "pairs_examined",
                    "schema_width",
                ):
                    if key in child.attrs:
                        summary[key] = child.attrs[key]
                if child.perf:
                    summary["perf"] = dict(child.perf)
                out.append(summary)
            visit(child)

    visit(span)
    return out


def plan_from_span(span: Span, analyze: bool = False) -> PlanNode:
    """Project a ``query.*``/``plan.*`` span (sub)tree onto a plan tree."""
    children = [
        plan_from_span(child, analyze)
        for child in span.children
        if child.name.startswith(_PLAN_PREFIXES)
    ]
    attrs: dict[str, Any] = {}
    if analyze:
        attrs["wall_ms"] = round(span.wall_ms, 6)
        ops = _algebra_summaries(span)
        if ops:
            attrs["ops"] = ops
        if span.perf:
            attrs["perf"] = dict(span.perf)
    return PlanNode(
        operator=_plan_operator(span) or span.name,
        detail=span.attrs.get("detail", ""),
        out_tuples=span.attrs.get("out_tuples", 0),
        out_schema=span.attrs.get("out_schema", ""),
        children=children,
        attrs=attrs,
    )


@dataclass
class QueryTrace:
    """The structured result of EXPLAIN ANALYZE / :meth:`Database.trace`.

    * ``result`` — the evaluated relation (EXPLAIN ANALYZE really runs);
    * ``root`` — the ``query.evaluate`` span tree with every plan node
      and algebra operation underneath;
    * :meth:`plan` — the annotated :class:`PlanNode` projection;
    * :meth:`flamegraph` / :meth:`to_json` — renderings.
    """

    query: Query
    result: GeneralizedRelation
    root: Span

    def plan(self) -> PlanNode:
        """The annotated operator tree (timings, ops, perf deltas)."""
        return self._project(analyze=True)

    def plan_only(self) -> PlanNode:
        """The bare operator tree (what plain EXPLAIN shows)."""
        return self._project(analyze=False)

    def _project(self, analyze: bool) -> PlanNode:
        for child in self.root.children:
            if child.name.startswith(_PLAN_PREFIXES):
                return plan_from_span(child, analyze=analyze)
        # A query with no recorded nodes (never happens in practice,
        # but keep the projection total).
        return plan_from_span(self.root, analyze=analyze)

    def flamegraph(self, width: int = 24) -> str:
        """Indented text flamegraph of the whole evaluation."""
        return render_flamegraph(self.root, width=width)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly dump: the query text plus the full span tree."""
        return {"query": str(self.query), "trace": self.root.to_dict()}

    def to_json(self, indent: int | None = 2) -> str:
        """:meth:`to_dict` serialized as JSON text."""
        import json

        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def __str__(self) -> str:
        return self.flamegraph()


def _traced_evaluation(
    db: Database,
    query: str | Query,
    *,
    engine: str | Engine | None = None,
    optimize: bool | None = None,
) -> tuple[Query, GeneralizedRelation, Span]:
    if isinstance(query, str):
        query = db.parse(query)
    evaluator = Evaluator(
        {name: db.relation(name) for name in db.names},
        max_tuples=db.max_tuples,
        max_extensions=db.max_extensions,
        engine=engine,
        optimize=optimize,
    )
    recorder = TraceRecorder()
    with tracing(recorder):
        result = evaluator.evaluate(query)
    root = recorder.root
    if root is None:  # pragma: no cover - evaluate always opens a span
        root = Span("query.evaluate", recorder)
    return query, result, root


def explain_plan(
    db: Database,
    query: str | Query,
    *,
    engine: str | Engine | None = None,
    optimize: bool | None = None,
) -> PlanNode:
    """The legacy EXPLAIN: run the query, project the span tree.

    Returns the root :class:`PlanNode`; ``str()`` renders the tree.
    Note the plan reflects the *rewritten* query (implications expanded,
    negations pushed inward, ∀ as ¬∃¬), which is exactly what runs.
    """
    return explain_analyze(
        db, query, engine=engine, optimize=optimize
    ).plan_only()


_EXPLAIN_WARNED = False


def explain(db: Database, query: str | Query) -> PlanNode:
    """Deprecated spelling of :func:`explain_plan` (same output shape).

    Warns (once per process) in favor of the stable plan surface:
    :func:`repro.api.explain` returns a frozen
    :class:`~repro.plan.report.PlanReport`, :meth:`Database.explain`
    keeps this span-projected shape for un-optimized queries.
    """
    global _EXPLAIN_WARNED
    if not _EXPLAIN_WARNED:
        _EXPLAIN_WARNED = True
        warnings.warn(
            "repro.query.explain.explain() is deprecated; use "
            "repro.api.explain() (PlanReport) or Database.explain()",
            DeprecationWarning,
            stacklevel=2,
        )
    # The shim reproduces the pre-planner behavior exactly, so it pins
    # the naive pipeline even when REPRO_OPTIMIZE is set.
    return explain_plan(db, query, optimize=False)


def explain_analyze(
    db: Database,
    query: str | Query,
    *,
    engine: str | Engine | None = None,
    optimize: bool | None = None,
) -> QueryTrace:
    """EXPLAIN ANALYZE: run the query under tracing, keep everything.

    The returned :class:`QueryTrace` holds the result relation, the
    full span tree and the annotated plan.
    """
    parsed, result, root = _traced_evaluation(
        db, query, engine=engine, optimize=optimize
    )
    return QueryTrace(query=parsed, result=result, root=root)


def optimize_trace(
    db: Database,
    query: str | Query,
    objective,
    sense: str,
    *,
    engine: str | Engine | None = None,
    optimize: bool | None = None,
) -> QueryTrace:
    """EXPLAIN [ANALYZE] for a ``MINIMIZE``/``MAXIMIZE`` directive.

    Runs the optimization under the trace recorder; the returned
    :class:`QueryTrace` has the ``query.optimize`` node at the plan
    root (above the query's own plan) and the argopt restriction as
    its result relation.  ``plan_only()`` gives the plain-EXPLAIN
    rendering.
    """
    if isinstance(query, str):
        query = db.parse(query)
    evaluator = Evaluator(
        {name: db.relation(name) for name in db.names},
        max_tuples=db.max_tuples,
        max_extensions=db.max_extensions,
        engine=engine,
        optimize=optimize,
    )
    recorder = TraceRecorder()
    with tracing(recorder):
        outcome = evaluator.optimize_query(query, objective, sense)
    root = recorder.root
    if root is None:  # pragma: no cover - optimize_query opens a span
        root = Span("query.evaluate", recorder)
    return QueryTrace(
        query=query, result=outcome.argopt_restriction(), root=root
    )


def plan_report(
    db: Database,
    query: str | Query,
    *,
    engine: str | Engine | None = None,
    optimize: bool | None = None,
    execute: bool = False,
) -> PlanReport:
    """Build the stable :class:`~repro.plan.report.PlanReport` surface.

    Statically plans the query (lowering plus, when optimization
    resolves on, the rewrite passes); with ``execute=True`` the plan is
    also run and every node is annotated with its observed output size
    (:func:`repro.api.explain`'s behavior).
    """
    if isinstance(query, str):
        query = db.parse(query)
    evaluator = Evaluator(
        {name: db.relation(name) for name in db.names},
        max_tuples=db.max_tuples,
        max_extensions=db.max_extensions,
        engine=engine,
        optimize=optimize,
    )
    resolved = resolve_engine(engine)
    optimized = evaluator._resolved_optimize()
    naive, plan, passes = evaluator.plan(query, optimize=optimized)
    annotations: dict[int, int] | None = None
    if execute:
        annotations = {}
        sizes = annotations

        def observe(node, result) -> None:
            sizes[id(node)] = len(result)

        ctx = ExecutionContext(
            relations=evaluator.relations,
            data_domain=evaluator.data_domain,
            max_tuples=evaluator.max_tuples,
            max_extensions=evaluator.max_extensions,
            plan_spans=bool(optimized),
            memo={} if optimized else None,
            on_result=observe,
        )
        resolved.run(plan, ctx)
    return PlanReport(
        query=str(query),
        engine=resolved.name,
        optimized=bool(optimized),
        naive=naive,
        plan=plan,
        passes=passes,
        annotations=annotations,
    )
