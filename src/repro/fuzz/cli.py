"""``repro fuzz`` — the differential fuzzing command.

Generates seeded random cases, runs the three-way differential check
(:mod:`repro.fuzz.diff`), shrinks failures to minimal replayable repros
(:mod:`repro.fuzz.shrink`) and writes them as JSON for the regression
corpus.  Examples::

    repro fuzz --seed 0 --budget 500
    repro fuzz --seed 7 --budget 2000 --window -6 6 --out fuzz-failures
    repro fuzz --replay tests/corpus/*.json
    repro fuzz --seed 0 --budget 50 --trace
    repro fuzz --seed 0 --budget 0 --ivm 20

Exit status is 0 when every case is clean (``ok`` / ``unstable`` /
``oversize`` / ``limit``) and 1 when any case is ``divergent`` or
``error``.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro import obs
from repro.fuzz.case import Case, load_case
from repro.fuzz.diff import DEFAULT_CONFIG, CaseResult, run_case
from repro.fuzz.gen import DEFAULT_PROFILE, case_seed, generate_case
from repro.fuzz.shrink import same_failure, shrink_case

#: Counter names the run report lists, in display order.
_REPORT_STATUSES = ("ok", "unstable", "oversize", "limit", "error", "divergent")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="differential fuzzing against the finite-window oracle",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base seed; case i runs with seed N*1000003+i (default 0)",
    )
    parser.add_argument(
        "--budget", type=int, default=200, metavar="N",
        help="number of cases to generate and check (default 200)",
    )
    parser.add_argument(
        "--window", type=int, nargs=2, default=None, metavar=("LOW", "HIGH"),
        help="core comparison window (default %d %d)"
        % (DEFAULT_PROFILE.low, DEFAULT_PROFILE.high),
    )
    parser.add_argument(
        "--max-ops", type=int, default=None, metavar="N",
        help="cap on operation nodes per expression (default %d)"
        % DEFAULT_PROFILE.max_ops,
    )
    parser.add_argument(
        "--shrink", action=argparse.BooleanOptionalAction, default=True,
        help="shrink failing cases to minimal repros (default on)",
    )
    parser.add_argument(
        "--shrink-evals", type=int, default=400, metavar="N",
        help="evaluation budget per shrink run (default 400)",
    )
    parser.add_argument(
        "--out", metavar="DIR", default="fuzz-failures",
        help="directory shrunk failing cases are written to "
        "(default fuzz-failures)",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="stop starting new cases after this many seconds (per-case "
        "results stay deterministic; the limit only truncates the run)",
    )
    parser.add_argument(
        "--replay", nargs="+", metavar="FILE", default=None,
        help="replay saved case files instead of generating",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="run under the span recorder; print a flamegraph for every "
        "failing case and the fuzz metrics at the end",
    )
    parser.add_argument(
        "--ivm", type=int, default=0, metavar="N",
        help="also run N incremental-view-maintenance cases: streamed "
        "append/retract batches where the maintained view is compared "
        "against a naive recompute after every batch (divergence kind "
        '"ivm"; seeds replay exactly)',
    )
    return parser


def _profile(args: argparse.Namespace):
    profile = DEFAULT_PROFILE
    if args.window is not None:
        low, high = args.window
        profile = replace(profile, low=low, high=high)
    if args.max_ops is not None:
        profile = replace(profile, max_ops=max(1, args.max_ops))
    return profile


def _iter_cases(args: argparse.Namespace):
    """Yield ``(label, case)`` pairs for the run."""
    if args.replay is not None:
        for path in args.replay:
            yield path, load_case(path)
        return
    profile = _profile(args)
    for index in range(args.budget):
        seed = case_seed(args.seed, index)
        yield f"case {index} (seed {seed})", generate_case(seed, profile)


def _save_repro(directory: Path, result: CaseResult, shrunk: Case) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    seed = shrunk.seed if shrunk.seed is not None else "manual"
    path = directory / f"{result.status}-seed-{seed}.json"
    kinds = ",".join(sorted({d.kind for d in result.divergences})) or "none"
    note = (
        f"found by `repro fuzz`: status={result.status} kinds={kinds}; "
        f"original: {result.case.describe()}"
    )
    shrunk.with_note(note).save(path)
    return path


def fuzz_main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro fuzz`` (also ``python -m repro.fuzz``)."""
    args = build_parser().parse_args(argv)
    out = sys.stdout
    recorder_cm = obs.tracing() if args.trace else None
    recorder = recorder_cm.__enter__() if recorder_cm else None
    deadline = (
        time.monotonic() + args.time_limit
        if args.time_limit is not None
        else None
    )
    counts = dict.fromkeys(_REPORT_STATUSES, 0)
    failures = 0
    ran = 0
    truncated = False
    try:
        for label, case in _iter_cases(args):
            if deadline is not None and time.monotonic() > deadline:
                truncated = True
                break
            result = run_case(case, DEFAULT_CONFIG)
            ran += 1
            counts[result.status] = counts.get(result.status, 0) + 1
            if not result.failing:
                continue
            failures += 1
            print(f"FAIL {label}", file=out)
            print(result.summary(), file=out)
            if recorder is not None and recorder.roots:
                print(obs.render_flamegraph(recorder.roots[-1]), file=out)
            if args.shrink:
                shrunk = shrink_case(
                    case, same_failure(result), max_evals=args.shrink_evals
                )
                print(f"  {shrunk}", file=out)
                path = _save_repro(Path(args.out), result, shrunk.case)
                print(f"  repro written to {path}", file=out)
        for index in range(args.ivm):
            from repro.fuzz.ivm import run_ivm_case

            seed = case_seed(args.seed, index)
            result = run_ivm_case(seed)
            ran += 1
            counts[result.status] = counts.get(result.status, 0) + 1
            if not result.failing:
                continue
            failures += 1
            print(f"FAIL ivm case {index} (seed {seed})", file=out)
            print(result.summary(), file=out)
    finally:
        if recorder_cm is not None:
            recorder_cm.__exit__(None, None, None)
    summary = "  ".join(
        f"{status}={counts.get(status, 0)}" for status in _REPORT_STATUSES
    )
    print(f"{ran} case(s): {summary}", file=out)
    if truncated:
        print(
            f"time limit reached after {ran} case(s); run truncated",
            file=out,
        )
    if args.trace:
        snapshot = obs.metrics().snapshot()
        fuzz_counters = {
            name: value
            for name, value in sorted(snapshot.get("counters", {}).items())
            if name.startswith("fuzz.")
        }
        for name, value in fuzz_counters.items():
            print(f"{name} = {value}", file=out)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(fuzz_main())
