"""The incremental-view-maintenance differential leg.

The expression fuzzer (:mod:`repro.fuzz.diff`) checks the *algebra*;
this leg checks the *deductive layer above it*: a materialized
recursive view maintained incrementally across streamed edge batches
(:mod:`repro.deductive.incremental`) must denote exactly the point set
a from-scratch **naive** fixpoint derives from the same EDB.  Every
append batch is therefore a differential check of two independent
implementations at once — the semi-naive delta iteration and the
refresh bookkeeping on top of it — against the slow executable oracle.

Each seeded case streams a random temporal-graph workload
(:mod:`repro.deductive.scenarios`) into a
:class:`~repro.deductive.incremental.ViewMaintainer`:

* most batches are pure insertions, folded by the semi-naive
  insert-delta path;
* with probability :attr:`IvmProfile.retract_rate` a batch instead
  *retracts* a random edge schedule, exercising the
  :data:`~repro.deductive.incremental.DIRTY` recompute path.

After every batch the maintained ``Reach`` view is compared — as a
point set, via :func:`repro.core.algebra.equivalent` — against
``Program.evaluate(db, strategy="naive")`` on the folded EDB.  Any
disagreement is a :class:`~repro.fuzz.diff.Divergence` of kind
``"ivm"``; the case seed replays it exactly
(``repro fuzz --ivm N --seed S``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.core import algebra
from repro.core.errors import ReproError
from repro.core.negation import DEFAULT_MAX_EXTENSIONS
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import GeneralizedRelation
from repro.deductive.incremental import DIRTY, ViewMaintainer, insert_delta
from repro.deductive.scenarios import (
    EDGE_SCHEMA,
    edge_batches,
    reachability_program,
)
from repro.fuzz.diff import Divergence
from repro.query.database import Database


@dataclass(frozen=True)
class IvmProfile:
    """Workload bounds for one seeded IVM case.

    Kept deliberately small: each batch pays a full naive fixpoint as
    the oracle, so case cost is dominated by the oracle, not the
    incremental path under test.
    """

    #: Node-count range of the random graph.
    min_nodes: int = 3
    max_nodes: int = 6
    #: Batch-count range per case.
    min_batches: int = 3
    max_batches: int = 6
    #: Edges per insert batch.
    max_batch_size: int = 3
    #: Hop-window range for the reachability program.
    min_window: int = 2
    max_window: int = 5
    #: Probability a batch retracts an edge (the ``DIRTY`` path)
    #: instead of inserting.
    retract_rate: float = 0.25
    #: Comparison window for divergence row samples.
    sample_low: int = 0
    sample_high: int = 48


DEFAULT_IVM_PROFILE = IvmProfile()


@dataclass
class IvmResult:
    """The outcome of one IVM differential case."""

    seed: int
    status: str
    divergences: list[Divergence] = field(default_factory=list)
    error: str = ""
    batches: int = 0
    detail: str = ""

    @property
    def failing(self) -> bool:
        """Whether the case demands attention (a bug or a crash)."""
        return self.status in ("divergent", "error")

    def summary(self) -> str:
        """One human-readable line per outcome, plus any divergences."""
        text = f"{self.status}: ivm seed {self.seed} ({self.detail})"
        if self.error:
            text += f" ({self.error})"
        for div in self.divergences:
            text += "\n" + str(div)
        return text


def _without(relation: GeneralizedRelation, index: int) -> GeneralizedRelation:
    """A copy of ``relation`` missing its ``index``-th tuple."""
    out = GeneralizedRelation.empty(relation.schema)
    for i, gtuple in enumerate(relation):
        if i != index:
            out.add(gtuple)
    return out


def run_ivm_case(
    seed: int, profile: IvmProfile = DEFAULT_IVM_PROFILE
) -> IvmResult:
    """Run one seeded incremental-vs-recompute differential case."""
    registry = obs.get_registry()
    registry.counter("fuzz.ivm.cases").inc()
    rng = random.Random(seed)
    n_nodes = rng.randint(profile.min_nodes, profile.max_nodes)
    n_batches = rng.randint(profile.min_batches, profile.max_batches)
    batch_size = rng.randint(1, profile.max_batch_size)
    window = rng.randint(profile.min_window, profile.max_window)
    detail = (
        f"{n_nodes} nodes, {n_batches} batches x {batch_size}, "
        f"window {window}"
    )
    result = IvmResult(seed=seed, status="ok", detail=detail)
    try:
        program = reachability_program(window)
        batches = edge_batches(n_nodes, n_batches, batch_size, seed=seed)
        maintainer = ViewMaintainer(
            program,
            {"Edge": EDGE_SCHEMA},
            max_tuples=DEFAULT_MAX_TUPLES,
            max_extensions=DEFAULT_MAX_EXTENSIONS,
        )
        edb = GeneralizedRelation.empty(EDGE_SCHEMA)
        views, _report = maintainer.initialize({"Edge": edb})
        with obs.span("fuzz.ivm.case", seed=seed):
            for batch in batches:
                if rng.random() < profile.retract_rate and len(edb) > 0:
                    # Retraction: not a pure insertion, so the catalog
                    # would classify this delta DIRTY and the refresh
                    # must recompute the touched strata.
                    edb = _without(edb, rng.randrange(len(edb)))
                    deltas: dict[str, object] = {"Edge": DIRTY}
                else:
                    merged = edb.copy()
                    for gtuple in batch:
                        merged.add(gtuple)
                    edb = merged
                    deltas = {"Edge": insert_delta(EDGE_SCHEMA, batch)}
                views, _report = maintainer.refresh(
                    {"Edge": edb}, views, deltas
                )
                result.batches += 1
                oracle_db = Database()
                oracle_db.register("Edge", edb)
                oracle = program.evaluate(oracle_db, strategy="naive")
                for name in maintainer.view_names:
                    maintained = views[name]
                    recomputed = oracle.relation(name)
                    if algebra.equivalent(maintained, recomputed):
                        continue
                    lo, hi = profile.sample_low, profile.sample_high
                    want = recomputed.snapshot(lo, hi)
                    got = maintained.snapshot(lo, hi)
                    result.divergences.append(
                        Divergence(
                            kind="ivm",
                            detail=(
                                f"view {name!r} after batch "
                                f"{result.batches}/{n_batches} "
                                f"({'DIRTY' if deltas['Edge'] is DIRTY else 'insert'} "
                                f"delta): incremental refresh and naive "
                                f"recompute denote different point sets"
                            ),
                            missing=tuple(sorted(want - got))[:10],
                            extra=tuple(sorted(got - want))[:10],
                        )
                    )
                if result.divergences:
                    result.status = "divergent"
                    break
    except ReproError as exc:
        result.status = "error"
        result.error = f"{type(exc).__name__}: {exc}"
    registry.counter(f"fuzz.ivm.{result.status}").inc()
    return result
