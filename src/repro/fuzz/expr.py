"""Algebra-expression trees for the differential fuzzing harness.

An :class:`Expr` is a small AST over the generalized algebra's
operations — the shapes the fuzzer generates, executes three ways
(optimized, naive, finite oracle) and shrinks.  Nodes are immutable,
JSON round-trippable (for the regression corpus) and schema-checked:
:meth:`Expr.schema` computes the result schema against an environment
of leaf schemas, raising :class:`~repro.core.errors.SchemaError` for
ill-formed trees exactly where the algebra itself would.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.core.constraints import VarVarAtom, parse_atoms
from repro.core.errors import ReproValueError, SchemaError
from repro.core.relations import Schema


@dataclass(frozen=True)
class Expr:
    """Base class for algebra-expression nodes."""

    @property
    def children(self) -> tuple[Expr, ...]:
        """The child expressions, left to right."""
        return ()

    def with_children(self, children: Sequence[Expr]) -> Expr:
        """Rebuild this node with replacement children (same arity)."""
        if children:
            raise ReproValueError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator[Expr]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def size(self) -> int:
        """Total node count."""
        return sum(1 for _ in self.walk())

    def leaf_names(self) -> set[str]:
        """Names of every relation referenced by the tree."""
        return {n.name for n in self.walk() if isinstance(n, Leaf)}

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        """The result schema against leaf schemas ``env`` (or raise)."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        """A JSON-ready structural dump (inverse of :func:`expr_from_dict`)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Leaf(Expr):
    """A named base relation."""

    name: str

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        if self.name not in env:
            raise SchemaError(f"unknown relation {self.name!r}")
        return env[self.name]

    def to_dict(self) -> dict:
        return {"op": "leaf", "name": self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Binary(Expr):
    left: Expr
    right: Expr

    op_name = "?"

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[Expr]) -> Expr:
        left, right = children
        return type(self)(left, right)

    def to_dict(self) -> dict:
        return {
            "op": self.op_name,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }

    def __str__(self) -> str:
        return f"{self.op_name}({self.left}, {self.right})"


class _SetOp(_Binary):
    """union / intersect / subtract: both sides share one schema."""

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        s1 = self.left.schema(env)
        s2 = self.right.schema(env)
        if s1 != s2:
            raise SchemaError(
                f"{self.op_name} operands have different schemas: {s1} vs {s2}"
            )
        return s1


class Union(_SetOp):
    op_name = "union"


class Intersect(_SetOp):
    op_name = "intersect"


class Subtract(_SetOp):
    op_name = "subtract"


class Join(_Binary):
    """Natural join: left schema plus right-only attributes."""

    op_name = "join"

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        s1 = self.left.schema(env)
        s2 = self.right.schema(env)
        for attr in s1.attributes:
            if s2.has(attr.name) and s2.attribute(attr.name).temporal != attr.temporal:
                raise SchemaError(
                    f"join attribute {attr.name!r} is temporal on one side "
                    "and data on the other"
                )
        extra = tuple(a for a in s2.attributes if not s1.has(a.name))
        return Schema(s1.attributes + extra)


class Product(_Binary):
    """Cross product: attribute names must be disjoint."""

    op_name = "product"

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        s1 = self.left.schema(env)
        s2 = self.right.schema(env)
        overlap = set(s1.names) & set(s2.names)
        if overlap:
            raise SchemaError(
                f"product operands share attribute names: {sorted(overlap)}"
            )
        return Schema(s1.attributes + s2.attributes)


@dataclass(frozen=True)
class Select(Expr):
    """Selection by a restricted-constraint condition string."""

    child: Expr
    condition: str

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expr]) -> Expr:
        (child,) = children
        return Select(child, self.condition)

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        schema = self.child.schema(env)
        temporal = set(schema.temporal_names)
        for atom in parse_atoms(self.condition):
            if atom.left not in temporal:
                raise SchemaError(
                    f"selection atom {atom} references non-temporal or "
                    f"unknown attribute {atom.left!r}"
                )
            if isinstance(atom, VarVarAtom) and atom.right not in temporal:
                raise SchemaError(
                    f"selection atom {atom} references non-temporal or "
                    f"unknown attribute {atom.right!r}"
                )
        return schema

    def to_dict(self) -> dict:
        return {
            "op": "select",
            "child": self.child.to_dict(),
            "condition": self.condition,
        }

    def __str__(self) -> str:
        return f"select[{self.condition}]({self.child})"


@dataclass(frozen=True)
class Project(Expr):
    """Projection onto named attributes, in the given order."""

    child: Expr
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", tuple(self.names))

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expr]) -> Expr:
        (child,) = children
        return Project(child, self.names)

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        schema = self.child.schema(env)
        if len(set(self.names)) != len(self.names):
            raise SchemaError("projection attribute list has duplicates")
        for name in self.names:
            if not schema.has(name):
                raise SchemaError(
                    f"cannot project onto unknown attribute {name!r}"
                )
        return Schema(tuple(schema.attribute(name) for name in self.names))

    def to_dict(self) -> dict:
        return {
            "op": "project",
            "child": self.child.to_dict(),
            "names": list(self.names),
        }

    def __str__(self) -> str:
        return f"project[{', '.join(self.names)}]({self.child})"


@dataclass(frozen=True)
class Complement(Expr):
    """Complement w.r.t. Z^k on the temporal sort (finite data domains)."""

    child: Expr

    @property
    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[Expr]) -> Expr:
        (child,) = children
        return Complement(child)

    def schema(self, env: Mapping[str, Schema]) -> Schema:
        return self.child.schema(env)

    def to_dict(self) -> dict:
        return {"op": "complement", "child": self.child.to_dict()}

    def __str__(self) -> str:
        return f"complement({self.child})"


_BINARY_OPS = {
    "union": Union,
    "intersect": Intersect,
    "subtract": Subtract,
    "join": Join,
    "product": Product,
}


def expr_from_dict(payload: dict) -> Expr:
    """Rebuild an expression from its :meth:`Expr.to_dict` form."""
    try:
        op = payload["op"]
        if op == "leaf":
            return Leaf(str(payload["name"]))
        if op in _BINARY_OPS:
            return _BINARY_OPS[op](
                expr_from_dict(payload["left"]),
                expr_from_dict(payload["right"]),
            )
        if op == "select":
            return Select(
                expr_from_dict(payload["child"]), str(payload["condition"])
            )
        if op == "project":
            return Project(
                expr_from_dict(payload["child"]),
                tuple(str(n) for n in payload["names"]),
            )
        if op == "complement":
            return Complement(expr_from_dict(payload["child"]))
    except (KeyError, TypeError) as exc:
        raise ReproValueError(f"malformed expression payload: {exc}") from exc
    raise ReproValueError(f"unknown expression op {payload.get('op')!r}")
