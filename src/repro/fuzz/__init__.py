"""repro.fuzz — differential fuzzing against the finite-window oracle.

The paper's strawman — materializing an infinite relation up to a
horizon — doubles as an executable specification: over a bounded
window, the generalized (symbolic) algebra and a conventional finite
engine must agree exactly.  This package exploits that:

* :mod:`repro.fuzz.expr` / :mod:`repro.fuzz.case` — algebra-expression
  trees and replayable (relations, expression, window) cases with a
  stable JSON form (the ``tests/corpus/`` format).
* :mod:`repro.fuzz.gen` — seeded deterministic case generation, built
  on the same drawing logic as the :mod:`repro.testing` strategies.
* :mod:`repro.fuzz.diff` — the three-way differential executor:
  optimized algebra vs the algebra with every :mod:`repro.perf`
  optimization disabled vs :class:`~repro.baseline.finite.FiniteRelation`
  over per-node windows.
* :mod:`repro.fuzz.shrink` — delta-debugging minimization of failing
  cases to few-tuple, few-node repros.
* :mod:`repro.fuzz.ivm` — the incremental-view-maintenance leg:
  streamed append/retract batches whose maintained recursive view is
  compared against a naive recompute after every batch (divergence
  kind ``"ivm"``; ``repro fuzz --ivm N``).
* :mod:`repro.fuzz.cli` — the ``repro fuzz`` subcommand.

See ``docs/fuzzing.md`` for the window-commutation argument and usage.
"""

from repro.fuzz.case import FORMAT, Case, case_from_dict, load_case
from repro.fuzz.cli import fuzz_main
from repro.fuzz.diff import (
    DEFAULT_CONFIG,
    CaseResult,
    DiffConfig,
    Divergence,
    OversizeError,
    compute_margin,
    eval_finite,
    eval_generalized,
    run_case,
)
from repro.fuzz.expr import (
    Complement,
    Expr,
    Intersect,
    Join,
    Leaf,
    Product,
    Project,
    Select,
    Subtract,
    Union,
    expr_from_dict,
)
from repro.fuzz.gen import (
    DEFAULT_PROFILE,
    FuzzProfile,
    case_seed,
    generate_case,
)
from repro.fuzz.ivm import (
    DEFAULT_IVM_PROFILE,
    IvmProfile,
    IvmResult,
    run_ivm_case,
)
from repro.fuzz.shrink import ShrinkResult, same_failure, shrink_case

__all__ = [
    "FORMAT",
    "Case",
    "CaseResult",
    "Complement",
    "DEFAULT_CONFIG",
    "DEFAULT_IVM_PROFILE",
    "DEFAULT_PROFILE",
    "DiffConfig",
    "Divergence",
    "Expr",
    "FuzzProfile",
    "IvmProfile",
    "IvmResult",
    "Intersect",
    "Join",
    "Leaf",
    "OversizeError",
    "Product",
    "Project",
    "Select",
    "ShrinkResult",
    "Subtract",
    "Union",
    "case_from_dict",
    "case_seed",
    "compute_margin",
    "eval_finite",
    "eval_generalized",
    "expr_from_dict",
    "fuzz_main",
    "generate_case",
    "load_case",
    "run_case",
    "run_ivm_case",
    "same_failure",
    "shrink_case",
]
