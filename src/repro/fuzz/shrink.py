"""Delta-debugging shrinker for failing fuzz cases.

Given a case and a *failure predicate* (normally "``run_case`` still
reports the same status and divergence kind"), the shrinker greedily
applies semantics-reducing transformations — drop generalized tuples,
shrink the expression tree toward its leaves, drop constraints,
simplify lrps — keeping each change only when the failure survives.
The result is a local minimum: removing any single tuple or replacing
any single operation node by one of its children makes the failure
disappear.  Minimal cases are what land in ``tests/corpus/``.

Evaluation is budgeted (``max_evals``) so shrinking a pathological case
terminates deterministically; the best case found so far is returned.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation
from repro.core.tuples import GeneralizedTuple
from repro.fuzz.case import Case
from repro.fuzz.diff import CaseResult, DiffConfig, DEFAULT_CONFIG, run_case
from repro.fuzz.expr import Expr, Leaf

#: Decides whether a candidate case still exhibits the original failure.
FailurePredicate = Callable[[Case], bool]


@dataclass
class ShrinkResult:
    """The outcome of a shrink run."""

    case: Case
    evals: int
    reduced: bool

    def __str__(self) -> str:
        return (
            f"shrunk to {self.case.total_tuples()} tuple(s), "
            f"expression size {self.case.expr.size()} "
            f"({self.evals} evaluation(s))"
        )


class _Budget:
    """Counts predicate evaluations; signals exhaustion via ``spent``."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    @property
    def spent(self) -> bool:
        return self.used >= self.limit


def same_failure(result: CaseResult, config: DiffConfig = DEFAULT_CONFIG):
    """The standard predicate: same status and same divergence kinds."""
    kinds = tuple(sorted({d.kind for d in result.divergences}))

    def predicate(candidate: Case) -> bool:
        got = run_case(candidate, config)
        if got.status != result.status:
            return False
        return tuple(sorted({d.kind for d in got.divergences})) == kinds

    return predicate


def shrink_case(
    case: Case,
    failing: FailurePredicate,
    max_evals: int = 400,
) -> ShrinkResult:
    """Minimize ``case`` while ``failing(case)`` stays true.

    ``failing`` must hold for ``case`` itself (the caller establishes
    that by observing the original failure); it is *not* re-checked
    here, so the full budget goes to candidates.
    """
    budget = _Budget(max_evals)
    current = case
    changed = True
    while changed and not budget.spent:
        changed = False
        for transform in (
            _shrink_expr,
            _drop_unused_relations,
            _drop_tuples,
            _drop_constraints,
            _simplify_lrps,
        ):
            smaller = transform(current, failing, budget)
            if smaller is not None:
                current = smaller
                changed = True
    reduced = (
        current.total_tuples() < case.total_tuples()
        or current.expr.size() < case.expr.size()
    )
    return ShrinkResult(case=current, evals=budget.used, reduced=reduced)


def _attempt(
    candidate: Case, failing: FailurePredicate, budget: _Budget
) -> bool:
    if budget.spent:
        return False
    budget.used += 1
    try:
        return failing(candidate)
    except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
        return False


# ----------------------------------------------------------------------
# transformations (each returns a strictly smaller failing case or None)
# ----------------------------------------------------------------------


def _shrink_expr(
    case: Case, failing: FailurePredicate, budget: _Budget
) -> Case | None:
    """Try to replace some operation node by one of its children."""
    for index in range(case.expr.size()):
        node = _nth(case.expr, index)
        for child in node.children:
            if _result_schema_differs(case, index, child):
                continue
            candidate = _with_node(case, index, child)
            if _attempt(candidate, failing, budget):
                return candidate
        if budget.spent:
            return None
    return None


def _drop_unused_relations(
    case: Case, failing: FailurePredicate, budget: _Budget
) -> Case | None:
    used = case.expr.leaf_names()
    kept = {n: r for n, r in case.relations.items() if n in used}
    if len(kept) == len(case.relations):
        return None
    candidate = replace(case, relations=kept)
    if _attempt(candidate, failing, budget):
        return candidate
    return None


def _drop_tuples(
    case: Case, failing: FailurePredicate, budget: _Budget
) -> Case | None:
    """Try removing one generalized tuple from one base relation."""
    for name in sorted(case.relations):
        relation = case.relations[name]
        for skip in range(len(relation)):
            kept = [t for i, t in enumerate(relation) if i != skip]
            candidate = _with_relation(
                case, name, GeneralizedRelation(relation.schema, kept)
            )
            if _attempt(candidate, failing, budget):
                return candidate
            if budget.spent:
                return None
    return None


def _drop_constraints(
    case: Case, failing: FailurePredicate, budget: _Budget
) -> Case | None:
    """Try removing one stored DBM bound from one tuple."""
    for name in sorted(case.relations):
        relation = case.relations[name]
        for t_index, gtuple in enumerate(relation):
            bounds = list(gtuple.dbm.iter_bounds())
            for skip in range(len(bounds)):
                slim = DBM(gtuple.dbm.size)
                for k, (i, j, bound) in enumerate(bounds):
                    if k != skip:
                        _add_raw(slim, i, j, bound)
                candidate = _with_tuple(
                    case,
                    name,
                    t_index,
                    GeneralizedTuple(gtuple.lrps, slim, gtuple.data),
                )
                if _attempt(candidate, failing, budget):
                    return candidate
                if budget.spent:
                    return None
    return None


def _simplify_lrps(
    case: Case, failing: FailurePredicate, budget: _Budget
) -> Case | None:
    """Try replacing one lrp by a strictly simpler one."""
    for name in sorted(case.relations):
        relation = case.relations[name]
        for t_index, gtuple in enumerate(relation):
            for l_index, lrp in enumerate(gtuple.lrps):
                for simpler in _simpler_lrps(lrp):
                    lrps = list(gtuple.lrps)
                    lrps[l_index] = simpler
                    candidate = _with_tuple(
                        case,
                        name,
                        t_index,
                        GeneralizedTuple(
                            tuple(lrps), gtuple.dbm.copy(), gtuple.data
                        ),
                    )
                    if _attempt(candidate, failing, budget):
                        return candidate
                    if budget.spent:
                        return None
    return None


def _add_raw(dbm: DBM, i: int, j: int, bound: int) -> None:
    """Re-add one :meth:`DBM.iter_bounds` triple (-1 is the zero var)."""
    if i >= 0 and j >= 0:
        dbm.add_difference(i, j, bound)
    elif i >= 0:
        dbm.add_upper(i, bound)
    else:
        # 0 - X_j <= bound, i.e. X_j >= -bound.
        dbm.add_lower(j, -bound)


def _simpler_lrps(lrp: LRP) -> list[LRP]:
    candidates = []
    if lrp.period > 0:
        # A periodic lrp can collapse to one of its points, or to the
        # everywhere lrp with a smaller description.
        candidates.append(LRP.point(lrp.offset))
        if lrp.offset != 0:
            candidates.append(LRP.make(0, lrp.period))
    elif lrp.offset != 0:
        candidates.append(LRP.point(0))
    return candidates


# ----------------------------------------------------------------------
# structural helpers
# ----------------------------------------------------------------------


def _nth(expr: Expr, index: int) -> Expr:
    for i, node in enumerate(expr.walk()):
        if i == index:
            return node
    raise IndexError(index)


def _replace_nth(expr: Expr, index: int, replacement: Expr) -> Expr:
    """Rebuild ``expr`` with the pre-order ``index``-th node replaced."""
    counter = [0]

    def rebuild(node: Expr) -> Expr:
        if counter[0] == index:
            counter[0] += node.size()
            return replacement
        counter[0] += 1
        children = []
        dirty = False
        for child in node.children:
            new_child = rebuild(child)
            dirty = dirty or new_child is not child
            children.append(new_child)
        return node.with_children(children) if dirty else node

    return rebuild(expr)


def _result_schema_differs(case: Case, index: int, replacement: Expr) -> bool:
    """Whether splicing ``replacement`` in changes or breaks the case."""
    try:
        candidate_expr = _replace_nth(case.expr, index, replacement)
        env = case.schemas()
        return candidate_expr.schema(env) != case.expr.schema(env)
    except Exception:  # noqa: BLE001 - ill-typed splice: skip it
        return True


def _with_node(case: Case, index: int, replacement: Expr) -> Case:
    expr = _replace_nth(case.expr, index, replacement)
    kept = expr.leaf_names()
    return replace(
        case,
        expr=expr,
        relations={n: r for n, r in case.relations.items() if n in kept},
    )


def _with_relation(
    case: Case, name: str, relation: GeneralizedRelation
) -> Case:
    relations = dict(case.relations)
    relations[name] = relation
    return replace(case, relations=relations)


def _with_tuple(
    case: Case, name: str, t_index: int, gtuple: GeneralizedTuple
) -> Case:
    relation = case.relations[name]
    tuples = list(relation)
    tuples[t_index] = gtuple
    return _with_relation(
        case, name, GeneralizedRelation(relation.schema, tuples)
    )
