"""The differential executor: three evaluations of one case, compared.

Each :class:`~repro.fuzz.case.Case` is evaluated

1. through the generalized algebra with the performance layer as
   configured (the *optimized* run),
2. through the same algebra with every optimization disabled via
   :func:`repro.perf.config.overrides` (the *naive* run), and
3. through :class:`~repro.baseline.finite.FiniteRelation` over bounded
   windows (the *oracle* run) — the paper's own "materialize up to a
   horizon" strawman, reused as an executable specification.

A fourth leg — lowering the expression to a relation-expression plan,
applying the :mod:`repro.plan.rewrite` passes and executing the
rewritten plan — runs when :attr:`DiffConfig.plan_check` resolves on
(by default it follows the global ``REPRO_OPTIMIZE`` switch), gating
the logical planner against the same corpus.

Window commutation
------------------

Every operation of the algebra commutes with restriction to a window
``[low, high]^k`` — evaluate the children on the window, apply the
finite op, and you get exactly the true result restricted to the window
— with one exception: **projection**.  A point surviving projection may
only have witnesses (values of the dropped attributes) far outside the
window.  The oracle therefore evaluates each node over its own window,
computed top-down: a projection's child window is the parent window
widened by a *margin* derived from the case's constants (DBM bounds,
lrp offsets, the lcm of lrp periods, selection constants).  If the root
comparison diverges for an expression containing projection, the oracle
re-runs with the margin doubled; a divergence that vanishes is reported
as status ``"unstable"`` (a margin artifact, not a bug).  Expressions
without projection are exact — no margin, no retry, any divergence is
real.

Cost guards are deterministic, not wall-clock: the oracle estimates
materialization sizes before enumerating and raises
:class:`OversizeError` (status ``"oversize"``) past a row cap, and the
generalized runs cap intermediate tuple counts the same way — a case is
either fully checked or deterministically skipped, identically on every
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro import obs
from repro.baseline.finite import FiniteRelation
from repro.core import algebra
from repro.core.constraints import Op, VarVarAtom, parse_atoms
from repro.core.errors import NormalizationLimitError, ReproError
from repro.core.relations import GeneralizedRelation, Schema
from repro.fuzz.case import Case
from repro.fuzz.expr import (
    Complement,
    Expr,
    Intersect,
    Join,
    Leaf,
    Product,
    Project,
    Select,
    Subtract,
    Union,
)
from repro.perf import config as perf_config


class OversizeError(ReproError):
    """A deterministic cost guard tripped; the case is skipped, not failed."""


@dataclass(frozen=True)
class DiffConfig:
    """Knobs for the differential run.

    All caps are deterministic (counts, not wall-clock), so a skipped
    case is skipped identically on every machine and every rerun.
    """

    #: Estimated-row cap for any finite materialization or finite
    #: intermediate result.
    row_cap: int = 200_000
    #: Cap on ``|A| * |B|`` before a finite join is attempted.
    pair_cap: int = 2_000_000
    #: Cap on generalized intermediate tuple counts.
    tuple_cap: int = 4_000
    #: Cap on ``|A| * |B|`` for pairwise generalized ops (intersect,
    #: subtract, join, product examine every tuple pair).
    tuple_pair_cap: int = 100_000
    #: How many missing/extra rows a divergence records verbatim.
    sample: int = 10
    #: Also compare the optimized and naive runs' canonical key sets —
    #: a stricter, *syntactic* check on top of the semantic snapshot.
    #: Off by default: the pairwise prefilter legitimately coarsens
    #: ``subtract``'s staircase decomposition (skipping subtrahend
    #: tuples that cannot overlap yields fewer, larger pieces denoting
    #: the same point set), so key sets differing is expected, not a
    #: bug.  Semantics — the snapshot comparison — is the contract.
    syntactic_check: bool = False
    #: Also run the expression through the logical planner: lower it to
    #: a relation-expression plan, apply the rewrite passes
    #: (:func:`repro.plan.rewrite.optimize_plan`) and execute the
    #: rewritten plan, comparing its snapshot against the naive run.
    #: ``None`` (the default) follows the global optimizer switch
    #: (:attr:`repro.perf.config.PerfConfig.optimize`, environment
    #: variable ``REPRO_OPTIMIZE``), so an optimizer-on test leg
    #: exercises the plan path over the whole corpus automatically.
    plan_check: bool | None = None


DEFAULT_CONFIG = DiffConfig()

#: Result statuses, in severity order.
STATUSES = ("ok", "unstable", "oversize", "limit", "error", "divergent")


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two evaluations of a case.

    Kinds:
        ``"oracle"``: the optimized generalized result and the finite
            oracle denote different point sets on the core window.
        ``"perf"``: the optimized and naive generalized runs denote
            different point sets — an optimization changed semantics.
        ``"perf-syntactic"``: optimized and naive agree semantically but
            produce different canonical tuple sets — an optimization
            changed the representation.
        ``"plan"``: the rewritten logical plan and the naive run denote
            different point sets — a planner rewrite changed semantics.
    """

    kind: str
    detail: str
    #: Sample rows the reference has and the optimized run lacks.
    missing: tuple = ()
    #: Sample rows the optimized run has and the reference lacks.
    extra: tuple = ()

    def __str__(self) -> str:
        parts = [f"[{self.kind}] {self.detail}"]
        if self.missing:
            parts.append(f"  missing: {list(self.missing)}")
        if self.extra:
            parts.append(f"  extra:   {list(self.extra)}")
        return "\n".join(parts)


@dataclass
class CaseResult:
    """The outcome of one differential run."""

    case: Case
    status: str
    divergences: list[Divergence] = field(default_factory=list)
    margin: int = 0
    retried: bool = False
    error: str = ""

    @property
    def ok(self) -> bool:
        """Whether all three engines agreed (status ``"ok"``)."""
        return self.status == "ok"

    @property
    def failing(self) -> bool:
        """Whether the case demands attention (a bug or a crash)."""
        return self.status in ("divergent", "error")

    def summary(self) -> str:
        """One human-readable line per outcome, plus any divergences."""
        text = f"{self.status}: {self.case.describe()}"
        if self.error:
            text += f" ({self.error})"
        for div in self.divergences:
            text += "\n" + str(div)
        return text


# ----------------------------------------------------------------------
# generalized evaluation
# ----------------------------------------------------------------------


def eval_generalized(
    case: Case, config: DiffConfig = DEFAULT_CONFIG
) -> GeneralizedRelation:
    """Evaluate the case's expression through the generalized algebra.

    Runs under whatever :mod:`repro.perf` configuration is active —
    callers choose optimized versus naive with
    :func:`repro.perf.config.overrides`.  Raises :class:`OversizeError`
    when an intermediate exceeds ``config.tuple_cap`` tuples.
    """

    def ev(node: Expr) -> GeneralizedRelation:
        def pair(left: Expr, right: Expr):
            r1, r2 = ev(left), ev(right)
            pairs = len(r1) * len(r2)
            if pairs > config.tuple_pair_cap:
                raise OversizeError(
                    f"pairwise generalized op over {pairs} tuple pairs "
                    f"(cap {config.tuple_pair_cap})"
                )
            return r1, r2

        if isinstance(node, Leaf):
            return case.relations[node.name]
        if isinstance(node, Select):
            out = algebra.select(ev(node.child), node.condition)
        elif isinstance(node, Project):
            out = algebra.project(ev(node.child), node.names)
        elif isinstance(node, Complement):
            child = ev(node.child)
            domains = (
                {n: case.data_domains[n] for n in child.schema.data_names}
                if child.schema.data_arity
                else None
            )
            out = algebra.complement(child, data_domains=domains)
        elif isinstance(node, Union):
            out = algebra.union(ev(node.left), ev(node.right))
        elif isinstance(node, Intersect):
            out = algebra.intersect(*pair(node.left, node.right))
        elif isinstance(node, Subtract):
            out = algebra.subtract(*pair(node.left, node.right))
        elif isinstance(node, Join):
            out = algebra.join(*pair(node.left, node.right))
        elif isinstance(node, Product):
            out = algebra.product(*pair(node.left, node.right))
        else:  # pragma: no cover - exhaustive over expr.py
            raise ReproError(f"unknown expression node {type(node).__name__}")
        if len(out) > config.tuple_cap:
            raise OversizeError(
                f"generalized intermediate has {len(out)} tuples "
                f"(cap {config.tuple_cap})"
            )
        return out

    return ev(case.expr)


# ----------------------------------------------------------------------
# the logical-plan leg
# ----------------------------------------------------------------------


def plan_from_expr(case: Case):
    """Lower a fuzz expression to a relation-expression plan.

    The fuzz AST (:mod:`repro.fuzz.expr`) maps 1:1 onto the plan IR
    (:mod:`repro.plan.nodes`), so the bridge is a direct structural
    translation; running the un-rewritten plan through the native
    engine performs exactly the algebra calls
    :func:`eval_generalized` performs.
    """
    from repro.plan import nodes as ir

    def lower(node: Expr):
        if isinstance(node, Leaf):
            return ir.Scan(node.name, case.relations[node.name].schema)
        if isinstance(node, Select):
            return ir.Select(lower(node.child), node.condition)
        if isinstance(node, Project):
            return ir.Project(lower(node.child), tuple(node.names))
        if isinstance(node, Complement):
            return ir.Complement(lower(node.child))
        if isinstance(node, Union):
            return ir.Union(lower(node.left), lower(node.right))
        if isinstance(node, Intersect):
            return ir.Intersect(lower(node.left), lower(node.right))
        if isinstance(node, Subtract):
            return ir.Subtract(lower(node.left), lower(node.right))
        if isinstance(node, Join):
            return ir.Join(lower(node.left), lower(node.right))
        if isinstance(node, Product):
            return ir.Product(lower(node.left), lower(node.right))
        raise ReproError(  # pragma: no cover - exhaustive over expr.py
            f"unknown expression node {type(node).__name__}"
        )

    return lower(case.expr)


def eval_planned(
    case: Case, config: DiffConfig = DEFAULT_CONFIG
) -> GeneralizedRelation:
    """Evaluate the case through the optimized logical plan.

    Lowers the expression with :func:`plan_from_expr`, applies the
    rewrite passes, and executes the rewritten plan on the native
    engine with the same deterministic caps :func:`eval_generalized`
    enforces (via the execution context's observation hooks).
    """
    from repro.plan import nodes as ir
    from repro.plan.engine import ExecutionContext, get_engine
    from repro.plan.rewrite import optimize_plan

    plan = plan_from_expr(case)
    domain_size = max(
        (len(values) for values in case.data_domains.values()), default=0
    )
    plan, _ = optimize_plan(
        plan, relations=case.relations, domain_size=domain_size
    )

    def on_result(node, result) -> None:
        if isinstance(node, ir.Scan):
            return  # leaves are inputs, not intermediates
        if len(result) > config.tuple_cap:
            raise OversizeError(
                f"generalized intermediate has {len(result)} tuples "
                f"(cap {config.tuple_cap})"
            )

    def on_pair(node, left: int, right: int) -> None:
        if isinstance(node, ir.Union):
            return  # union concatenates; only true pairwise ops are capped
        pairs = left * right
        if pairs > config.tuple_pair_cap:
            raise OversizeError(
                f"pairwise generalized op over {pairs} tuple pairs "
                f"(cap {config.tuple_pair_cap})"
            )

    ctx = ExecutionContext(
        relations=case.relations,
        data_domains=case.data_domains,
        memo={},
        on_result=on_result,
        on_pair=on_pair,
    )
    return get_engine("native").run(plan, ctx)


# ----------------------------------------------------------------------
# the finite-window oracle
# ----------------------------------------------------------------------


def compute_margin(case: Case) -> int:
    """The window widening applied below each projection node.

    Zero when the expression contains no projection (evaluation is then
    exact).  Otherwise a bound, derived from the case's constants, on
    how far a projection witness can sit from the window: difference
    chains within one tuple's constraint system, lrp offsets, one full
    lcm of the lrp periods (an intersection of periodic lrps only
    repeats every lcm), selection constants, and the window span itself.
    The retry-with-doubled-margin backstop in :func:`run_case` covers
    the cases this underestimates.
    """
    expr = case.expr
    if not any(isinstance(n, Project) for n in expr.walk()):
        return 0
    tuple_bound_sums = [0]
    offsets = [0]
    periods: set[int] = {1}
    for name in sorted(expr.leaf_names()):
        for gtuple in case.relations.get(name, ()):
            tuple_bound_sums.append(
                sum(abs(b) + 1 for _, _, b in gtuple.dbm.iter_bounds())
            )
            for lrp in gtuple.lrps:
                offsets.append(abs(lrp.offset))
                if lrp.period > 0:
                    periods.add(lrp.period)
    select_consts = [0]
    for node in expr.walk():
        if isinstance(node, Select):
            select_consts.extend(
                abs(atom.const) for atom in parse_atoms(node.condition)
            )
    lcm = 1
    for p in periods:
        lcm = lcm * p // gcd(lcm, p)
    span = case.high - case.low
    return (
        span
        + 3 * max(tuple_bound_sums)
        + max(offsets)
        + max(select_consts)
        + 2 * lcm
        + 2
    )


def _lrp_count(lrp, low: int, high: int) -> int:
    """How many points of ``lrp`` lie in ``[low, high]``."""
    if low > high:
        return 0
    if lrp.period == 0:
        return 1 if low <= lrp.offset <= high else 0
    return max(
        0,
        (high - lrp.offset) // lrp.period
        - (low - 1 - lrp.offset) // lrp.period,
    )


def _estimate_rows(relation: GeneralizedRelation, low: int, high: int) -> int:
    """Upper estimate of ``materialize(relation, low, high)`` row count."""
    total = 0
    for gtuple in relation:
        probe = gtuple.dbm.copy()
        if not probe.close():
            continue
        count = 1
        for i, lrp in enumerate(gtuple.lrps):
            lo, hi = low, high
            dbm_lo = probe.lower(i)
            dbm_hi = probe.upper(i)
            if dbm_lo is not None:
                lo = max(lo, dbm_lo)
            if dbm_hi is not None:
                hi = min(hi, dbm_hi)
            count *= _lrp_count(lrp, lo, hi)
            if count == 0:
                break
        total += count
    return total


_CMP = {
    Op.LE: lambda a, b: a <= b,
    Op.GE: lambda a, b: a >= b,
    Op.EQ: lambda a, b: a == b,
    Op.LT: lambda a, b: a < b,
    Op.GT: lambda a, b: a > b,
}


def _finite_predicate(schema: Schema, condition: str):
    """Compile a restricted-constraint condition to a finite row test."""
    index = {name: schema.names.index(name) for name in schema.temporal_names}
    checks = []
    for atom in parse_atoms(condition):
        left = index[atom.left]
        if isinstance(atom, VarVarAtom):
            right = index[atom.right]
            checks.append(
                (left, _CMP[atom.op], right, atom.const)
            )
        else:
            checks.append((left, _CMP[atom.op], None, atom.const))

    def predicate(row: tuple) -> bool:
        for left, cmp, right, const in checks:
            target = const if right is None else row[right] + const
            if not cmp(row[left], target):
                return False
        return True

    return predicate


def _trim(relation: FiniteRelation, low: int, high: int) -> FiniteRelation:
    """Restrict a finite relation to rows with temporal values in window."""
    temporal_idx = [
        i for i, a in enumerate(relation.schema.attributes) if a.temporal
    ]
    return relation.select(
        lambda row: all(low <= row[i] <= high for i in temporal_idx)
    )


def eval_finite(
    case: Case, margin: int, config: DiffConfig = DEFAULT_CONFIG
) -> FiniteRelation:
    """Evaluate the case through the finite oracle over windows.

    Every node is evaluated over its own window — the core window
    widened by ``margin`` for each projection node above it — and the
    result holds exactly the true result's rows with all temporal
    values in the core window (up to margin adequacy; see the module
    docstring).
    """

    def guard(rows: int, what: str) -> None:
        if rows > config.row_cap:
            raise OversizeError(
                f"finite {what} would hold ~{rows} rows (cap {config.row_cap})"
            )

    def ev(node: Expr, low: int, high: int) -> FiniteRelation:
        if isinstance(node, Leaf):
            relation = case.relations[node.name]
            guard(_estimate_rows(relation, low, high), f"leaf {node.name}")
            return FiniteRelation.materialize(relation, low, high)
        if isinstance(node, Select):
            child = ev(node.child, low, high)
            return child.select(_finite_predicate(child.schema, node.condition))
        if isinstance(node, Project):
            child = ev(node.child, low - margin, high + margin)
            return _trim(child.project(node.names), low, high)
        if isinstance(node, Complement):
            child = ev(node.child, low, high)
            schema = child.schema
            universe = (high - low + 1) ** schema.temporal_arity
            domains: dict[str, list] = {
                name: list(range(low, high + 1))
                for name in schema.temporal_names
            }
            for name in schema.data_names:
                domains[name] = list(case.data_domains[name])
                universe *= len(domains[name])
            guard(universe, "complement universe")
            return child.complement(domains)
        if isinstance(node, Union):
            return ev(node.left, low, high).union(ev(node.right, low, high))
        if isinstance(node, Intersect):
            return ev(node.left, low, high).intersect(
                ev(node.right, low, high)
            )
        if isinstance(node, Subtract):
            return ev(node.left, low, high).subtract(ev(node.right, low, high))
        if isinstance(node, (Join, Product)):
            left = ev(node.left, low, high)
            right = ev(node.right, low, high)
            guard_rows = len(left) * len(right)
            if isinstance(node, Product):
                guard(guard_rows, "product")
                out = left.product(right)
            else:
                if guard_rows > config.pair_cap:
                    raise OversizeError(
                        f"finite join over {guard_rows} row pairs "
                        f"(cap {config.pair_cap})"
                    )
                out = left.join(right)
            guard(len(out), "join/product result")
            return out
        raise ReproError(  # pragma: no cover - exhaustive over expr.py
            f"unknown expression node {type(node).__name__}"
        )

    return ev(case.expr, case.low, case.high)


# ----------------------------------------------------------------------
# the differential run
# ----------------------------------------------------------------------


def _sample(rows: set, limit: int) -> tuple:
    return tuple(sorted(rows, key=repr)[:limit])


def _snapshot_divergence(
    kind: str,
    reference: set,
    optimized: set,
    config: DiffConfig,
    label: str,
) -> Divergence:
    missing = reference - optimized
    extra = optimized - reference
    return Divergence(
        kind=kind,
        detail=(
            f"{label}: {len(missing)} row(s) missing from and "
            f"{len(extra)} extra in the optimized result"
        ),
        missing=_sample(missing, config.sample),
        extra=_sample(extra, config.sample),
    )


def _describe_error(exc: Exception) -> str:
    return f"{type(exc).__name__}: {exc}"


def run_case(case: Case, config: DiffConfig = DEFAULT_CONFIG) -> CaseResult:
    """Run the three-way differential check on one case."""
    registry = obs.get_registry()
    registry.counter("fuzz.cases").inc()

    def done(result: CaseResult) -> CaseResult:
        registry.counter(f"fuzz.{result.status}").inc()
        return result

    with obs.span("fuzz.case", seed=case.seed, expr=str(case.expr)):
        try:
            case.validate()
        except ReproError as exc:
            return done(
                CaseResult(case, "error", error=f"invalid case: {exc}")
            )

        def evaluate(label: str):
            try:
                with obs.span(f"fuzz.eval.{label}"):
                    return eval_generalized(case, config), None
            except OversizeError as exc:
                return None, CaseResult(case, "oversize", error=str(exc))
            except NormalizationLimitError as exc:
                return None, CaseResult(case, "limit", error=str(exc))
            except Exception as exc:  # noqa: BLE001 - fuzzing catches all
                return None, CaseResult(
                    case, "error", error=f"{label}: {_describe_error(exc)}"
                )

        optimized, failure = evaluate("optimized")
        if failure is not None:
            return done(failure)
        with perf_config.overrides(
            cache_enabled=False,
            prefilter_enabled=False,
            incremental_enabled=False,
            workers=0,
        ):
            naive, failure = evaluate("naive")
        if failure is not None:
            return done(failure)

        divergences: list[Divergence] = []
        opt_snap = optimized.snapshot(case.low, case.high)
        naive_snap = naive.snapshot(case.low, case.high)
        if opt_snap != naive_snap:
            divergences.append(
                _snapshot_divergence(
                    "perf", naive_snap, opt_snap, config, "optimized vs naive"
                )
            )
        elif config.syntactic_check:
            opt_keys = {t.canonical_key() for t in optimized}
            naive_keys = {t.canonical_key() for t in naive}
            if opt_keys != naive_keys:
                divergences.append(
                    Divergence(
                        kind="perf-syntactic",
                        detail=(
                            "optimized and naive runs denote the same points "
                            f"but differ syntactically ({len(opt_keys)} vs "
                            f"{len(naive_keys)} canonical tuples)"
                        ),
                    )
                )

        plan_check = config.plan_check
        if plan_check is None:
            plan_check = perf_config.get_config().optimize
        if plan_check:
            try:
                with obs.span("fuzz.eval.plan"):
                    planned = eval_planned(case, config)
            except OversizeError as exc:
                return done(CaseResult(case, "oversize", error=str(exc)))
            except NormalizationLimitError as exc:
                return done(CaseResult(case, "limit", error=str(exc)))
            except Exception as exc:  # noqa: BLE001 - fuzzing catches all
                return done(
                    CaseResult(
                        case, "error", error=f"plan: {_describe_error(exc)}"
                    )
                )
            plan_snap = planned.snapshot(case.low, case.high)
            if plan_snap != naive_snap:
                divergences.append(
                    _snapshot_divergence(
                        "plan",
                        naive_snap,
                        plan_snap,
                        config,
                        "optimized plan vs naive",
                    )
                )

        margin = compute_margin(case)
        retried = False
        unstable = False
        try:
            with obs.span("fuzz.eval.oracle", margin=margin):
                oracle_rows = set(eval_finite(case, margin, config).rows)
        except OversizeError as exc:
            return done(CaseResult(case, "oversize", error=str(exc)))
        except Exception as exc:  # noqa: BLE001 - fuzzing catches all
            return done(
                CaseResult(case, "error", error=f"oracle: {_describe_error(exc)}")
            )
        if oracle_rows != opt_snap and margin > 0:
            # The mismatch may be a projection-margin artifact; double
            # the margin and see whether it survives.
            retried = True
            try:
                with obs.span("fuzz.eval.oracle", margin=margin * 2):
                    wider = set(eval_finite(case, margin * 2, config).rows)
            except OversizeError:
                wider = None
            except Exception as exc:  # noqa: BLE001 - fuzzing catches all
                return done(
                    CaseResult(
                        case,
                        "error",
                        error=f"oracle retry: {_describe_error(exc)}",
                        margin=margin,
                        retried=True,
                    )
                )
            if wider is None or wider == opt_snap:
                # Vanished (margin artifact) or unconfirmable (the wider
                # window tripped the cost guard): not evidence of a bug.
                unstable = True
            else:
                oracle_rows = wider
        if not unstable and oracle_rows != opt_snap:
            divergences.append(
                _snapshot_divergence(
                    "oracle",
                    oracle_rows,
                    opt_snap,
                    config,
                    "finite oracle vs optimized",
                )
            )

        if divergences:
            status = "divergent"
        elif unstable:
            status = "unstable"
        else:
            status = "ok"
        return done(
            CaseResult(
                case,
                status,
                divergences=divergences,
                margin=margin,
                retried=retried,
            )
        )
