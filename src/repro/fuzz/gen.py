"""Seeded random generation of fuzz cases.

Relations are drawn from the same distributions as the
:mod:`repro.testing` strategies (via the shared ``seeded_*``
generators), and expressions are grown bottom-up from a pool of typed
subexpressions, so every operation is produced with well-formed
schemas by construction.  Everything is driven by one
:class:`random.Random`: a ``(seed, profile)`` pair replays the exact
same case on any machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.constraints import VarConstAtom, VarVarAtom, Op
from repro.core.relations import Schema
from repro.fuzz.case import Case
from repro.fuzz.expr import (
    Complement,
    Expr,
    Intersect,
    Join,
    Leaf,
    Product,
    Project,
    Select,
    Subtract,
    Union,
)
from repro.testing import seeded_relation

#: The data pool cases draw data values from (and complement against).
DATA_POOL = ("a", "b")

_OPS = ("<=", ">=", "=", "<", ">")


@dataclass(frozen=True)
class FuzzProfile:
    """Size knobs for case generation.

    The defaults keep every case small enough for exhaustive window
    checking: the finite oracle materializes each leaf over the
    comparison window (enlarged by the projection margin), so value
    magnitude and tuple counts trade directly against throughput.
    """

    max_tuples: int = 3
    max_constraints: int = 3
    max_bound: int = 5
    max_period: int = 6
    max_ops: int = 5
    #: Per-mille probability that the primary schema carries a data column.
    data_permille: int = 300
    #: Per-mille probability that a third leaf over a secondary schema exists.
    secondary_permille: int = 500
    low: int = -4
    high: int = 4
    #: Cap on any subexpression's temporal arity (join/product growth).
    max_temporal_arity: int = 3


DEFAULT_PROFILE = FuzzProfile()


def case_seed(base_seed: int, index: int) -> int:
    """The per-case seed for case ``index`` of a ``--seed base_seed`` run."""
    return base_seed * 1_000_003 + index


def generate_case(seed: int, profile: FuzzProfile = DEFAULT_PROFILE) -> Case:
    """Deterministically generate one fuzz case from ``seed``."""
    rng = random.Random(seed)
    with_data = rng.randrange(1000) < profile.data_permille
    arity = rng.randint(1, 2)
    data_choices: tuple[tuple, ...] = (
        tuple((v,) for v in DATA_POOL) if with_data else ((),)
    )
    primary = Schema.make(
        temporal=[f"T{i + 1}" for i in range(arity)],
        data=["D1"] if with_data else [],
    )
    relations = {
        name: seeded_relation(
            rng,
            temporal_arity=arity,
            data_choices=data_choices,
            max_tuples=profile.max_tuples,
            max_period=profile.max_period,
            schema=primary,
        )
        for name in ("R0", "R1")
    }
    pool: list[tuple[Expr, Schema]] = [
        (Leaf(name), primary) for name in relations
    ]
    if rng.randrange(1000) < profile.secondary_permille:
        secondary_names = rng.choice(_secondary_name_choices(arity))
        secondary = Schema.make(temporal=list(secondary_names))
        relations["S"] = seeded_relation(
            rng,
            temporal_arity=len(secondary_names),
            data_choices=((),),
            max_tuples=profile.max_tuples,
            max_period=profile.max_period,
            schema=secondary,
        )
        pool.append((Leaf("S"), secondary))
    for _ in range(rng.randint(1, profile.max_ops)):
        grown = _grow(rng, pool, profile)
        if grown is not None:
            pool.append(grown)
    expr = pool[-1][0]
    used = expr.leaf_names()
    return Case(
        relations={n: r for n, r in relations.items() if n in used},
        expr=expr,
        low=profile.low,
        high=profile.high,
        data_domains={"D1": list(DATA_POOL)} if with_data else {},
        seed=seed,
    )


def _secondary_name_choices(primary_arity: int) -> list[tuple[str, ...]]:
    """Secondary temporal schemas: overlapping, disjoint and mixed names."""
    if primary_arity == 1:
        return [("T1",), ("T2",), ("T1", "T2"), ("T2", "T3")]
    return [("T1",), ("T3",), ("T2", "T3"), ("T3", "T4")]


_GROW_KINDS = (
    "subtract",
    "union",
    "intersect",
    "select",
    "project",
    "join",
    "complement",
    "product",
)


def _grow(
    rng: random.Random,
    pool: list[tuple[Expr, Schema]],
    profile: FuzzProfile,
) -> tuple[Expr, Schema] | None:
    """Try to add one operation node over existing pool entries.

    Starts from a randomly drawn operation kind and falls through the
    remaining kinds in a fixed rotation until one is constructible, so
    a draw is never silently wasted (the flaw the old ``dbms`` strategy
    had with difference constraints).
    """
    start = rng.randrange(len(_GROW_KINDS))
    for step in range(len(_GROW_KINDS)):
        kind = _GROW_KINDS[(start + step) % len(_GROW_KINDS)]
        built = _try_grow(rng, kind, pool, profile)
        if built is not None:
            return built
    return None


def _try_grow(
    rng: random.Random,
    kind: str,
    pool: list[tuple[Expr, Schema]],
    profile: FuzzProfile,
) -> tuple[Expr, Schema] | None:
    env_like = pool
    if kind in ("union", "intersect", "subtract"):
        by_schema: dict[Schema, list[Expr]] = {}
        for e, s in env_like:
            by_schema.setdefault(s, []).append(e)
        groups = [g for g in by_schema.values()]
        group = rng.choice(groups)
        left = rng.choice(group)
        right = rng.choice(group)
        node_cls = {"union": Union, "intersect": Intersect, "subtract": Subtract}[
            kind
        ]
        schema = next(s for e, s in env_like if e is left)
        return node_cls(left, right), schema
    if kind == "select":
        candidates = [(e, s) for e, s in env_like if s.temporal_arity >= 1]
        if not candidates:
            return None
        child, schema = rng.choice(candidates)
        condition = _random_condition(rng, schema, profile)
        return Select(child, condition), schema
    if kind == "project":
        candidates = [(e, s) for e, s in env_like if s.temporal_arity >= 1]
        if not candidates:
            return None
        child, schema = rng.choice(candidates)
        names = _random_projection(rng, schema)
        node = Project(child, names)
        return node, Schema(tuple(schema.attribute(n) for n in names))
    if kind == "complement":
        child, schema = rng.choice(env_like)
        return Complement(child), schema
    if kind == "join":
        left, s1 = rng.choice(env_like)
        right, s2 = rng.choice(env_like)
        for attr in s1.attributes:
            if s2.has(attr.name) and s2.attribute(attr.name).temporal != attr.temporal:
                return None
        extra = tuple(a for a in s2.attributes if not s1.has(a.name))
        schema = Schema(s1.attributes + extra)
        if schema.temporal_arity > profile.max_temporal_arity:
            return None
        return Join(left, right), schema
    if kind == "product":
        candidates = []
        for left, s1 in env_like:
            for right, s2 in env_like:
                if set(s1.names) & set(s2.names):
                    continue
                if (
                    s1.temporal_arity + s2.temporal_arity
                    > profile.max_temporal_arity
                ):
                    continue
                candidates.append((left, s1, right, s2))
        if not candidates:
            return None
        left, s1, right, s2 = rng.choice(candidates)
        return Product(left, right), Schema(s1.attributes + s2.attributes)
    return None


def _random_condition(
    rng: random.Random, schema: Schema, profile: FuzzProfile
) -> str:
    atoms = []
    names = schema.temporal_names
    for _ in range(rng.randint(1, 2)):
        left = rng.choice(names)
        op = Op(rng.choice(_OPS))
        const = rng.randint(-profile.max_bound, profile.max_bound)
        if len(names) >= 2 and rng.randrange(2):
            right = rng.choice([n for n in names if n != left])
            atoms.append(str(VarVarAtom(left, op, right, const)))
        else:
            atoms.append(str(VarConstAtom(left, op, const)))
    return " & ".join(atoms)


def _random_projection(rng: random.Random, schema: Schema) -> tuple[str, ...]:
    """A random attribute list keeping at least one temporal attribute.

    Either a proper subset (exercising temporal elimination) or a
    permutation of the full list (exercising pure re-ordering).
    """
    names = list(schema.names)
    temporal = list(schema.temporal_names)
    if len(names) >= 2 and rng.randrange(3):
        keep_size = rng.randint(1, len(names) - 1)
        must_keep = rng.choice(temporal)
        others = [n for n in names if n != must_keep]
        kept = {must_keep, *rng.sample(others, keep_size - 1)} if keep_size > 1 else {
            must_keep
        }
        chosen = [n for n in names if n in kept]
    else:
        chosen = names[:]
    rng.shuffle(chosen)
    return tuple(chosen)
