"""Fuzz cases: (relations, expression, window) triples, JSON round-trip.

A :class:`Case` is the unit the harness generates, executes, shrinks
and persists.  The JSON form (``format: repro-fuzz-case/1``) is what
lands in ``tests/corpus/`` — every field needed to replay the case
byte-for-byte on any checkout, plus a free-form ``note`` recording why
the case was interesting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.errors import ReproValueError
from repro.core.relations import GeneralizedRelation, Schema
from repro.fuzz.expr import Expr, expr_from_dict
from repro.storage import jsonio

FORMAT = "repro-fuzz-case/1"


@dataclass(frozen=True)
class Case:
    """One differential-fuzzing case.

    Attributes:
        relations: the named base relations the expression's leaves read.
        expr: the algebra expression under test.
        low, high: the core comparison window (symbolic and finite
            results are compared on points whose temporal coordinates
            all lie in ``[low, high]``).
        data_domains: finite universe per data attribute name, used by
            both complement implementations.
        seed: the generator seed that produced the case (``None`` for
            hand-written cases).
        note: free-form provenance (what bug the case reproduces).
    """

    relations: dict[str, GeneralizedRelation]
    expr: Expr
    low: int
    high: int
    data_domains: dict[str, list] = field(default_factory=dict)
    seed: int | None = None
    note: str = ""

    # -- structure -----------------------------------------------------

    def schemas(self) -> dict[str, Schema]:
        """Leaf-name-to-schema environment for :meth:`Expr.schema`."""
        return {name: rel.schema for name, rel in self.relations.items()}

    def result_schema(self) -> Schema:
        """The expression's result schema (raises on ill-formed trees)."""
        return self.expr.schema(self.schemas())

    def validate(self) -> None:
        """Raise unless the case is well-formed and replayable."""
        schema = self.result_schema()
        for name in schema.data_names:
            if name not in self.data_domains:
                raise ReproValueError(
                    f"case is missing a data domain for attribute {name!r}"
                )
        for rel in self.relations.values():
            for dname in rel.schema.data_names:
                if dname not in self.data_domains:
                    raise ReproValueError(
                        f"case is missing a data domain for attribute {dname!r}"
                    )
        if not isinstance(self.low, int) or not isinstance(self.high, int):
            raise ReproValueError("window bounds must be integers")

    def total_tuples(self) -> int:
        """Generalized tuples across every base relation (the size the
        shrinker minimizes)."""
        return sum(len(rel) for rel in self.relations.values())

    def describe(self) -> str:
        """A one-line human summary."""
        rels = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in sorted(self.relations.items())
        )
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return (
            f"window=[{self.low},{self.high}]{seed} relations({rels}) "
            f"expr={self.expr}"
        )

    def with_note(self, note: str) -> Case:
        """A copy of this case with its free-text note replaced."""
        return replace(self, note=note)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready structural dump (inverse of :func:`case_from_dict`)."""
        return {
            "format": FORMAT,
            "seed": self.seed,
            "note": self.note,
            "window": [self.low, self.high],
            "data_domains": {
                name: list(values)
                for name, values in sorted(self.data_domains.items())
            },
            "relations": {
                name: jsonio.relation_to_dict(rel)
                for name, rel in sorted(self.relations.items())
            },
            "expr": self.expr.to_dict(),
        }

    def dumps(self) -> str:
        """The case as replayable, indented JSON text."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        """Write the case to ``path`` as indented JSON."""
        path = Path(path)
        path.write_text(self.dumps() + "\n")
        return path


def case_from_dict(payload: dict) -> Case:
    """Rebuild a case from its :meth:`Case.to_dict` form."""
    try:
        if payload.get("format") != FORMAT:
            raise ReproValueError(
                f"unsupported case format {payload.get('format')!r} "
                f"(expected {FORMAT!r})"
            )
        low, high = payload["window"]
        return Case(
            relations={
                name: jsonio.relation_from_dict(entry)
                for name, entry in payload["relations"].items()
            },
            expr=expr_from_dict(payload["expr"]),
            low=int(low),
            high=int(high),
            data_domains={
                name: list(values)
                for name, values in payload.get("data_domains", {}).items()
            },
            seed=payload.get("seed"),
            note=payload.get("note", ""),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproValueError(f"malformed case payload: {exc}") from exc


def load_case(path: str | Path) -> Case:
    """Read a case back from a JSON file."""
    return case_from_dict(json.loads(Path(path).read_text()))
