"""Integer arithmetic kernel used throughout the library.

The algorithms here back Section 3.2.1 of the paper: intersecting two
linear repeating points reduces to solving a linear congruence, which in
turn reduces to the extended Euclidean algorithm.
"""

from repro.arith.congruence import (
    CongruenceSolution,
    crt_pair,
    crt_system,
    solve_linear_congruence,
)
from repro.arith.euclid import (
    extended_gcd,
    floor_div,
    lcm,
    lcm_many,
    mod_inverse,
)

__all__ = [
    "CongruenceSolution",
    "crt_pair",
    "crt_system",
    "extended_gcd",
    "floor_div",
    "lcm",
    "lcm_many",
    "mod_inverse",
    "solve_linear_congruence",
]
