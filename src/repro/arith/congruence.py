"""Linear congruences and the Chinese Remainder Theorem.

Intersecting two linear repeating points ``c1 + k1*n1`` and ``c2 + k2*n2``
(Section 3.2.1 of the paper) asks for the integers lying on both
progressions, i.e. the solutions of the simultaneous congruences
``x ≡ c1 (mod k1)`` and ``x ≡ c2 (mod k2)``.  This module provides the
general machinery; :mod:`repro.core.lrp` applies it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arith.euclid import extended_gcd, lcm
from repro.core.errors import ReproValueError


@dataclass(frozen=True)
class CongruenceSolution:
    """All solutions of a congruence: ``x ≡ residue (mod modulus)``.

    ``modulus == 0`` encodes a unique solution ``x == residue``.
    """

    residue: int
    modulus: int

    def __post_init__(self) -> None:
        if self.modulus < 0:
            raise ReproValueError("modulus must be non-negative")
        if self.modulus > 0 and not 0 <= self.residue < self.modulus:
            raise ReproValueError(
                f"residue {self.residue} not reduced modulo {self.modulus}"
            )

    def contains(self, x: int) -> bool:
        """Return whether ``x`` is a solution."""
        if self.modulus == 0:
            return x == self.residue
        return x % self.modulus == self.residue


def solve_linear_congruence(a: int, b: int, m: int) -> CongruenceSolution | None:
    """Solve ``a*x ≡ b (mod m)`` for ``m > 0``.

    Returns the full solution set as a :class:`CongruenceSolution`
    (``x ≡ x0 (mod m/g)`` with ``g = gcd(a, m)``), or ``None`` when there
    is no solution (``g`` does not divide ``b``).

    This is exactly the computation the paper performs to find the ``j``
    with ``(k1*j + (c1 - c2)) mod k2 == 0``.
    """
    if m <= 0:
        raise ReproValueError(f"modulus must be positive, got {m}")
    g, x, _ = extended_gcd(a, m)
    if b % g != 0:
        return None
    m_reduced = m // g
    x0 = (x * (b // g)) % m_reduced
    return CongruenceSolution(residue=x0, modulus=m_reduced)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> CongruenceSolution | None:
    """Solve ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)`` simultaneously.

    Either modulus may be 0, meaning the corresponding congruence pins
    ``x`` to exactly ``r1`` (resp. ``r2``).  Returns ``None`` when the
    system is unsatisfiable.
    """
    if m1 < 0 or m2 < 0:
        raise ReproValueError("moduli must be non-negative")
    if m1 == 0 and m2 == 0:
        return CongruenceSolution(r1, 0) if r1 == r2 else None
    if m1 == 0:
        return CongruenceSolution(r1, 0) if (r1 - r2) % m2 == 0 else None
    if m2 == 0:
        return CongruenceSolution(r2, 0) if (r2 - r1) % m1 == 0 else None
    g = math.gcd(m1, m2)
    if (r2 - r1) % g != 0:
        return None
    m = lcm(m1, m2)
    # x = r1 + m1*t; need m1*t ≡ r2 - r1 (mod m2).
    t_sol = solve_linear_congruence(m1, r2 - r1, m2)
    assert t_sol is not None  # divisibility by g was already checked
    x0 = (r1 + m1 * t_sol.residue) % m
    return CongruenceSolution(residue=x0, modulus=m)


def crt_system(pairs: list[tuple[int, int]]) -> CongruenceSolution | None:
    """Solve a system of congruences ``x ≡ r_i (mod m_i)``.

    ``pairs`` is a list of ``(residue, modulus)`` entries; moduli may be 0
    (exact pins).  An empty system is satisfied by every integer, encoded
    as ``x ≡ 0 (mod 1)``.
    """
    acc = CongruenceSolution(residue=0, modulus=1)
    for residue, modulus in pairs:
        if modulus > 0:
            residue %= modulus
        merged = crt_pair(acc.residue, acc.modulus, residue, modulus)
        if merged is None:
            return None
        acc = merged
    return acc
