"""Extended Euclidean algorithm and related integer helpers.

The paper (Section 3.2.1) observes that the modular inverse needed for
intersecting linear repeating points "can be obtained by an extension of
Euclid's algorithm for computing the greatest common divisor requiring an
O(ln max(k1, k2)) time computation".
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from repro.core.errors import ReproValueError


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Return ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.

    ``g`` is always non-negative.  Works for negative inputs; for
    ``a == b == 0`` it returns ``(0, 1, 0)`` (the identity still holds).
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def mod_inverse(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m`` (``m > 0``).

    Raises :class:`ValueError` when ``a`` is not invertible modulo ``m``,
    i.e. when ``gcd(a, m) != 1``.
    """
    if m <= 0:
        raise ReproValueError(f"modulus must be positive, got {m}")
    g, x, _ = extended_gcd(a, m)
    if g != 1:
        raise ReproValueError(f"{a} has no inverse modulo {m} (gcd is {g})")
    return x % m


def lcm(a: int, b: int) -> int:
    """Return the least common multiple of ``|a|`` and ``|b|``.

    By convention ``lcm(0, b) == lcm(a, 0) == 0``; the paper only ever
    takes lcms of non-zero periods, and period 0 means a singleton lrp
    which never contributes to the common period.
    """
    if a == 0 or b == 0:
        return 0
    return abs(a) * abs(b) // math.gcd(a, b)


def lcm_many(values: Iterable[int]) -> int:
    """Return the lcm of the absolute values of ``values``, skipping zeros.

    Returns 1 when every value is zero (or the iterable is empty): a
    "common period" of 1 is the neutral choice for a tuple whose lrps are
    all singletons.
    """
    result = 1
    for v in values:
        if v != 0:
            result = lcm(result, v)
    return result


def floor_div(a: int, b: int) -> int:
    """Floor division that insists on exact integer semantics for ``b != 0``.

    Python's ``//`` already floors toward negative infinity for ints,
    which is the convention the paper's normalization step 5 requires
    (constants are shifted *down* onto the period grid).  This wrapper
    exists to make that intent explicit and to reject ``b == 0`` loudly.
    """
    if b == 0:
        raise ZeroDivisionError("floor_div by zero")
    return a // b
