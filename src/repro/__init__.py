"""repro — infinite temporal databases via linear repeating points.

A faithful, production-quality reproduction of

    F. Kabanza, J.-M. Stevenne, P. Wolper,
    "Handling Infinite Temporal Data", PODS 1990.

The library stores *infinite* temporal extensions finitely as
generalized relations over linear repeating points (``c + k*n``) with
restricted constraints, supports the full relational algebra on them
(union, intersection, difference, projection, selection, product, join,
complement), characterizes their expressiveness against Presburger
arithmetic, and evaluates a two-sorted first-order query language.

The stable, documented import surface is :mod:`repro.api`; this
top-level package re-exports the core data model for convenience.

Quickstart::

    from repro.api import GeneralizedRelation, Schema

    trains = GeneralizedRelation.empty(
        Schema.make(temporal=["dep", "arr"], data=["service"])
    )
    trains.add_tuple(["2 + 60n", "80 + 60n"], "dep = arr - 78", ["slow"])
    trains.add_tuple(["46 + 60n", "110 + 60n"], "dep = arr - 64", ["express"])
    assert trains.contains([62, 140], ["slow"])   # the 1:02 train
"""

from repro.core import (
    DBM,
    Atom,
    Attribute,
    ConstraintError,
    DomainError,
    EvaluationError,
    GeneralizedRelation,
    GeneralizedTuple,
    LRP,
    NormalizationLimitError,
    Op,
    ParseError,
    ReproError,
    ReproTypeError,
    ReproValueError,
    Schema,
    SchemaError,
    VarConstAtom,
    VarVarAtom,
    parse_atom,
    parse_atoms,
    relation,
)
from repro.periodic import PeriodicSet

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Attribute",
    "ConstraintError",
    "DBM",
    "DomainError",
    "EvaluationError",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "LRP",
    "NormalizationLimitError",
    "Op",
    "ParseError",
    "PeriodicSet",
    "ReproError",
    "ReproTypeError",
    "ReproValueError",
    "Schema",
    "SchemaError",
    "VarConstAtom",
    "VarVarAtom",
    "__version__",
    "parse_atom",
    "parse_atoms",
    "relation",
]
