"""Linear objectives over the temporal attributes of a relation.

An :class:`Objective` is what a ``MINIMIZE``/``MAXIMIZE`` directive
optimizes: either a single temporal attribute (``name``) or a
difference of two (``name - minus``).  Those are exactly the linear
forms a difference bound matrix can answer *exactly* by shortest-path
reasoning — richer linear combinations would need an LP/MILP solver
(compare the bound-optimisation MILP of Cui et al.), which the paper's
representation deliberately avoids.

The textual form mirrors the directive grammar::

    MINIMIZE t : EXISTS u. Trip(t, u)         -- single attribute
    MAXIMIZE arr - dep : Trip(dep, arr)       -- difference

:func:`parse_objective` splits the ``<objective> :`` prefix off such a
directive body and returns the remaining query text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ParseError

_OBJECTIVE_BODY = r"""\s*
        (?P<name>[A-Za-z_][A-Za-z_0-9]*)
        (?:\s*-\s*(?P<minus>[A-Za-z_][A-Za-z_0-9]*))?
        \s*"""

_OBJECTIVE_RE = re.compile(rf"^{_OBJECTIVE_BODY}:\s*", re.VERBOSE)

_BARE_OBJECTIVE_RE = re.compile(rf"^{_OBJECTIVE_BODY}$", re.VERBOSE)


@dataclass(frozen=True)
class Objective:
    """A linear objective: ``name`` or the difference ``name - minus``.

    Both components are *temporal variable names*; they must appear
    free (and temporally sorted) in the query being optimized.
    """

    name: str
    minus: str | None = None

    @property
    def is_difference(self) -> bool:
        """True when the objective is a difference ``name - minus``."""
        return self.minus is not None

    @classmethod
    def parse(cls, text: str) -> Objective:
        """Parse a bare objective: ``"t"`` or ``"arr - dep"``."""
        match = _BARE_OBJECTIVE_RE.match(text)
        if match is None:
            raise ParseError(
                f"malformed objective {text!r}: expected 'var' or 'var - var'"
            )
        name, minus = match.group("name"), match.group("minus")
        if minus == name:
            raise ParseError(
                f"objective {name!r} - {minus!r} is identically zero"
            )
        return cls(name=name, minus=minus)

    def variables(self) -> tuple[str, ...]:
        """The variable names the objective mentions."""
        if self.minus is None:
            return (self.name,)
        return (self.name, self.minus)

    def __str__(self) -> str:
        if self.minus is None:
            return self.name
        return f"{self.name} - {self.minus}"


def parse_objective(text: str) -> tuple[Objective, str]:
    """Split ``<name> [- <name>] : <query>`` into objective and query.

    Raises :class:`ParseError` when the objective prefix is malformed
    (a ``MINIMIZE``/``MAXIMIZE`` directive requires one).
    """
    match = _OBJECTIVE_RE.match(text)
    if match is None:
        raise ParseError(
            "expected an objective ('var' or 'var - var') followed by ':' "
            "after MINIMIZE/MAXIMIZE"
        )
    name = match.group("name")
    minus = match.group("minus")
    if minus == name:
        raise ParseError(
            f"objective {name!r} - {minus!r} is identically zero"
        )
    return Objective(name=name, minus=minus), text[match.end():]
