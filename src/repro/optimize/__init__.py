"""repro.optimize — exact MINIMIZE/MAXIMIZE over generalized relations.

The paper's generalized tuples are difference constraint systems, so
extremum queries over linear objectives (a single temporal variable,
or a difference ``Xi - Xj``) are answerable *exactly* by shortest-path
reasoning over the canonical DBM closure, with lrp periodicity folded
in through CRT residue ladders (``docs/optimization.md``):

* :class:`Objective` / :func:`parse_objective` — the objective grammar
  shared with the ``MINIMIZE``/``MAXIMIZE`` query directives;
* :func:`optimize_tuple` — the per-tuple core: exact finite optima via
  a monotone pinning search probed with the emptiness decision, and
  constructive :class:`UnboundedCertificate` proofs when none exists;
* :func:`optimize_relation` — aggregation across a relation with
  argmin/argmax tuple provenance, as an :class:`OptimizationResult`;
* :mod:`repro.optimize.bench` — the optimizer throughput benchmark
  behind ``BENCH_opt.json``.
"""

from repro.optimize.core import (
    OptimizationResult,
    TupleOptimum,
    UnboundedCertificate,
    optimize_relation,
    optimize_tuple,
)
from repro.optimize.objective import Objective, parse_objective

__all__ = [
    "Objective",
    "OptimizationResult",
    "TupleOptimum",
    "UnboundedCertificate",
    "optimize_relation",
    "optimize_tuple",
    "parse_objective",
]
