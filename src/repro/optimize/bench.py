"""The optimizer benchmark: ``BENCH_opt.json``.

Usage::

    python -m repro.optimize.bench                  # full run
    python -m repro.optimize.bench --smoke          # small/fast variant
    python -m repro.optimize.bench --out out.json

Measures the two claims the optimization layer makes:

* **exactness** — every scheduling-pack scenario
  (:func:`repro.intervals.scheduling.scenario_pack`) must return the
  documented optimum, agree with the finite-window enumeration oracle,
  and flag the unbounded scenario with a valid certificate; a seeded
  random corpus of generalized tuples is additionally cross-checked
  against window enumeration (finite optima) and certificate descent
  (unbounded verdicts);
* **throughput** — :func:`~repro.optimize.core.optimize_tuple` over
  the corpus for single-variable and difference objectives, reported
  as tuples/s plus the emptiness-probe count per tuple (the
  ``optimize.probes`` metric, i.e. the cost of the ladder searches).

``summary.ok`` gates exactness (and sanity of the timing loop), which
is what CI's opt bench smoke asserts.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time

from repro.obs import metrics
from repro.optimize.core import optimize_tuple
from repro.testing import seeded_tuple

#: Half-width of the enumeration window used for corpus parity checks.
#: Seeded tuples keep constants within ±8 and periods within 6, so any
#: finite optimum (and one certificate step beyond any window point)
#: lands well inside ±128.
_WINDOW = 128


def _probes() -> int:
    return metrics().counter("optimize.probes").value


def _scenario_section() -> tuple[list[dict], bool]:
    from repro.intervals.scheduling import (
        oracle_optimum,
        run_scenario,
        scenario_pack,
    )

    rows: list[dict] = []
    all_ok = True
    for scenario in scenario_pack():
        started = time.perf_counter()
        result = run_scenario(scenario)
        elapsed = time.perf_counter() - started
        oracle = oracle_optimum(scenario)
        if scenario.expect_unbounded:
            ok = (
                result.status == "unbounded"
                and result.certificate is not None
            )
        else:
            ok = (
                result.status == "optimal"
                and result.value == oracle == scenario.expected
            )
        all_ok = all_ok and ok
        rows.append(
            {
                "name": scenario.name,
                "status": result.status,
                "value": result.value
                if result.status == "optimal"
                else result.infinity
                if result.status == "unbounded"
                else None,
                "oracle": oracle,
                "expected": scenario.expected,
                "ok": ok,
                "ms": round(elapsed * 1e3, 3),
            }
        )
    return rows, all_ok


def _objective_value(point: tuple[int, ...], i: int, j: int | None) -> int:
    return point[i] - (point[j] if j is not None else 0)


def _tuple_parity(gtuple, sense: str, i: int, j: int | None) -> bool:
    """Cross-check one verdict against window enumeration/descent."""
    result = optimize_tuple(gtuple, sense, i, j=j)
    values = [
        _objective_value(point, i, j)
        for point in gtuple.enumerate(-_WINDOW, _WINDOW)
    ]
    if result.status == "empty":
        return not values
    if result.status == "optimal":
        if not values:
            return False
        best = min(values) if sense == "min" else max(values)
        return result.value == best
    # Unbounded: the certificate must walk the objective past the best
    # window value, through points the tuple still contains.
    cert = result.certificate
    if cert is None:
        return False
    previous = _objective_value(cert.point, i, j)
    for steps in (1, 2, 3):
        point = cert.shifted(steps)
        if not gtuple.contains(point):
            return False
        value = _objective_value(point, i, j)
        if sense == "min" and value >= previous:
            return False
        if sense == "max" and value <= previous:
            return False
        previous = value
    return True


def run_opt_bench(*, tuples: int = 200, smoke: bool = False) -> dict:
    """Run the optimizer benchmark suite; returns the report dict."""
    if smoke:
        tuples = 40

    scenario_rows, scenarios_ok = _scenario_section()

    rng = random.Random(0x0D71)
    corpus = [seeded_tuple(rng, temporal_arity=2) for _ in range(tuples)]

    objectives = (
        ("min", 0, None, "min X1"),
        ("max", 0, None, "max X1"),
        ("min", 0, 1, "min X1 - X2"),
        ("max", 0, 1, "max X1 - X2"),
    )
    throughput: list[dict] = []
    statuses = {"optimal": 0, "unbounded": 0, "empty": 0}
    for sense, i, j, label in objectives:
        probes_before = _probes()
        started = time.perf_counter()
        for gtuple in corpus:
            result = optimize_tuple(gtuple, sense, i, j=j)
            statuses[result.status] += 1
        elapsed = time.perf_counter() - started
        probes = _probes() - probes_before
        throughput.append(
            {
                "objective": label,
                "tuples": len(corpus),
                "wall_s": round(elapsed, 6),
                "tuples_per_s": round(len(corpus) / elapsed, 1)
                if elapsed
                else None,
                "probes": probes,
                "probes_per_tuple": round(probes / len(corpus), 2)
                if corpus
                else None,
            }
        )

    parity_failures = 0
    for gtuple in corpus:
        for sense, i, j, _ in objectives:
            if not _tuple_parity(gtuple, sense, i, j):
                parity_failures += 1
    parity_checks = len(corpus) * len(objectives)

    throughput_ok = all(
        row["wall_s"] >= 0 and row["tuples"] == len(corpus)
        for row in throughput
    )
    report = {
        "meta": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "smoke": smoke,
            "corpus_tuples": tuples,
            "window": _WINDOW,
        },
        "scenarios": scenario_rows,
        "corpus": {
            "statuses": statuses,
            "parity_checks": parity_checks,
            "parity_failures": parity_failures,
        },
        "throughput": throughput,
    }
    report["summary"] = {
        "scenarios_ok": scenarios_ok,
        "corpus_parity_ok": parity_failures == 0,
        "ok": scenarios_ok and parity_failures == 0 and throughput_ok,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the bench and write the JSON report."""
    parser = argparse.ArgumentParser(
        prog="repro.optimize.bench",
        description="Optimizer benchmark (BENCH_opt.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast variant (CI gate)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_opt.json",
        help="report path (default: BENCH_opt.json)",
    )
    parser.add_argument(
        "--tuples",
        type=int,
        default=200,
        help="random corpus size (full run)",
    )
    args = parser.parse_args(argv)
    report = run_opt_bench(tuples=args.tuples, smoke=args.smoke)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in report["scenarios"]:
        print(
            f"scenario {row['name']}: {row['status']} {row['value']} "
            f"(oracle {row['oracle']}) {'ok' if row['ok'] else 'FAIL'}"
        )
    corpus = report["corpus"]
    print(
        f"corpus parity: {corpus['parity_failures']} failures in "
        f"{corpus['parity_checks']} checks {corpus['statuses']}"
    )
    for row in report["throughput"]:
        print(
            f"throughput {row['objective']}: {row['tuples_per_s']}/s "
            f"({row['probes_per_tuple']} probes/tuple)"
        )
    print(f"summary.ok: {report['summary']['ok']} -> {args.out}")
    return 0 if report["summary"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
