"""Exact optimization of linear objectives over generalized tuples.

``MINIMIZE``/``MAXIMIZE`` ask for the extremum of ``Xi`` or ``Xi - Xj``
over the (possibly infinite) point set of a generalized relation.  The
answer is computed *exactly*, never by sampling:

* **Unboundedness** is decided from the canonical (shortest-path
  closed) DBM with singleton lrps pinned.  A missing closure entry
  (``Xi`` has no lower bound, say) is turned into a constructive
  certificate: a concrete witness point plus a set of coordinates that
  can be shifted by multiples of the lcm of their lrp periods while
  staying inside the tuple — closure transitivity guarantees no finite
  difference constraint crosses into the shifted set, and periodicity
  guarantees lrp membership is preserved.  The objective then improves
  without bound along the shift family.

* **Finite optima** are found by a monotone pinning search: the
  minimum of ``Xi`` is the least ``m`` such that ``tuple ∧ Xi <= m`` is
  nonempty, a monotone predicate probed with the fuzz-verified
  emptiness decision (:func:`repro.core.emptiness.tuple_is_empty`) and
  binary-searched over the CRT-compatible candidate ladder: members of
  ``Xi``'s lrp for a single variable, the residue class
  ``(oi - oj) mod gcd(pi, pj)`` for a difference.  The DBM closure
  bound caps one end of the ladder, a concrete witness point seeds the
  other, so the search always terminates with the exact optimum.

Aggregation across a relation keeps argmin/argmax provenance: the
:class:`OptimizationResult` names the tuple that attains the optimum
and a concrete point witnessing it (or the unboundedness certificate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.core.dbm import DBM
from repro.core.emptiness import tuple_is_empty, tuple_witness
from repro.core.errors import ReproValueError
from repro.core.lrp import common_period
from repro.core.normalize import DEFAULT_MAX_TUPLES
from repro.core.relations import GeneralizedRelation
from repro.core.tuples import GeneralizedTuple
from repro.optimize.objective import Objective

__all__ = [
    "OptimizationResult",
    "TupleOptimum",
    "UnboundedCertificate",
    "optimize_relation",
    "optimize_tuple",
]


@dataclass(frozen=True)
class UnboundedCertificate:
    """A constructive proof that an objective has no finite optimum.

    Starting from ``point`` (a concrete member of the tuple), shifting
    the coordinates in ``coordinates`` by ``steps * direction * period``
    yields, for every ``steps >= 0``, another member of the tuple along
    which the objective strictly improves.
    """

    point: tuple[int, ...]
    coordinates: tuple[int, ...]
    period: int
    direction: int  # +1: shift up, -1: shift down

    def shifted(self, steps: int) -> tuple[int, ...]:
        """The certificate's witness point after ``steps`` shifts."""
        delta = steps * self.direction * self.period
        return tuple(
            value + delta if index in self.coordinates else value
            for index, value in enumerate(self.point)
        )

    def to_dict(self) -> dict:
        """JSON-safe rendering (for the serve wire protocol)."""
        return {
            "point": list(self.point),
            "coordinates": list(self.coordinates),
            "period": self.period,
            "direction": self.direction,
        }


@dataclass(frozen=True)
class TupleOptimum:
    """The optimum of an objective over one generalized tuple."""

    status: str  # "optimal" | "unbounded" | "empty"
    value: int | None = None
    witness: tuple[int, ...] | None = None
    certificate: UnboundedCertificate | None = None


@dataclass(frozen=True)
class OptimizationResult:
    """The optimum of an objective over a whole relation.

    ``status`` is ``"optimal"`` (finite optimum, with ``value``, a
    concrete ``witness`` point and the ``argopt`` tuple attaining it),
    ``"unbounded"`` (no finite optimum; ``certificate`` proves it), or
    ``"empty"`` (the relation has no points at all).
    """

    sense: str  # "min" | "max"
    objective: Objective
    status: str  # "optimal" | "unbounded" | "empty"
    value: int | None = None
    witness: tuple[int, ...] | None = None
    argopt: GeneralizedTuple | None = None
    certificate: UnboundedCertificate | None = None
    tuples_examined: int = 0
    schema: object | None = None  # the optimized relation's Schema

    @property
    def infinity(self) -> str | None:
        """``"-inf"``/``"+inf"`` for unbounded results, else ``None``."""
        if self.status != "unbounded":
            return None
        return "-inf" if self.sense == "min" else "+inf"

    def argopt_restriction(self, schema=None) -> GeneralizedRelation:
        """The argopt tuple restricted to objective = optimum.

        This is the *relational* face of the result — what an
        ``Optimize`` plan node evaluates to: the tuple attaining the
        optimum with the objective pinned to its optimal value, or the
        empty relation when the input was empty or unbounded (no point
        attains ``±∞``).  ``schema`` defaults to the schema of the
        relation that was optimized.
        """
        if schema is None:
            schema = self.schema
        out = GeneralizedRelation.empty(schema)
        if self.status != "optimal" or self.argopt is None:
            return out
        i = schema.temporal_index(self.objective.name)
        dbm = self.argopt.dbm.copy()
        if self.objective.minus is None:
            dbm.add_value(i, self.value)
        else:
            j = schema.temporal_index(self.objective.minus)
            dbm.add_difference(i, j, self.value)
            dbm.add_difference(j, i, -self.value)
        out.add(
            GeneralizedTuple(
                lrps=self.argopt.lrps, dbm=dbm, data=self.argopt.data
            )
        )
        return out

    def to_dict(self) -> dict:
        """JSON-safe rendering (for the serve wire protocol)."""
        return {
            "sense": self.sense,
            "objective": str(self.objective),
            "status": self.status,
            "value": self.value if self.status == "optimal" else self.infinity,
            "witness": list(self.witness) if self.witness else None,
            "argopt": str(self.argopt) if self.argopt is not None else None,
            "certificate": (
                self.certificate.to_dict() if self.certificate else None
            ),
            "tuples_examined": self.tuples_examined,
        }

    def __str__(self) -> str:
        head = f"{self.sense} {self.objective}"
        if self.status == "empty":
            return f"{head}: relation is empty"
        if self.status == "unbounded":
            cert = self.certificate
            lines = [f"{head} = {self.infinity} (unbounded)"]
            if cert is not None:
                sign = "+" if cert.direction > 0 else "-"
                lines.append(
                    f"  certificate: from point {cert.point} shift "
                    f"coordinates {list(cert.coordinates)} by "
                    f"{sign}{cert.period}k"
                )
            if self.argopt is not None:
                lines.append(f"  tuple: {self.argopt}")
            return "\n".join(lines)
        lines = [f"{head} = {self.value}"]
        if self.witness is not None:
            lines.append(f"  witness: {self.witness}")
        if self.argopt is not None:
            lines.append(f"  argopt: {self.argopt}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# per-tuple optimization
# ----------------------------------------------------------------------


def _analysis_dbm(gtuple: GeneralizedTuple) -> DBM:
    """Closed copy of the tuple's DBM with singleton lrps pinned.

    The raw DBM does not know that a period-0 lrp fixes its coordinate;
    folding those pins in before closing makes the closure entries an
    exact boundedness oracle (periodic lrps are bi-infinite, so they
    never bound anything on their own).
    """
    dbm = gtuple.dbm.copy()
    for index, lrp in enumerate(gtuple.lrps):
        if lrp.period == 0:
            dbm.add_value(index, lrp.offset)
    satisfiable = dbm.close()
    if not satisfiable:  # pragma: no cover - caller checks emptiness first
        raise ReproValueError("cannot optimize over an empty tuple")
    return dbm


def _probe(
    gtuple: GeneralizedTuple,
    constrain,
    max_tuples: int,
) -> bool:
    """Is the tuple restricted by ``constrain(dbm)`` nonempty?"""
    obs.metrics().counter("optimize.probes").inc()
    dbm = gtuple.dbm.copy()
    constrain(dbm)
    probe = GeneralizedTuple(lrps=gtuple.lrps, dbm=dbm, data=gtuple.data)
    return not tuple_is_empty(probe, max_tuples)


def _shift_certificate(
    gtuple: GeneralizedTuple,
    coordinates: tuple[int, ...],
    direction: int,
    max_tuples: int,
) -> UnboundedCertificate:
    point = tuple_witness(gtuple, max_tuples)
    if point is None:  # pragma: no cover - caller checks emptiness first
        raise ReproValueError("cannot optimize over an empty tuple")
    period = common_period([gtuple.lrps[v] for v in coordinates])
    return UnboundedCertificate(
        point=point,
        coordinates=coordinates,
        period=period,
        direction=direction,
    )


def _unbounded_single(
    gtuple: GeneralizedTuple,
    dbm: DBM,
    i: int,
    sense: str,
    max_tuples: int,
) -> UnboundedCertificate:
    """Certificate for an unbounded single-variable objective.

    For min: every coordinate with no closure lower bound can be
    shifted down together; for max, symmetrically up.
    """
    if sense == "min":
        coords = tuple(
            v
            for v in range(gtuple.temporal_arity)
            if dbm.bound(-1, v) is None
        )
        direction = -1
    else:
        coords = tuple(
            v
            for v in range(gtuple.temporal_arity)
            if dbm.bound(v, -1) is None
        )
        direction = 1
    return _shift_certificate(gtuple, coords, direction, max_tuples)


def _unbounded_difference(
    gtuple: GeneralizedTuple,
    dbm: DBM,
    i: int,
    j: int,
    max_tuples: int,
) -> UnboundedCertificate:
    """Certificate for unbounded ``max(Xi - Xj)`` (``b[i][j]`` missing).

    The set ``T = {v : b[v][j] = None}`` contains ``i`` and can be
    shifted up as a block — unless the implicit zero variable is in
    ``T``, in which case the complement (which contains ``j``) is
    shifted down instead.  Either way ``Xi - Xj`` grows without bound.
    """
    arity = gtuple.temporal_arity
    if dbm.bound(-1, j) is None:
        # Zero variable is in T: shift the complement (incl. Xj) down.
        coords = tuple(v for v in range(arity) if dbm.bound(v, j) is not None)
        direction = -1
    else:
        coords = tuple(v for v in range(arity) if dbm.bound(v, j) is None)
        direction = 1
    return _shift_certificate(gtuple, coords, direction, max_tuples)


def _search_min_single(
    gtuple: GeneralizedTuple, i: int, floor: int, max_tuples: int
) -> int:
    """Least attainable value of ``Xi`` (known finite, ``>= floor``)."""
    lrp = gtuple.lrps[i]
    if lrp.period == 0:
        return lrp.offset
    low = lrp.first_at_or_above(floor)
    witness = tuple_witness(gtuple, max_tuples)
    high = witness[i]
    lo_k, hi_k = 0, (high - low) // lrp.period
    while lo_k < hi_k:
        mid = (lo_k + hi_k) // 2
        candidate = low + mid * lrp.period
        if _probe(gtuple, lambda d: d.add_upper(i, candidate), max_tuples):
            hi_k = mid
        else:
            lo_k = mid + 1
    return low + lo_k * lrp.period


def _search_max_single(
    gtuple: GeneralizedTuple, i: int, ceiling: int, max_tuples: int
) -> int:
    """Greatest attainable value of ``Xi`` (known finite, ``<= ceiling``)."""
    lrp = gtuple.lrps[i]
    if lrp.period == 0:
        return lrp.offset
    witness = tuple_witness(gtuple, max_tuples)
    low = witness[i]
    high = lrp.last_at_or_below(ceiling)
    lo_k, hi_k = 0, (high - low) // lrp.period
    while lo_k < hi_k:
        mid = (lo_k + hi_k + 1) // 2
        candidate = low + mid * lrp.period
        if _probe(gtuple, lambda d: d.add_lower(i, candidate), max_tuples):
            lo_k = mid
        else:
            hi_k = mid - 1
    return low + lo_k * lrp.period


def _search_max_difference(
    gtuple: GeneralizedTuple, i: int, j: int, ceiling: int, max_tuples: int
) -> int:
    """Greatest attainable ``Xi - Xj`` (known finite, ``<= ceiling``).

    Attainable differences live in the residue class
    ``(oi - oj) mod gcd(pi, pj)``; a witness point seeds the ladder
    from below, the closure bound caps it from above.
    """
    step = math.gcd(gtuple.lrps[i].period, gtuple.lrps[j].period)
    witness = tuple_witness(gtuple, max_tuples)
    low = witness[i] - witness[j]
    if step == 0:
        # Both coordinates are singletons: the difference is fixed.
        return low
    high = low + ((ceiling - low) // step) * step

    def feasible(m: int) -> bool:
        # Xi - Xj >= m  ==  Xj - Xi <= -m
        return _probe(gtuple, lambda d: d.add_difference(j, i, -m), max_tuples)

    lo_k, hi_k = 0, (high - low) // step
    while lo_k < hi_k:
        mid = (lo_k + hi_k + 1) // 2
        if feasible(low + mid * step):
            lo_k = mid
        else:
            hi_k = mid - 1
    return low + lo_k * step


def _witness_at(
    gtuple: GeneralizedTuple,
    i: int,
    j: int | None,
    value: int,
    max_tuples: int,
) -> tuple[int, ...] | None:
    """A concrete point of the tuple attaining the optimum."""
    dbm = gtuple.dbm.copy()
    if j is None:
        dbm.add_value(i, value)
    else:
        dbm.add_difference(i, j, value)
        dbm.add_difference(j, i, -value)
    pinned = GeneralizedTuple(lrps=gtuple.lrps, dbm=dbm, data=gtuple.data)
    return tuple_witness(pinned, max_tuples)


def optimize_tuple(
    gtuple: GeneralizedTuple,
    sense: str,
    i: int,
    j: int | None = None,
    *,
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> TupleOptimum:
    """Exact optimum of ``Xi`` (or ``Xi - Xj``) over one tuple.

    ``sense`` is ``"min"`` or ``"max"``; ``i``/``j`` are 0-based
    temporal coordinate indices.  Returns a :class:`TupleOptimum` whose
    status is ``"empty"``, ``"unbounded"`` (with a shift certificate),
    or ``"optimal"`` (with the exact value and a witness point).
    """
    if sense not in ("min", "max"):
        raise ReproValueError(f"sense must be 'min' or 'max', got {sense!r}")
    arity = gtuple.temporal_arity
    for index in (i,) if j is None else (i, j):
        if not 0 <= index < arity:
            raise ReproValueError(
                f"objective coordinate {index} out of range for arity {arity}"
            )
    if j == i:
        raise ReproValueError("objective Xi - Xi is identically zero")
    with obs.span("optimize.tuple", sense=sense):
        obs.metrics().counter("optimize.tuples").inc()
        if tuple_is_empty(gtuple, max_tuples):
            return TupleOptimum(status="empty")
        dbm = _analysis_dbm(gtuple)
        if j is None:
            bound = dbm.lower(i) if sense == "min" else dbm.upper(i)
            if bound is None:
                obs.metrics().counter("optimize.unbounded").inc()
                certificate = _unbounded_single(
                    gtuple, dbm, i, sense, max_tuples
                )
                return TupleOptimum(
                    status="unbounded", certificate=certificate
                )
            if sense == "min":
                value = _search_min_single(gtuple, i, bound, max_tuples)
            else:
                value = _search_max_single(gtuple, i, bound, max_tuples)
        else:
            # min(Xi - Xj) == -max(Xj - Xi): one search routine suffices.
            a, b = (j, i) if sense == "min" else (i, j)
            bound = dbm.bound(a, b)
            if bound is None:
                obs.metrics().counter("optimize.unbounded").inc()
                certificate = _unbounded_difference(
                    gtuple, dbm, a, b, max_tuples
                )
                return TupleOptimum(
                    status="unbounded", certificate=certificate
                )
            value = _search_max_difference(gtuple, a, b, bound, max_tuples)
            if sense == "min":
                value = -value
        witness = _witness_at(gtuple, i, j, value, max_tuples)
        return TupleOptimum(status="optimal", value=value, witness=witness)


# ----------------------------------------------------------------------
# relation-level aggregation
# ----------------------------------------------------------------------


def optimize_relation(
    relation: GeneralizedRelation,
    objective: Objective,
    sense: str,
    *,
    max_tuples: int = DEFAULT_MAX_TUPLES,
) -> OptimizationResult:
    """Exact optimum of ``objective`` across every tuple of a relation.

    Empty tuples are skipped; any unbounded tuple makes the whole
    relation unbounded (its certificate and tuple are reported); the
    finite case keeps argmin/argmax provenance — which tuple attains
    the global optimum, and a concrete witness point inside it.
    """
    schema = relation.schema
    i = schema.temporal_index(objective.name)
    j = (
        schema.temporal_index(objective.minus)
        if objective.minus is not None
        else None
    )
    better = min if sense == "min" else max
    with obs.span(
        "optimize.relation", sense=sense, objective=str(objective)
    ) as sp:
        obs.metrics().counter("optimize.relations").inc()
        best: TupleOptimum | None = None
        argopt: GeneralizedTuple | None = None
        examined = 0
        for gtuple in relation:
            examined += 1
            outcome = optimize_tuple(
                gtuple, sense, i, j, max_tuples=max_tuples
            )
            if outcome.status == "empty":
                continue
            if outcome.status == "unbounded":
                sp.set(status="unbounded", tuples=examined)
                return OptimizationResult(
                    sense=sense,
                    objective=objective,
                    status="unbounded",
                    argopt=gtuple,
                    certificate=outcome.certificate,
                    tuples_examined=examined,
                    schema=schema,
                )
            if best is None or better(best.value, outcome.value) != best.value:
                best, argopt = outcome, gtuple
        if best is None:
            sp.set(status="empty", tuples=examined)
            return OptimizationResult(
                sense=sense,
                objective=objective,
                status="empty",
                tuples_examined=examined,
                schema=schema,
            )
        sp.set(status="optimal", tuples=examined, value=best.value)
        return OptimizationResult(
            sense=sense,
            objective=objective,
            status="optimal",
            value=best.value,
            witness=best.witness,
            argopt=argopt,
            tuples_examined=examined,
            schema=schema,
        )
