"""Computing temporal-logic satisfaction sets as generalized relations.

Each formula φ over a model (a set of named event relations) denotes
``Sat(φ) ⊆ Z`` — the instants where it holds.  Because generalized
relations are closed under the full algebra, ``Sat(φ)`` is itself a
generalized unary relation, computed bottom-up:

=============  =====================================================
``p``          the event relation, data-selected and projected
``¬φ``         complement w.r.t. Z
``φ ∧ ψ``      intersection; ``φ ∨ ψ`` union
``X φ``        satisfaction set shifted by −1 (``t ⊨ Xφ ⟺ t+1 ⊨ φ``)
``F φ``        downward closure: ``{t : ∃u ≥ t, u ⊨ φ}``
``G φ``        ``¬F¬φ``
``φ U ψ``      ``{t : ∃u ≥ t. u ⊨ ψ ∧ ∀v ∈ [t, u). v ⊨ φ}``
=============  =====================================================

Model checking a property "from now on" is then a single emptiness (or
membership) question on the satisfaction set — the "query evaluation on
a special type of database" the paper's introduction describes.
"""

from __future__ import annotations

from repro.core import algebra
from repro.core.errors import EvaluationError, ReproTypeError
from repro.core.relations import GeneralizedRelation, Schema
from repro.tl.formulas import (
    Always,
    And,
    Atom,
    Eventually,
    Formula,
    Next,
    Not,
    Or,
    Previous,
    Since,
    Until,
)

_T = Schema.make(temporal=["t"])


class Model:
    """A temporal structure: named event relations over one time line."""

    def __init__(
        self,
        relations: dict[str, GeneralizedRelation] | None = None,
        max_extensions: int = 1_000_000,
    ) -> None:
        self._relations: dict[str, GeneralizedRelation] = {}
        self.max_extensions = max_extensions
        for name, rel in (relations or {}).items():
            self.register(name, rel)

    def register(self, name: str, relation: GeneralizedRelation) -> None:
        """Register an event relation (any schema; atoms select/project)."""
        self._relations[name] = relation

    def relation(self, name: str) -> GeneralizedRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise EvaluationError(f"unknown event relation {name!r}") from None

    # ------------------------------------------------------------------
    # satisfaction sets
    # ------------------------------------------------------------------

    def sat(self, formula: Formula) -> GeneralizedRelation:
        """The satisfaction set of ``formula`` as a unary relation."""
        if isinstance(formula, Atom):
            return self._atom(formula)
        if isinstance(formula, Not):
            return algebra.complement(
                self.sat(formula.body), max_extensions=self.max_extensions
            )
        if isinstance(formula, And):
            parts = [self.sat(p) for p in formula.parts]
            out = parts[0]
            for part in parts[1:]:
                out = algebra.intersect(out, part)
            return out
        if isinstance(formula, Or):
            parts = [self.sat(p) for p in formula.parts]
            out = parts[0]
            for part in parts[1:]:
                out = algebra.union(out, part)
            return out
        if isinstance(formula, Next):
            return algebra.shift_column(self.sat(formula.body), "t", -1)
        if isinstance(formula, Previous):
            return algebra.shift_column(self.sat(formula.body), "t", 1)
        if isinstance(formula, Eventually):
            return self._downward_closure(self.sat(formula.body))
        if isinstance(formula, Always):
            inner = algebra.complement(
                self.sat(formula.body), max_extensions=self.max_extensions
            )
            closed = self._downward_closure(inner)
            return algebra.complement(
                closed, max_extensions=self.max_extensions
            )
        if isinstance(formula, Until):
            return self._until(
                self.sat(formula.hold), self.sat(formula.release), future=True
            )
        if isinstance(formula, Since):
            return self._until(
                self.sat(formula.hold), self.sat(formula.release), future=False
            )
        raise ReproTypeError(f"unexpected formula node: {formula!r}")

    def holds_at(self, formula: Formula, instant: int) -> bool:
        """Whether the formula holds at one instant."""
        return self.sat(formula).contains([instant])

    def holds_everywhere(self, formula: Formula) -> bool:
        """Whether the formula holds at every instant (validity in the model)."""
        return algebra.complement(
            self.sat(formula), max_extensions=self.max_extensions
        ).is_empty()

    def holds_somewhere(self, formula: Formula) -> bool:
        """Whether the formula holds at some instant."""
        return not self.sat(formula).is_empty()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _atom(self, formula: Atom) -> GeneralizedRelation:
        rel = self.relation(formula.name)
        for attr, value in formula.selection:
            rel = algebra.select_data(rel, attr, value)
        column = formula.column
        if column is None:
            temporal = rel.schema.temporal_names
            if len(temporal) != 1:
                raise EvaluationError(
                    f"atom {formula} needs column= (relation has temporal "
                    f"attributes {temporal})"
                )
            column = temporal[0]
        projected = algebra.project(rel, [column])
        return algebra.rename(projected, {column: "t"})

    def _downward_closure(self, sat_set: GeneralizedRelation) -> GeneralizedRelation:
        """``{t : ∃u >= t, u ∈ sat_set}`` (upward for past operators)."""
        pair = algebra.product(
            GeneralizedRelation.universe(_T),
            algebra.rename(sat_set, {"t": "u"}),
        )
        selected = algebra.select(pair, "t <= u")
        return algebra.project(selected, ["t"])

    def _upward_closure(self, sat_set: GeneralizedRelation) -> GeneralizedRelation:
        pair = algebra.product(
            GeneralizedRelation.universe(_T),
            algebra.rename(sat_set, {"t": "u"}),
        )
        selected = algebra.select(pair, "t >= u")
        return algebra.project(selected, ["t"])

    def _until(
        self,
        hold: GeneralizedRelation,
        release: GeneralizedRelation,
        future: bool,
    ) -> GeneralizedRelation:
        """``{t : ∃u ⋈ t. u ∈ release ∧ ∀v strictly between. v ∈ hold}``.

        Computed as pairs minus the "bad" pairs witnessed by a violating
        instant of ``¬hold`` strictly between t (inclusive) and u.
        """
        universe_t = GeneralizedRelation.universe(_T)
        pairs = algebra.select(
            algebra.product(universe_t, algebra.rename(release, {"t": "u"})),
            "t <= u" if future else "t >= u",
        )
        not_hold = algebra.complement(
            hold, max_extensions=self.max_extensions
        )
        violations = algebra.product(
            algebra.product(
                universe_t,
                algebra.rename(not_hold, {"t": "v"}),
            ),
            algebra.rename(GeneralizedRelation.universe(_T), {"t": "u"}),
        )
        if future:
            bad = algebra.select(violations, "t <= v & v < u")
        else:
            bad = algebra.select(violations, "t >= v & v > u")
        bad_pairs = algebra.project(bad, ["t", "u"])
        good_pairs = algebra.subtract(pairs, bad_pairs)
        return algebra.project(good_pairs, ["t"])
