"""Point-based temporal logic over generalized relations.

Section 1 of the paper draws its "infinite and repeating temporal
information" motivation from concurrent-program verification, where
temporal logic "easily expresses that something happens eventually or
infinitely often" and model-checking "is essentially a form of query
evaluation on a special type of database".  This module closes that
loop: a linear-time temporal logic whose models are the library's
infinite unary relations, with each formula's *satisfaction set*
computed exactly as a generalized relation.

Operators: atoms (named event relations), boolean connectives, ``X``
(next), ``Y`` (previous), ``F`` (eventually), ``G`` (always), ``U``
(until), ``S`` (since).  All are reflexive-future/past variants
(``F φ`` means "at some t' >= t"); strict variants derive via ``X``/``Y``.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass


@dataclass(frozen=True)
class Atom:
    """An event atom: the named relation's time points.

    ``selection`` optionally pins data attributes (e.g. only the
    ``green`` events of a ``Light`` relation).  After selection the
    relation is projected onto ``column`` (default: its only temporal
    attribute).
    """

    name: str
    selection: tuple[tuple[str, Hashable], ...] = ()
    column: str | None = None

    @classmethod
    def of(cls, name: str, column: str | None = None, **selection) -> Atom:
        """Convenience constructor: ``Atom.of("Light", color="green")``."""
        return cls(
            name=name,
            selection=tuple(sorted(selection.items())),
            column=column,
        )

    def __str__(self) -> str:
        sel = ", ".join(f"{k}={v!r}" for k, v in self.selection)
        return f"{self.name}({sel})" if sel else self.name


@dataclass(frozen=True)
class Not:
    """Negation."""

    body: Formula

    def __str__(self) -> str:
        return f"!({self.body})"


@dataclass(frozen=True)
class And:
    """Conjunction."""

    parts: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " & ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or:
    """Disjunction."""

    parts: tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Next:
    """``X φ``: φ holds at the next instant."""

    body: Formula

    def __str__(self) -> str:
        return f"X({self.body})"


@dataclass(frozen=True)
class Previous:
    """``Y φ``: φ held at the previous instant."""

    body: Formula

    def __str__(self) -> str:
        return f"Y({self.body})"


@dataclass(frozen=True)
class Eventually:
    """``F φ``: φ holds now or at some future instant."""

    body: Formula

    def __str__(self) -> str:
        return f"F({self.body})"


@dataclass(frozen=True)
class Always:
    """``G φ``: φ holds now and at every future instant."""

    body: Formula

    def __str__(self) -> str:
        return f"G({self.body})"


@dataclass(frozen=True)
class Until:
    """``φ U ψ``: ψ eventually holds, with φ holding at every instant
    from now strictly before that."""

    hold: Formula
    release: Formula

    def __str__(self) -> str:
        return f"({self.hold} U {self.release})"


@dataclass(frozen=True)
class Since:
    """``φ S ψ`` (past mirror of until)."""

    hold: Formula
    release: Formula

    def __str__(self) -> str:
        return f"({self.hold} S {self.release})"


Formula = Atom | Not | And | Or | Next | Previous | Eventually | Always | Until | Since


def atom(name: str, **selection) -> Atom:
    """Shorthand for :meth:`Atom.of`."""
    return Atom.of(name, **selection)


def negate(body: Formula) -> Formula:
    """Negation, collapsing double negation."""
    if isinstance(body, Not):
        return body.body
    return Not(body)


def conj(*parts: Formula) -> Formula:
    """N-ary conjunction."""
    return parts[0] if len(parts) == 1 else And(tuple(parts))


def disj(*parts: Formula) -> Formula:
    """N-ary disjunction."""
    return parts[0] if len(parts) == 1 else Or(tuple(parts))


def eventually(body: Formula) -> Eventually:
    """``F φ``."""
    return Eventually(body)


def always(body: Formula) -> Always:
    """``G φ``."""
    return Always(body)


def until(hold: Formula, release: Formula) -> Until:
    """``φ U ψ``."""
    return Until(hold, release)


def since(hold: Formula, release: Formula) -> Since:
    """``φ S ψ``."""
    return Since(hold, release)


def infinitely_often(body: Formula) -> Formula:
    """``G F φ`` — the liveness shape the paper's introduction cites."""
    return Always(Eventually(body))


def eventually_always(body: Formula) -> Formula:
    """``F G φ`` — stabilization."""
    return Eventually(Always(body))
