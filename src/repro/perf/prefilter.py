"""Cheap rejection tests for pairwise tuple operations.

The quadratic pairwise loops of the algebra (``intersect``, ``join``,
``subtract``, complement's DNF expansion) spend most of their time on
pairs whose combination is provably empty.  Each helper here rejects
such a pair with a few integer operations, before any CRT solving, DBM
copying or Floyd–Warshall closure happens:

* **residue compatibility** — two lrps ``c1 + p1·Z`` and ``c2 + p2·Z``
  intersect iff ``gcd(p1, p2)`` divides ``c1 − c2`` (the solvability
  condition of the CRT), an exact test;
* **interval overlap** — with both DBMs closed, attribute ``i``'s value
  range on each side is ``[-b(0,i), b(i,0)]``; disjoint ranges on any
  shared attribute make the conjunction unsatisfiable, again exactly;
* **single-bound satisfiability** — adding one constraint
  ``X_u - X_v <= w`` to a closed satisfiable system is unsatisfiable iff
  the closure's reverse path gives ``b(v, u) + w < 0`` (any new negative
  cycle must traverse the new edge, and ``b(v, u)`` is the cheapest way
  back).

All three tests are exact (they reject only pairs the full computation
would also discard), so the filtered operations return the same results
as the unfiltered ones.
"""

from __future__ import annotations

from collections.abc import Sequence
from math import gcd
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.dbm import DBM
    from repro.core.lrp import LRP


def lrp_pair_compatible(a: "LRP", b: "LRP") -> bool:
    """Whether two lrps have a nonempty intersection (exact, no CRT)."""
    pa = a.period
    pb = b.period
    if pa == 0:
        return b.contains(a.offset)
    if pb == 0:
        return a.contains(b.offset)
    return (a.offset - b.offset) % gcd(pa, pb) == 0


def lrps_compatible(
    lrps1: Sequence["LRP"],
    lrps2: Sequence["LRP"],
    pairs: Sequence[tuple[int, int]] | None = None,
) -> bool:
    """Componentwise lrp compatibility.

    With ``pairs`` omitted the vectors are matched positionally (the
    ``intersect`` case); otherwise only the ``(i1, i2)`` index pairs are
    tested (the shared attributes of a join).
    """
    if pairs is None:
        for a, b in zip(lrps1, lrps2):
            if not lrp_pair_compatible(a, b):
                return False
        return True
    for i1, i2 in pairs:
        if not lrp_pair_compatible(lrps1[i1], lrps2[i2]):
            return False
    return True


def closed_probe(dbm: "DBM") -> tuple["DBM", bool]:
    """A closed copy of ``dbm`` plus its satisfiability verdict.

    The original keeps its written bounds (the negation algorithms depend
    on that); with the interning cache enabled, repeated probes of the
    same written system cost one matrix copy and a cache hit.
    """
    probe = dbm.copy()
    return probe, probe.close()


def intervals_compatible(
    closed1: "DBM",
    closed2: "DBM",
    pairs: Sequence[tuple[int, int]] | None = None,
) -> bool:
    """Whether every shared attribute's value ranges overlap.

    Both arguments must be closed.  ``pairs`` works as in
    :func:`lrps_compatible`.  A ``False`` verdict is exact: some shared
    attribute cannot take a common value, so the conjunction of the two
    systems (under the pairing) is unsatisfiable.
    """
    if pairs is None:
        pairs = [(i, i) for i in range(closed1.size)]
    for i1, i2 in pairs:
        up1 = closed1.bound(i1, -1)
        neg_lo2 = closed2.bound(-1, i2)
        if up1 is not None and neg_lo2 is not None and up1 + neg_lo2 < 0:
            return False
        up2 = closed2.bound(i2, -1)
        neg_lo1 = closed1.bound(-1, i1)
        if up2 is not None and neg_lo1 is not None and up2 + neg_lo1 < 0:
            return False
    return True


def added_bound_satisfiable(
    closed: "DBM", u: int, v: int, w: int
) -> bool:
    """Whether a closed satisfiable system stays satisfiable after adding
    ``X_u - X_v <= w`` (indices as in ``iter_bounds``: -1 = zero var).

    Exact: a negative cycle created by one new edge must use that edge,
    and the cheapest return path ``v → u`` is the closure entry.
    """
    back = closed.bound(v, u)
    return back is None or back + w >= 0
