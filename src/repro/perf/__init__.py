"""Hot-path optimization layer for the generalized algebra.

Four independently switchable optimizations (see ``docs/performance.md``):

1. **Incremental DBM closure** — adding a few bounds to an already
   closed matrix tightens in O(d·n²) instead of re-running the O(n³)
   Floyd–Warshall closure (:mod:`repro.core.dbm`).
2. **Canonical interning caches** — bounded LRU caches memoize closures,
   satisfiability checks, normal-form expansions and emptiness verdicts
   keyed on written constraint forms (:mod:`repro.perf.cache`).
3. **Pairwise-op prefilters** — O(m) residue/interval rejection tests
   skip provably-empty tuple pairs before the CRT + DBM work in
   ``intersect``/``join``/``subtract`` (:mod:`repro.perf.prefilter`).
4. **Process-parallel fan-out** — the pairwise product is chunked across
   a worker pool with deterministic, index-ordered reassembly and a
   shared-memory tuple transport (:mod:`repro.perf.parallel`); off by
   default, enabled via ``REPRO_WORKERS`` / ``Evaluator(workers=N)`` /
   ``itql --workers``.
5. **Vectorized batched closure kernel** — many same-dimension DBMs are
   packed into one numpy array and closed with a single vectorized
   Floyd–Warshall sweep (:mod:`repro.perf.kernel`); backend selected via
   ``REPRO_KERNEL`` with a graceful pure-Python fallback.

This package's ``__init__`` must stay import-light: :mod:`repro.core.dbm`
imports it at the bottom of the dependency graph, so only the
dependency-free ``config`` and ``cache`` modules load eagerly;
``prefilter``, ``parallel`` and ``bench`` (which import the core) load
lazily on attribute access.
"""

from __future__ import annotations

from repro.perf.cache import (
    LRUCache,
    cache_stats,
    closure_cache,
    normalize_cache,
    reset_caches,
)
from repro.perf.config import (
    PERF_COUNTERS,
    PerfConfig,
    configure,
    counters_snapshot,
    get_config,
    overrides,
    reset_config,
    reset_counters,
)

_LAZY_SUBMODULES = ("kernel", "prefilter", "parallel", "bench")

__all__ = [
    "LRUCache",
    "PERF_COUNTERS",
    "PerfConfig",
    "cache_stats",
    "closure_cache",
    "configure",
    "counters_snapshot",
    "get_config",
    "normalize_cache",
    "overrides",
    "reset_caches",
    "reset_config",
    "reset_counters",
    *_LAZY_SUBMODULES,
]


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.perf.{name}")
    raise AttributeError(f"module 'repro.perf' has no attribute {name!r}")
