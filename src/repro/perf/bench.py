"""Before/after benchmark for the optimization layer (``BENCH_perf.json``).

Runs the paper-shaped pairwise-heavy workloads — Figure 1 subtraction,
Figure 2 projection, Table 2 fixed-schema join, Table 3 general
intersection and join — three times each inside one process:

* **naive** — caches, prefilters, incremental closure and workers all
  off (the seed implementation's behavior);
* **optimized** — caches + prefilters + incremental closure on, serial;
* **parallel** — optimized plus the process-pool fan-out.

Every variant consumes the *same* input relations built from the same
seed, and the optimized/parallel outputs are verified against the naive
output (element-for-element for intersection/join/projection, by window
enumeration for subtraction, whose prefilter may return an equivalent
but differently-factored set of tuples).  Timings therefore compare the
same work measured by the same harness in the same run.

Usage::

    python -m repro.perf.bench                # full sizes -> BENCH_perf.json
    python -m repro.perf.bench --smoke        # small sizes, CI-friendly
    python -m repro.perf.bench -o out.json --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time

from repro.core import algebra
from repro.core.dbm import DBM
from repro.core.lrp import LRP
from repro.core.relations import GeneralizedRelation, Schema
from repro.core.tuples import GeneralizedTuple
from repro.perf.cache import cache_stats, reset_caches
from repro.perf.config import counters_snapshot, overrides, reset_counters

#: Feature switches for the three measured variants.  The naive variant
#: pins the scalar Python kernel (the seed implementation's behavior);
#: optimized/parallel inherit the session backend (env/auto).
NAIVE = dict(
    cache_enabled=False,
    prefilter_enabled=False,
    incremental_enabled=False,
    workers=0,
    kernel="python",
)
OPTIMIZED = dict(
    cache_enabled=True,
    prefilter_enabled=True,
    incremental_enabled=True,
    workers=0,
)

#: Workloads whose on/off ratio the acceptance gate inspects.
PAIRWISE_HEAVY = (
    "fig1_subtraction",
    "table3_intersection",
    "table3_join",
)
REQUIRED_SPEEDUP = 2.0


# ----------------------------------------------------------------------
# seeded workload builders
# ----------------------------------------------------------------------


def _interval_relation(
    n_tuples: int,
    arity: int,
    period: int,
    seed: int,
    base_lo: int,
    base_hi: int,
    width: int,
    names: list[str] | None = None,
    offset_choices: list[int] | None = None,
) -> GeneralizedRelation:
    """A seeded relation of period-``period`` lrps with interval bounds.

    Each temporal attribute gets a random lrp offset and a bounded value
    range ``[base, base + width]``; half the tuples also carry one
    difference constraint.  Random offsets make most cross-relation
    pairs residue-incompatible; the base ranges control how often value
    intervals overlap — the two dimensions the prefilters exploit.
    """
    rng = random.Random(seed)
    schema = Schema.make(
        temporal=names or [f"X{i}" for i in range(arity)]
    )
    out = GeneralizedRelation.empty(schema)
    while len(out) < n_tuples:
        lrps = tuple(
            LRP.make(
                rng.choice(offset_choices)
                if offset_choices
                else rng.randrange(period),
                period,
            )
            for _ in range(arity)
        )
        dbm = DBM(arity)
        for i in range(arity):
            base = rng.randint(base_lo, base_hi)
            dbm.add_lower(i, base)
            dbm.add_upper(i, base + width)
        if arity >= 2 and rng.random() < 0.5:
            dbm.add_difference(0, 1, rng.randint(0, width))
        out.add(GeneralizedTuple(lrps, dbm))
    return out


def _fig1_inputs(smoke: bool):
    """Figure 1: fold subtraction over mostly-disjoint subtrahends.

    Subtrahend lrps reuse the minuend offsets (so the naive path runs
    the full staircase decomposition) while most subtrahend intervals
    sit beyond the minuend ranges — exactly the provably-empty overlaps
    the interval prefilter short-circuits.
    """
    n1, n2 = (10, 6) if smoke else (32, 16)
    minuend = _interval_relation(
        n1, 2, 6, seed=101, base_lo=0, base_hi=120, width=40,
        offset_choices=[0, 2, 3],
    )
    far = _interval_relation(
        n2, 2, 6, seed=202, base_lo=260, base_hi=420, width=60,
        offset_choices=[0, 2, 3],
    )
    near = _interval_relation(
        3, 2, 6, seed=303, base_lo=40, base_hi=100, width=30,
        offset_choices=[0, 2, 3],
    )
    subtrahend = algebra.union(far, near)
    return minuend, subtrahend


def _fig2_inputs(smoke: bool):
    """Figure 2: projection with a dropped, constraint-connected column.

    Bounds are quantized to a small grid so the difference systems the
    normalization derives repeat across tuples — the structural
    redundancy the interning cache exists to exploit.
    """
    n = 60 if smoke else 220
    rng = random.Random(404)
    schema = Schema.make(temporal=["X0", "X1", "X2"])
    relation = GeneralizedRelation.empty(schema)
    attempts = 0
    while len(relation) < n and attempts < n * 40:
        attempts += 1
        lrps = tuple(LRP.make(rng.choice([1, 3]), 4) for _ in range(3))
        dbm = DBM(3)
        for i in range(3):
            base = 10 * rng.randint(-4, 4)
            dbm.add_lower(i, base)
            dbm.add_upper(i, base + 25)
        if rng.random() < 0.5:
            dbm.add_difference(0, 1, 10 * rng.randint(0, 3))
        relation.add(GeneralizedTuple(lrps, dbm))
    return (relation,)


def _table2_inputs(smoke: bool):
    """Table 2 (fixed schema): natural join on two shared attributes."""
    n = 24 if smoke else 60
    left = _interval_relation(
        n, 2, 6, seed=505, base_lo=-30, base_hi=60, width=35,
        names=["A", "B"],
    )
    right = _interval_relation(
        n, 2, 6, seed=606, base_lo=-30, base_hi=60, width=35,
        names=["A", "B"],
    )
    return left, right


def _table3_intersection_inputs(smoke: bool):
    """Table 3 (general): pairwise intersection of two random relations.

    All lrps share one offset so the naive path gets past the CRT into
    the DBM meet + closure for every pair, while the wide base spread
    leaves most value intervals disjoint — the case the interval
    prefilter rejects in O(1).
    """
    n = 30 if smoke else 90
    r1 = _interval_relation(
        n, 2, 6, seed=707, base_lo=-180, base_hi=180, width=40,
        offset_choices=[2],
    )
    r2 = _interval_relation(
        n, 2, 6, seed=808, base_lo=-180, base_hi=180, width=40,
        offset_choices=[2],
    )
    return r1, r2


def _table3_join_inputs(smoke: bool):
    """Table 3 (general): natural join sharing one temporal attribute."""
    n = 26 if smoke else 70
    left = _interval_relation(
        n, 2, 6, seed=909, base_lo=-40, base_hi=70, width=40,
        names=["A", "B"],
    )
    right = _interval_relation(
        n, 2, 6, seed=1010, base_lo=-40, base_hi=70, width=40,
        names=["B", "C"],
    )
    return left, right


WORKLOADS: list[tuple[str, str, object, object]] = [
    # (name, verify mode, input builder, operation)
    (
        "fig1_subtraction",
        "window",
        _fig1_inputs,
        lambda r1, r2: algebra.subtract(r1, r2),
    ),
    (
        "fig2_projection",
        "keys",
        _fig2_inputs,
        lambda r: algebra.project(r, ["X0", "X2"]),
    ),
    (
        "table2_fixed_join",
        "keys",
        _table2_inputs,
        lambda r1, r2: algebra.join(r1, r2),
    ),
    (
        "table3_intersection",
        "keys",
        _table3_intersection_inputs,
        lambda r1, r2: algebra.intersect(r1, r2),
    ),
    (
        "table3_join",
        "keys",
        _table3_join_inputs,
        lambda r1, r2: algebra.join(r1, r2),
    ),
]


# ----------------------------------------------------------------------
# persistence scenario (storage engine)
# ----------------------------------------------------------------------


def run_persistence_scenario(smoke: bool = False) -> dict:
    """Measure the durable storage engine on a seeded catalog.

    Times the four storage-path operations — first commit (WAL append +
    fsync), reopen (recovery: WAL replay), compaction (snapshot +
    manifest swing + WAL truncate) and reopen-after-compaction
    (recovery: snapshot load) — over a multi-relation seeded database,
    and verifies the reopened catalog window-for-window against the
    in-memory original.  Appended to ``BENCH_perf.json`` under
    ``"persistence"``.
    """
    import shutil
    import tempfile

    from repro.query.database import Database
    from repro.testing import seeded_relation

    n_relations, max_tuples = (3, 12) if smoke else (6, 60)
    window = (-30, 90)
    rng = random.Random(4242)
    root = tempfile.mkdtemp(prefix="repro-bench-db-")
    path = os.path.join(root, "bench.db")
    scenario: dict = {
        "relations": n_relations,
        "max_tuples_per_relation": max_tuples,
        "window": list(window),
    }
    try:
        db = Database.open(path)
        originals = {}
        for i in range(n_relations):
            relation = seeded_relation(
                rng, temporal_arity=2, max_tuples=max_tuples, max_period=8
            )
            name = f"R{i}"
            db.register(name, relation)
            originals[name] = relation.snapshot(*window)
        start = time.perf_counter()
        records = db.commit()
        scenario["commit_s"] = round(time.perf_counter() - start, 6)
        scenario["commit_records"] = records
        scenario["wal_bytes"] = db.storage.info()["wal_bytes"]
        db.close()

        start = time.perf_counter()
        reopened = Database.open(path)
        scenario["reopen_replay_s"] = round(time.perf_counter() - start, 6)
        start = time.perf_counter()
        scenario["snapshot_name"] = reopened.compact()
        scenario["compact_s"] = round(time.perf_counter() - start, 6)
        reopened.close()

        start = time.perf_counter()
        recovered = Database.open(path)
        scenario["reopen_snapshot_s"] = round(
            time.perf_counter() - start, 6
        )
        scenario["roundtrip_ok"] = all(
            recovered.relation(name).snapshot(*window) == points
            for name, points in originals.items()
        )
        scenario["total_points_checked"] = sum(
            len(points) for points in originals.values()
        )
        recovered.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return scenario


# ----------------------------------------------------------------------
# measurement harness
# ----------------------------------------------------------------------


def _timed(operation, inputs, config: dict, repeats: int = 2):
    """Run ``operation`` under ``config`` with fresh caches; time it.

    One untimed warmup evens out state that persists on the shared input
    tuples (memoized semantic keys, interpreter warmth) so the variant
    order does not bias the comparison; the reported time is the best of
    ``repeats`` runs, each starting from empty caches.
    """
    with overrides(**config):
        reset_caches()
        operation(*inputs)  # warmup, untimed
        elapsed = None
        for _ in range(repeats):
            reset_caches()
            reset_counters()
            start = time.perf_counter()
            result = operation(*inputs)
            lap = time.perf_counter() - start
            if elapsed is None or lap < elapsed:
                elapsed = lap
        counters = counters_snapshot()
        caches = cache_stats()
    return result, elapsed, counters, caches


def _window_points(relation: GeneralizedRelation, low: int, high: int):
    return set(relation.enumerate(low, high))


def _verify(mode: str, reference, candidate) -> bool:
    """Whether ``candidate`` matches the naive ``reference`` output."""
    if mode == "keys":
        ref_keys = {t.canonical_key() for t in reference}
        cand_keys = {t.canonical_key() for t in candidate}
        return ref_keys == cand_keys
    # Window differential: the subtraction prefilter may factor the same
    # point set into different tuples, so compare denoted points.
    low, high = -20, 140
    return _window_points(reference, low, high) == _window_points(
        candidate, low, high
    )


def run_perf_comparison(
    smoke: bool = False, workers: int | None = None
) -> dict:
    """Run every workload naive/optimized/parallel; return the report."""
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    from repro.perf import kernel

    report: dict = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "smoke": smoke,
            "workers": workers,
            "kernel_backend": kernel.kernel_backend(),
            "required_speedup": REQUIRED_SPEEDUP,
            "pairwise_heavy": list(PAIRWISE_HEAVY),
        },
        "workloads": {},
    }
    parallel_config = dict(OPTIMIZED, workers=workers, parallel_threshold=8)
    for name, verify_mode, build, operation in WORKLOADS:
        inputs = build(smoke)
        naive_out, naive_s, _, _ = _timed(operation, inputs, NAIVE)
        opt_out, opt_s, opt_counters, opt_caches = _timed(
            operation, inputs, OPTIMIZED
        )
        par_out, par_s, _, _ = _timed(operation, inputs, parallel_config)
        entry = {
            "input_tuples": sum(len(r) for r in inputs),
            "output_tuples": len(naive_out),
            "naive_s": round(naive_s, 6),
            "optimized_s": round(opt_s, 6),
            "parallel_s": round(par_s, 6),
            "speedup": round(naive_s / opt_s, 3) if opt_s > 0 else None,
            "parallel_speedup": (
                round(naive_s / par_s, 3) if par_s > 0 else None
            ),
            "verify_mode": verify_mode,
            "optimized_matches_naive": _verify(
                verify_mode, naive_out, opt_out
            ),
            "parallel_matches_naive": _verify(
                verify_mode, naive_out, par_out
            ),
            "counters": opt_counters,
            "caches": {
                cache: {
                    k: stats[k] for k in ("hits", "misses", "evictions")
                }
                for cache, stats in opt_caches.items()
            },
        }
        report["workloads"][name] = entry
    report["persistence"] = run_persistence_scenario(smoke)
    over = [
        name
        for name in PAIRWISE_HEAVY
        if (report["workloads"][name]["speedup"] or 0) >= REQUIRED_SPEEDUP
    ]
    matches = all(
        entry["optimized_matches_naive"] and entry["parallel_matches_naive"]
        for entry in report["workloads"].values()
    )
    roundtrip_ok = bool(report["persistence"].get("roundtrip_ok"))
    report["summary"] = {
        "pairwise_heavy_over_required": over,
        "ok": len(over) >= 2 and matches and roundtrip_ok,
        "all_outputs_match": matches,
        "persistence_roundtrip_ok": roundtrip_ok,
    }
    return report


def format_report(report: dict) -> list[str]:
    """Human-readable lines for a comparison report."""
    lines = [
        "perf layer: naive vs optimized vs parallel "
        f"(workers={report['meta']['workers']}, "
        f"smoke={report['meta']['smoke']})",
        f"{'workload':<22} {'naive':>9} {'opt':>9} {'par':>9} "
        f"{'speedup':>8} {'par x':>7}  match",
    ]
    for name, entry in report["workloads"].items():
        match = (
            "ok"
            if entry["optimized_matches_naive"]
            and entry["parallel_matches_naive"]
            else "MISMATCH"
        )
        lines.append(
            f"{name:<22} {entry['naive_s']:>8.3f}s {entry['optimized_s']:>8.3f}s "
            f"{entry['parallel_s']:>8.3f}s {entry['speedup']:>7.2f}x "
            f"{entry['parallel_speedup']:>6.2f}x  {match}"
        )
    persistence = report.get("persistence")
    if persistence:
        lines.append(
            f"persistence: commit {persistence['commit_s']:.3f}s "
            f"({persistence['wal_bytes']} wal bytes), "
            f"replay-reopen {persistence['reopen_replay_s']:.3f}s, "
            f"compact {persistence['compact_s']:.3f}s, "
            f"snapshot-reopen {persistence['reopen_snapshot_s']:.3f}s, "
            f"roundtrip "
            f"{'ok' if persistence['roundtrip_ok'] else 'MISMATCH'}"
        )
    summary = report["summary"]
    verdict = "OK" if summary["ok"] else "SUSPECT"
    lines.append(
        f"pairwise-heavy workloads at >= {REQUIRED_SPEEDUP}x: "
        f"{', '.join(summary['pairwise_heavy_over_required']) or 'none'} "
        f"-> {verdict}"
    )
    return lines


def main(argv: list[str] | None = None) -> int:
    """Entry point: run the comparison and write ``BENCH_perf.json``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the optimization layer (naive vs optimized)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default="BENCH_perf.json",
        help="output path for the JSON report (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="use small workload sizes (CI smoke run)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel variant (default: cpu count, max 4)",
    )
    args = parser.parse_args(argv)
    report = run_perf_comparison(smoke=args.smoke, workers=args.workers)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    for line in format_report(report):
        print(line)
    print(f"written to {args.output}")
    return 0 if report["summary"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
