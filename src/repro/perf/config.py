"""Global configuration and counters for the optimization layer.

This module is intentionally dependency-free (stdlib only): it is
imported from :mod:`repro.core.dbm`, the bottom of the core dependency
graph, so it must not import anything from :mod:`repro.core`.

Knobs (environment variables read once at import; override at runtime
with :func:`configure` or scope changes with :func:`overrides`):

``REPRO_CACHE_SIZE``
    Maximum number of entries in each interning cache (default 8192).
``REPRO_NO_CACHE``
    Set to any non-empty value to disable the interning caches.
``REPRO_NO_PREFILTER``
    Set to any non-empty value to disable the pairwise-op prefilters.
``REPRO_NO_INCREMENTAL``
    Set to any non-empty value to disable incremental DBM closure.
``REPRO_WORKERS``
    Number of worker processes for pairwise fan-out (default 0 = serial).
``REPRO_KERNEL``
    Closure kernel backend: ``numpy`` (batched, vectorized), ``python``
    (scalar), or ``auto`` (default: numpy when importable).
``REPRO_PARALLEL_MIN_COST``
    Minimum estimated closure cost (in Floyd–Warshall cell updates)
    before pairwise fan-out engages; below it chunk overhead dominates
    and operations run serially regardless of item count.
``REPRO_OPTIMIZE``
    Set to ``1``/``true``/``yes``/``on`` to run the logical-plan
    rewrite passes (pushdown, join reordering, CSE) before executing
    queries; ``0``/``false``/``no``/``off``/unset keeps the naive plan.
``REPRO_ENGINE``
    Name of the registered execution engine queries run on (default
    ``native``, the in-process algebra interpreter).
"""

from __future__ import annotations

import os
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, replace

#: Hit/miss/skip instrumentation for every perf feature.  Bumped from the
#: hot paths; read through :func:`repro.analysis.counters.perf_counters`.
PERF_COUNTERS: Counter = Counter()

DEFAULT_CACHE_SIZE = 8192
#: Minimum number of tuple pairs before an operation fans out to workers.
DEFAULT_PARALLEL_THRESHOLD = 64
#: Minimum estimated closure cost (Floyd–Warshall cell updates) before
#: fan-out engages.  Roughly: a pool submission costs ~1ms of pickling
#: and scheduling per chunk while a cell update costs tens of
#: nanoseconds, so below ~2M units the serial path wins outright.
DEFAULT_PARALLEL_MIN_COST = 2_000_000
#: Recognized closure kernel backends.
KERNEL_BACKENDS = ("auto", "numpy", "python")


def _env_flag(name: str) -> bool:
    return bool(os.environ.get(name, ""))


def _env_bool(name: str) -> bool:
    """An opt-in flag: empty/``0``/``false``/``no``/``off`` mean False."""
    raw = os.environ.get(name, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


@dataclass(frozen=True)
class PerfConfig:
    """Feature switches for the optimization layer.

    All four optimizations preserve the algebra's semantics; ``workers``
    and the caches additionally preserve the exact tuple-by-tuple output
    of the serial/naive paths (see ``docs/performance.md``).
    """

    cache_enabled: bool = True
    cache_size: int = DEFAULT_CACHE_SIZE
    prefilter_enabled: bool = True
    incremental_enabled: bool = True
    workers: int = 0
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    parallel_min_cost: int = DEFAULT_PARALLEL_MIN_COST
    kernel: str = "auto"
    optimize: bool = False
    engine: str = "native"


def _env_kernel() -> str:
    raw = os.environ.get("REPRO_KERNEL", "").strip().lower()
    return raw if raw in KERNEL_BACKENDS else "auto"


def _from_env() -> PerfConfig:
    return PerfConfig(
        cache_enabled=not _env_flag("REPRO_NO_CACHE"),
        cache_size=max(0, _env_int("REPRO_CACHE_SIZE", DEFAULT_CACHE_SIZE)),
        prefilter_enabled=not _env_flag("REPRO_NO_PREFILTER"),
        incremental_enabled=not _env_flag("REPRO_NO_INCREMENTAL"),
        workers=max(0, _env_int("REPRO_WORKERS", 0)),
        parallel_min_cost=max(
            0, _env_int("REPRO_PARALLEL_MIN_COST", DEFAULT_PARALLEL_MIN_COST)
        ),
        kernel=_env_kernel(),
        optimize=_env_bool("REPRO_OPTIMIZE"),
        engine=os.environ.get("REPRO_ENGINE", "").strip().lower() or "native",
    )


_config: PerfConfig = _from_env()


def get_config() -> PerfConfig:
    """The currently active configuration."""
    return _config


def configure(**changes) -> PerfConfig:
    """Replace configuration fields; returns the new configuration.

    Changing ``cache_enabled`` or ``cache_size`` resets the caches (a
    smaller bound must not keep a larger population alive).
    """
    global _config
    old = _config
    _config = replace(_config, **changes)
    if (
        _config.cache_enabled != old.cache_enabled
        or _config.cache_size != old.cache_size
    ):
        from repro.perf import cache as _cache

        _cache.reset_caches()
    return _config


def reset_config() -> PerfConfig:
    """Restore the environment-derived defaults and clear the caches."""
    global _config
    _config = _from_env()
    from repro.perf import cache as _cache

    _cache.reset_caches()
    return _config


@contextmanager
def overrides(**changes):
    """Scoped :func:`configure`: restores the previous config on exit."""
    global _config
    saved = _config
    configure(**changes)
    try:
        yield _config
    finally:
        inner = _config
        _config = saved
        if (
            inner.cache_enabled != saved.cache_enabled
            or inner.cache_size != saved.cache_size
        ):
            from repro.perf import cache as _cache

            _cache.reset_caches()


def reset_counters() -> None:
    """Zero the perf counters."""
    PERF_COUNTERS.clear()


def counters_snapshot() -> dict[str, int]:
    """A plain-dict copy of the perf counters."""
    return dict(PERF_COUNTERS)
