"""Vectorized batched DBM closure kernel (``REPRO_KERNEL``).

The algebra's hot paths — projection's per-combo n-space systems,
normalization's splits, the pairwise meets of intersect/join — produce
*many small* difference systems that were previously closed one Python
Floyd–Warshall at a time.  This module packs same-dimension systems into
one contiguous ``(batch, n, n)`` float64 array (``+inf`` encodes an
absent bound) and closes them all with a single vectorized sweep::

    D = min(D, D[:, :, k, None] + D[:, k, None, :])   for each k

which is the textbook (non-in-place) Floyd–Warshall recurrence.  For a
satisfiable system it converges to the same unique shortest-path matrix
as the in-place scalar pass in :meth:`repro.core.dbm.DBM._close_full`;
for an unsatisfiable system the entry values may differ between the two
formulations, but both leave a negative diagonal (any negative cycle
relaxes some ``D[i][i]`` below zero), and callers discard unsatisfiable
systems without reading their entries.

Exactness: bounds are integers but the sweep runs in float64.  One
k-iteration at most doubles the largest finite magnitude, so with every
input magnitude below :data:`MAX_ABS_BOUND` (2^40) and dimension at most
:data:`MAX_DIM` every intermediate stays below 2^53 and float64
arithmetic is exact.  Systems outside that envelope fall back to the
scalar path and are counted in ``kernel.scalar_fallbacks``.

Backend selection: ``PerfConfig.kernel`` (env ``REPRO_KERNEL``) picks
``numpy``, ``python`` or ``auto``; ``auto`` and ``numpy`` degrade
gracefully to the pure-Python scalar path when numpy is not importable,
so the package keeps working without its ``perf`` extra installed.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import get_registry
from repro.perf.config import PERF_COUNTERS, get_config

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.dbm import DBM

INF = float("inf")

#: Finite input magnitudes must stay below 2^40 for the float64 sweep to
#: be exact (doubling per k-iteration, at most MAX_DIM iterations).
MAX_ABS_BOUND = 1 << 40
#: Matrix dimension cap for the exactness guarantee (variables + zero).
MAX_DIM = 12
#: Below this many systems the numpy dispatch overhead beats the win.
MIN_BATCH = 3

#: Template bounds above this magnitude skip the int64 grid arithmetic
#: (headroom against int64 overflow when offsets are folded in).
MAX_TEMPLATE_BOUND = 1 << 60

#: Sentinel returned by :func:`project_batch` for jobs whose group failed
#: an exactness guard: the caller must redo that combo on the scalar path.
SCALAR = object()

_np: Any = None
_np_failed = False


def _numpy():
    """The numpy module, or ``None`` when it cannot be imported."""
    global _np, _np_failed
    if _np is None and not _np_failed:
        try:
            import numpy

            _np = numpy
        except Exception:  # pragma: no cover - exercised via fake-missing
            _np_failed = True
    return _np


def kernel_backend() -> str:
    """The closure backend that would run right now.

    Resolves the configured ``kernel`` field: ``"python"`` is honored
    as-is; ``"numpy"`` and ``"auto"`` return ``"numpy"`` only when the
    import actually succeeds, falling back to ``"python"`` otherwise.
    """
    if get_config().kernel == "python":
        return "python"
    return "python" if _numpy() is None else "numpy"


def kernel_active() -> bool:
    """Whether the vectorized numpy backend is in effect."""
    return kernel_backend() == "numpy"


# ----------------------------------------------------------------------
# packed-array primitives
# ----------------------------------------------------------------------


def pack(dbms: Sequence["DBM"]):
    """Stack same-dimension DBMs into one ``(batch, n, n)`` float64 array.

    ``None`` bounds become ``+inf``.  All matrices must share one
    dimension; the caller groups by :attr:`DBM._n` first.
    """
    np = _numpy()
    n = dbms[0]._n
    flat = [
        INF if bound is None else float(bound)
        for dbm in dbms
        for row in dbm._b
        for bound in row
    ]
    return np.array(flat, dtype=np.float64).reshape(len(dbms), n, n)


def close_packed(batch):
    """Floyd–Warshall-close every matrix in a packed batch, in place.

    Returns ``(batch, sat)`` where ``sat`` is a boolean vector flagging
    matrices with a non-negative diagonal (satisfiable systems).  The
    caller is responsible for the exactness guard (:func:`packed_exact`).
    """
    np = _numpy()
    n = batch.shape[1]
    for k in range(n):
        ik = batch[:, :, k]
        kj = batch[:, k, :]
        np.minimum(batch, ik[:, :, None] + kj[:, None, :], out=batch)
    diag = batch[:, np.arange(n), np.arange(n)]
    sat = ~(diag < 0).any(axis=1)
    return batch, sat


def packed_exact(batch) -> bool:
    """Whether the float64 sweep over ``batch`` is provably exact."""
    np = _numpy()
    if batch.shape[1] > MAX_DIM:
        return False
    finite = np.where(np.isinf(batch), 0.0, batch)
    return bool(np.abs(finite).max(initial=0.0) <= MAX_ABS_BOUND)


def matrix_to_bounds(matrix) -> list[list[int | None]]:
    """One closed float matrix back to the DBM bound representation."""
    return [
        [None if value == INF else int(value) for value in row]
        for row in matrix.tolist()
    ]


def _writeback(dbm: "DBM", matrix) -> None:
    """Install a closed packed matrix into a DBM, marking it closed."""
    dbm._b = matrix_to_bounds(matrix)
    dbm._closed = True
    dbm._dirty = []


def _observe_batch(size: int) -> None:
    PERF_COUNTERS["kernel.batch_closures"] += 1
    PERF_COUNTERS["kernel.batch_dbms"] += size
    get_registry().histogram("kernel.batch_size").observe(size)


def _count_fallback(size: int) -> None:
    PERF_COUNTERS["kernel.scalar_fallbacks"] += size


# ----------------------------------------------------------------------
# DBM-level entry point
# ----------------------------------------------------------------------


def close_batch(dbms: Sequence["DBM"]) -> list[bool]:
    """Close many DBMs at once; return their satisfiability verdicts.

    Semantically equal to ``[d.close() for d in dbms]``: every DBM ends
    up closed (satisfiable ones hold their tightest bounds; for
    unsatisfiable ones only the negative diagonal is meaningful, exactly
    as after a scalar :meth:`DBM.close`).  Mixed dimensions are fine —
    the batch is grouped by dimension internally.  With the python
    backend (or without numpy) this *is* the scalar loop; the interning
    closure cache is deliberately bypassed on the vectorized path, where
    key construction costs more than the sweep itself.
    """
    dbms = list(dbms)
    results: list[bool | None] = [None] * len(dbms)
    if not dbms:
        return []
    if not kernel_active():
        return [dbm.close() for dbm in dbms]
    groups: dict[int, list[int]] = {}
    for idx, dbm in enumerate(dbms):
        if dbm._closed:
            results[idx] = dbm.is_satisfiable()
        else:
            groups.setdefault(dbm._n, []).append(idx)
    for indices in groups.values():
        if len(indices) < MIN_BATCH:
            _count_fallback(len(indices))
            for idx in indices:
                results[idx] = dbms[idx].close()
            continue
        batch = pack([dbms[idx] for idx in indices])
        if not packed_exact(batch):
            _count_fallback(len(indices))
            for idx in indices:
                results[idx] = dbms[idx].close()
            continue
        batch, sat = close_packed(batch)
        _observe_batch(len(indices))
        for pos, idx in enumerate(indices):
            _writeback(dbms[idx], batch[pos])
            results[idx] = bool(sat[pos])
    return results  # type: ignore[return-value]


def sat_batch(dbms: Sequence["DBM"]) -> list[bool]:
    """Satisfiability verdicts for many DBMs, without mutating them.

    Semantically ``[d.copy().close() for d in dbms]`` but the numpy
    path skips both the copies and the writeback: the packed batch is
    built straight from the bound matrices, closed, and only the
    diagonal signs are read off.  Use this when callers need only the
    verdict (projection probes, normalization splits); use
    :func:`close_batch` when they also need the tightened bounds.
    """
    dbms = list(dbms)
    if not dbms:
        return []
    if not kernel_active():
        return [dbm.copy().close() for dbm in dbms]
    results: list[bool | None] = [None] * len(dbms)
    groups: dict[int, list[int]] = {}
    for idx, dbm in enumerate(dbms):
        if dbm._closed:
            results[idx] = dbm.is_satisfiable()
        else:
            groups.setdefault(dbm._n, []).append(idx)
    for indices in groups.values():
        batch = pack([dbms[idx] for idx in indices]) if len(indices) >= MIN_BATCH else None
        if batch is None or not packed_exact(batch):
            _count_fallback(len(indices))
            for idx in indices:
                results[idx] = dbms[idx].copy().close()
            continue
        _batch, sat = close_packed(batch)
        _observe_batch(len(indices))
        for pos, idx in enumerate(indices):
            results[idx] = bool(sat[pos])
    return results  # type: ignore[return-value]


def canonical_keys_batch(dbms: Sequence["DBM"]) -> list[tuple]:
    """Per-DBM :meth:`DBM.canonical_key` values from one batched sweep.

    Element-for-element equal to ``[d.canonical_key() for d in dbms]``
    and equally non-mutating, but the unclosed systems are closed in one
    packed pass and their key rows are read straight off the closed
    batch — no probe copies, no writeback.
    """
    dbms = list(dbms)
    if not dbms:
        return []
    if not kernel_active():
        return [dbm.canonical_key() for dbm in dbms]
    results: list[tuple | None] = [None] * len(dbms)
    groups: dict[int, list[int]] = {}
    for idx, dbm in enumerate(dbms):
        if dbm._closed:
            results[idx] = dbm.canonical_key()
        else:
            groups.setdefault(dbm._n, []).append(idx)
    for indices in groups.values():
        batch = pack([dbms[idx] for idx in indices]) if len(indices) >= MIN_BATCH else None
        if batch is None or not packed_exact(batch):
            _count_fallback(len(indices))
            for idx in indices:
                results[idx] = dbms[idx].canonical_key()
            continue
        batch, sat = close_packed(batch)
        _observe_batch(len(indices))
        for pos, idx in enumerate(indices):
            if sat[pos]:
                results[idx] = tuple(
                    [
                        tuple(
                            [
                                None if value == INF else int(value)
                                for value in row
                            ]
                        )
                        for row in batch[pos].tolist()
                    ]
                )
            else:
                results[idx] = ("UNSAT", dbms[idx]._n - 1)
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# batched projection (grid-space close + X-space transcription)
# ----------------------------------------------------------------------


def bounds_template(entries, n):
    """Sparse ``(row, col, bound)`` entries to a bound matrix + mask.

    Row 0 is the zero variable.  Returns ``(template, mask)`` as plain
    nested lists (``project_batch`` stacks whole groups into one numpy
    array, which beats allocating per-tuple ndarrays here); ``mask``
    flags present entries (the zero diagonal is always present) and
    duplicate entries keep the tighter bound, like repeated ``add_*``
    calls would.  Returns ``None`` when a bound is too large for safe
    int64 grid arithmetic — the caller then uses the scalar path for
    every combo of that tuple.
    """
    template = [[0] * n for _ in range(n)]
    mask = [[i == j for j in range(n)] for i in range(n)]
    for i, j, bound in entries:
        if bound > MAX_TEMPLATE_BOUND or bound < -MAX_TEMPLATE_BOUND:
            return None
        if not mask[i][j] or bound < template[i][j]:
            template[i][j] = bound
            mask[i][j] = True
    return template, mask


def project_batch(jobs: Sequence[tuple]) -> list:
    """Close, project and transcribe many combo systems at once.

    Each job is ``(template, mask, offsets, k, kept_rows)`` describing
    one normalized combo of one tuple's cluster: the shared X-space
    bound template from :func:`bounds_template`, the combo's per-row
    grid offsets (0 for the zero row), the cluster period ``k``, and
    the row indices surviving projection.  Per group of identically
    shaped jobs the pipeline is fully vectorized:

    1. grid mapping ``N = (T - O_row + O_col) // k`` in exact int64
       (``np.floor_divide`` matches Python's floor semantics for the
       negative bounds the offsets produce),
    2. one batched Floyd–Warshall sweep over the grid systems,
    3. row/column selection of ``kept_rows``,
    4. X-space transcription ``X = k * P + O_row - O_col`` — an affine
       map that preserves the triangle inequality, so the outputs are
       closed matrices ready to install verbatim.

    Returns one result per job, in order: :data:`SCALAR` when the
    group failed an exactness guard or is too small to pay for numpy
    dispatch, ``None`` for an unsatisfiable system, or the closed
    X-space bound matrix over ``kept_rows``.
    """
    np = _numpy()
    results: list = [SCALAR] * len(jobs)
    groups: dict[tuple, list[int]] = {}
    for idx, (template, _mask, _offsets, k, kept_rows) in enumerate(jobs):
        groups.setdefault((len(template), k, kept_rows), []).append(idx)
    for (n, k, kept_rows), indices in groups.items():
        if len(indices) < MIN_BATCH or n > MAX_DIM or k > MAX_ABS_BOUND:
            _count_fallback(len(indices))
            continue
        tmpl = np.array([jobs[idx][0] for idx in indices], dtype=np.int64)
        mask = np.array([jobs[idx][1] for idx in indices], dtype=bool)
        offs = np.array([jobs[idx][2] for idx in indices], dtype=np.int64)
        grid = tmpl - offs[:, :, None] + offs[:, None, :]
        gridq = np.floor_divide(grid, k)
        mag = int(np.abs(np.where(mask, gridq, 0)).max(initial=0))
        # One k-iteration at most doubles the largest magnitude, and the
        # final transcription multiplies by k and adds offsets below k:
        # everything stays under 2^53, so the float64 math is exact.
        if (mag + 1) * (1 << n) * k > (1 << 52):
            _count_fallback(len(indices))
            continue
        batch = np.where(mask, gridq.astype(np.float64), INF)
        batch, sat = close_packed(batch)
        _observe_batch(len(indices))
        kept = np.array(kept_rows, dtype=np.intp)
        proj = batch[:, kept][:, :, kept]
        kept_offs = offs[:, kept].astype(np.float64)
        xspace = k * proj + kept_offs[:, :, None] - kept_offs[:, None, :]
        for pos, idx in enumerate(indices):
            results[idx] = matrix_to_bounds(xspace[pos]) if sat[pos] else None
    return results
