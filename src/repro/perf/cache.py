"""Bounded interning caches for the hot paths.

Two global LRU caches back the optimization layer:

* the **closure cache** memoizes Floyd–Warshall closures: keyed on the
  written (pre-closure) bound matrix, valued with the satisfiability
  verdict plus the closed matrix.  Identical constraint systems — which
  the pairwise loops of the algebra produce in droves — are solved once;
* the **normalize cache** memoizes :class:`NormalizedTuple` expansions
  and streamed emptiness verdicts, keyed on the written tuple form.

Both caches key on *written* constraint forms, never canonical ones, so
a hit reproduces the exact result of the naive computation (the negation
algorithms rely on stored bounds staying exactly as written).

(A third memo — the per-tuple projection plan — lives on the tuples
themselves rather than here: see ``GeneralizedTuple._plans``.)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from repro.perf.config import get_config


class LRUCache:
    """A minimal least-recently-used mapping with a hard size bound.

    Thread-safe: the serving layer (:mod:`repro.serve`) evaluates
    queries and applies group-commit mutations in worker threads that
    share these global caches, so lookup/insert/eviction run under a
    per-cache lock (uncontended in the single-threaded case, far off
    the per-tuple hot path either way).
    """

    __slots__ = ("maxsize", "_data", "_lock", "hits", "misses", "evictions")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("LRUCache needs maxsize >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
                data[key] = value
                return
            data[key] = value
            if len(data) > self.maxsize:
                data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counts plus the current population."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }


_closure_cache: LRUCache | None = None
_normalize_cache: LRUCache | None = None


def closure_cache() -> LRUCache | None:
    """The global closure cache, or ``None`` when caching is disabled."""
    global _closure_cache
    cfg = get_config()
    if not cfg.cache_enabled or cfg.cache_size < 1:
        return None
    if _closure_cache is None or _closure_cache.maxsize != cfg.cache_size:
        _closure_cache = LRUCache(cfg.cache_size)
    return _closure_cache


def normalize_cache() -> LRUCache | None:
    """The global normalization cache, or ``None`` when disabled."""
    global _normalize_cache
    cfg = get_config()
    if not cfg.cache_enabled or cfg.cache_size < 1:
        return None
    if _normalize_cache is None or _normalize_cache.maxsize != cfg.cache_size:
        _normalize_cache = LRUCache(cfg.cache_size)
    return _normalize_cache


def reset_caches() -> None:
    """Drop both global caches entirely (fresh statistics included)."""
    global _closure_cache, _normalize_cache
    _closure_cache = None
    _normalize_cache = None


def cache_stats() -> dict[str, dict[str, int]]:
    """Statistics for whichever caches currently exist."""
    out: dict[str, dict[str, int]] = {}
    if _closure_cache is not None:
        out["closure"] = _closure_cache.stats()
    if _normalize_cache is not None:
        out["normalize"] = _normalize_cache.stats()
    return out
