"""Deterministic process-parallel fan-out for pairwise products.

Off by default.  When :class:`repro.perf.config.PerfConfig` carries
``workers > 1`` and an operation has at least ``parallel_threshold``
independent work items, the items are split into contiguous chunks and
mapped across a cached ``ProcessPoolExecutor``.

Determinism: chunks are contiguous slices of the serial work list, chunk
results are concatenated in submission order, and every chunk worker is
a pure function of its payload — so the assembled output is equal to the
serial output, item for item, for any worker count.

Any pool failure (fork refused by the sandbox, a worker dying, pickling
trouble) falls back to running the worker serially in-process, which by
the same purity argument returns identical results.
"""

from __future__ import annotations

import atexit
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.perf.config import PERF_COUNTERS

#: Chunks per worker: small enough to amortize submission overhead,
#: large enough to smooth out uneven per-pair costs.
CHUNKS_PER_WORKER = 4

_pools: dict[int, ProcessPoolExecutor] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    pool = _pools.get(workers)
    if pool is None:
        import multiprocessing

        # Prefer fork: children inherit the live perf configuration and
        # the imported core modules, so no per-task warmup is needed.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        _pools[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every cached worker pool (registered atexit)."""
    for pool in _pools.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _pools.clear()


atexit.register(shutdown_pools)


def run_chunked(
    worker: Callable[[list, Any], list],
    payloads: Sequence,
    extra: Any,
    workers: int,
) -> list:
    """Fan ``worker(chunk, extra)`` across processes, preserving order.

    ``worker`` must be a picklable module-level function mapping a list
    of payload items to a list of results of the same length and order;
    ``extra`` carries per-operation context shared by all chunks.  The
    concatenated chunk results equal ``worker(list(payloads), extra)``.
    """
    payloads = list(payloads)
    if workers <= 1 or len(payloads) <= 1:
        return worker(payloads, extra)
    chunk_size = max(
        1, -(-len(payloads) // (workers * CHUNKS_PER_WORKER))
    )
    chunks = [
        payloads[start : start + chunk_size]
        for start in range(0, len(payloads), chunk_size)
    ]
    if len(chunks) <= 1:
        return worker(payloads, extra)
    try:
        pool = _get_pool(workers)
        futures = [pool.submit(worker, chunk, extra) for chunk in chunks]
        out: list = []
        for future in futures:
            out.extend(future.result())
    except Exception:
        PERF_COUNTERS["parallel_fallback"] += 1
        return worker(payloads, extra)
    PERF_COUNTERS["parallel_fanout"] += 1
    return out
